//! # psdns — facade crate
//!
//! Rust reproduction of *"GPU acceleration of extreme scale pseudo-spectral
//! simulations of turbulence using asynchronism"* (Ravikumar, Appelhans,
//! Yeung; SC '19). This crate re-exports the whole workspace:
//!
//! * [`fft`] — from-scratch FFT library (FFTW/cuFFT stand-in);
//! * [`comm`] — thread-backed MPI-like message passing runtime;
//! * [`device`] — simulated CUDA-like accelerator (streams, events, copy
//!   engines, capacity-limited device memory);
//! * [`domain`] — grids, slab/pencil decompositions, dealiasing, memory
//!   budgeting (paper Table 1);
//! * [`model`] — calibrated Summit performance model and discrete-event
//!   simulator (paper Tables 2–4, Figs. 7–10);
//! * [`trace`] — rank-aware tracing/metrics layer: typed spans from the
//!   device streams, the communication runtime and the solver land in one
//!   timeline, exported as Chrome-trace JSON (`chrome://tracing`), a
//!   per-phase summary, and an overlap-efficiency report (how much network
//!   time hides behind compute — the paper's asynchronism metric);
//! * [`analyze`] — static schedule analysis: an ordering log recorded by
//!   the device runtime, a vector-clock happens-before engine that reports
//!   typed RAW/WAR/WAW hazards between streams, and a cross-rank
//!   collective-matching verifier that turns mismatched collectives into
//!   typed errors instead of hangs;
//! * [`chaos`] — seeded deterministic fault injection threaded through the
//!   comm/device/checkpoint layers (message delay/reorder/duplication/drop,
//!   rank stall/crash, device OOM and copy faults, torn checkpoint writes):
//!   the same seed reproduces the same failure schedule, and every injected
//!   fault lands in the shared trace;
//! * [`core`] — the paper's contribution: distributed 3-D FFTs and the
//!   batched asynchronous pseudo-spectral Navier–Stokes solver, plus
//!   recovery (a2a watchdogs, CPU fallback on device OOM,
//!   checkpoint-based restart).
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use psdns_analyze as analyze;
pub use psdns_chaos as chaos;
pub use psdns_comm as comm;
pub use psdns_core as core;
pub use psdns_device as device;
pub use psdns_domain as domain;
pub use psdns_fft as fft;
pub use psdns_model as model;
pub use psdns_trace as trace;
