//! # psdns — facade crate
//!
//! Rust reproduction of *"GPU acceleration of extreme scale pseudo-spectral
//! simulations of turbulence using asynchronism"* (Ravikumar, Appelhans,
//! Yeung; SC '19). This crate re-exports the whole workspace:
//!
//! * [`fft`] — from-scratch FFT library (FFTW/cuFFT stand-in);
//! * [`comm`] — thread-backed MPI-like message passing runtime;
//! * [`device`] — simulated CUDA-like accelerator (streams, events, copy
//!   engines, capacity-limited device memory);
//! * [`domain`] — grids, slab/pencil decompositions, dealiasing, memory
//!   budgeting (paper Table 1);
//! * [`model`] — calibrated Summit performance model and discrete-event
//!   simulator (paper Tables 2–4, Figs. 7–10);
//! * [`trace`] — rank-aware tracing/metrics layer: typed spans from the
//!   device streams, the communication runtime and the solver land in one
//!   timeline, exported as Chrome-trace JSON (`chrome://tracing`), a
//!   per-phase summary, and an overlap-efficiency report (how much network
//!   time hides behind compute — the paper's asynchronism metric);
//! * [`core`] — the paper's contribution: distributed 3-D FFTs and the
//!   batched asynchronous pseudo-spectral Navier–Stokes solver.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use psdns_comm as comm;
pub use psdns_core as core;
pub use psdns_device as device;
pub use psdns_domain as domain;
pub use psdns_fft as fft;
pub use psdns_model as model;
pub use psdns_trace as trace;
