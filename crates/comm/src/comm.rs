//! The [`Communicator`]: ranks, point-to-point messaging with tag matching,
//! and communicator splitting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use psdns_chaos::FaultKind;
use psdns_sync::channel::RecvTimeoutError;

use crate::universe::{Packet, Shared};

/// Errors surfaced by the messaging layer. Most misuse (wrong buffer sizes,
/// rank out of range) panics like an MPI abort; these are the recoverable
/// cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A message with the right (ctx, tag) arrived with an unexpected
    /// element type.
    TypeMismatch { src: usize, tag: u64 },
    /// A deadline-aware receive gave up: the message from `src` did not
    /// arrive within the watchdog window (hung exchange, stalled peer).
    Timeout {
        src: usize,
        tag: u64,
        waited_ms: u64,
    },
    /// The peer rank died (injected crash or genuine panic) while we were
    /// waiting for its message.
    PeerFailed { src: usize },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::TypeMismatch { src, tag } => {
                write!(f, "type mismatch in message from rank {src} tag {tag}")
            }
            CommError::Timeout {
                src,
                tag,
                waited_ms,
            } => write!(
                f,
                "timed out after {waited_ms} ms waiting for message from rank {src} tag {tag}"
            ),
            CommError::PeerFailed { src } => {
                write!(f, "peer rank {src} failed while a receive was outstanding")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Base tag for internal collective sequencing; user tags must be below it.
pub(crate) const COLL_TAG_BASE: u64 = 1 << 32;

/// Poll period of deadline-aware / failure-aware receive loops. Fault-free
/// jobs (no chaos engine, no deadline) never poll — they block on the
/// channel exactly as before.
const RECV_POLL: Duration = Duration::from_millis(2);

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An MPI-style communicator: a set of ranks that can exchange point-to-point
/// messages and participate in collectives. Cheap to clone (all state is
/// behind `Arc`s / atomics shared among the clones of *this rank's* handle).
pub struct Communicator {
    pub(crate) shared: Arc<Shared>,
    /// Context id separating message namespaces of different communicators.
    pub(crate) ctx: u64,
    /// This rank within the communicator.
    pub(crate) rank: usize,
    /// Global (universe) rank for each communicator rank.
    pub(crate) members: Arc<Vec<usize>>,
    /// Collective sequence number; kept in lockstep across ranks because
    /// collectives must be called in the same order by every rank.
    pub(crate) coll_seq: Arc<AtomicU64>,
    /// Sequence number for `split` calls, part of child ctx derivation.
    pub(crate) split_seq: Arc<AtomicU64>,
    /// Optional per-rank trace handle; all-to-alls record spans and byte
    /// counters on it when attached.
    pub(crate) tracer: Option<psdns_trace::Tracer>,
    /// Watchdog deadline applied by [`crate::Request::wait_watchdog`]; `None`
    /// means wait forever (the pre-chaos behavior).
    pub(crate) a2a_deadline: Option<Duration>,
    /// Optional collective-matching verifier; when attached, every primitive
    /// collective is preceded by a cross-rank fingerprint check.
    pub(crate) verifier: Option<crate::verify::VerifierState>,
}

impl Communicator {
    pub(crate) fn world(shared: Arc<Shared>, rank: usize) -> Self {
        let size = shared.size;
        Self {
            shared,
            ctx: 0,
            rank,
            members: Arc::new((0..size).collect()),
            coll_seq: Arc::new(AtomicU64::new(0)),
            split_seq: Arc::new(AtomicU64::new(0)),
            tracer: None,
            a2a_deadline: None,
            verifier: None,
        }
    }

    /// Attach a tracer; subsequent `alltoall`/`ialltoall`/`wait` calls on this
    /// handle (and its clones) record [`psdns_trace::SpanKind::A2aPost`] /
    /// [`psdns_trace::SpanKind::A2aWait`] spans plus network byte counters,
    /// attributed to this communicator's rank.
    pub fn set_tracer(&mut self, tracer: &psdns_trace::Tracer) {
        self.tracer = Some(tracer.for_rank(self.rank));
    }

    /// The attached per-rank tracer, if any.
    pub fn tracer(&self) -> Option<&psdns_trace::Tracer> {
        self.tracer.as_ref()
    }

    /// Configure the all-to-all watchdog: [`crate::Request::wait_watchdog`]
    /// converts an exchange that has not completed within `deadline` into a
    /// typed [`CommError::Timeout`] instead of blocking forever.
    pub fn set_a2a_watchdog(&mut self, deadline: Option<Duration>) {
        self.a2a_deadline = deadline;
    }

    /// The configured all-to-all watchdog deadline, if any.
    pub fn a2a_watchdog(&self) -> Option<Duration> {
        self.a2a_deadline
    }

    /// The fault-injection engine of this job, when running under
    /// [`crate::Universe::run_chaos`].
    pub fn chaos(&self) -> Option<&psdns_chaos::ChaosEngine> {
        self.shared.chaos.as_ref()
    }

    /// Rank of the caller within this communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global (universe) rank of a communicator rank.
    pub fn global_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    pub(crate) fn next_coll_tag(&self) -> u64 {
        if let Some(ch) = &self.shared.chaos {
            let grank = self.members[self.rank];
            if ch.rank_crash(grank) {
                // Mark the job failed *before* dying so peers blocked in
                // polling receives bail out promptly with PeerFailed.
                self.shared
                    .fail(grank, format!("chaos: injected crash on rank {grank}"));
                panic!("chaos: injected crash on rank {grank}");
            }
        }
        COLL_TAG_BASE + self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Send `data` to `dst` with `tag`. Buffered and non-blocking in the MPI
    /// `MPI_Bsend` sense: always returns immediately.
    pub fn send<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^32");
        self.send_raw(dst, tag, data);
    }

    pub(crate) fn send_raw<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        let gdst = self.members[dst];
        let gsrc = self.members[self.rank];
        let Some(ch) = self.shared.chaos.clone() else {
            // Fault-free fast path: identical to the pre-chaos runtime.
            let pkt = Packet {
                ctx: self.ctx,
                tag,
                uid: 0,
                dup: false,
                payload: Box::new(data),
            };
            self.push_packet(gsrc, gdst, pkt);
            return;
        };
        let site = format!("msg:{gsrc}->{gdst}");
        // Drop fault: each transmission attempt may be lost; retry with
        // linear backoff up to the policy bound. If every attempt is lost
        // the message is genuinely gone — the receiver's watchdog turns
        // that into a typed Timeout.
        let policy = ch.retry();
        let mut lost = true;
        for attempt in 0..=policy.max_retries {
            if !ch.check(gsrc, &site, FaultKind::Drop) {
                lost = false;
                break;
            }
            if attempt < policy.max_retries {
                std::thread::sleep(policy.backoff * (attempt + 1));
            }
        }
        if lost {
            return;
        }
        if ch.check(gsrc, &site, FaultKind::Delay) {
            std::thread::sleep(ch.delay_duration());
        }
        let dup = ch.check(gsrc, &site, FaultKind::Duplicate);
        let uid = self.shared.next_uid.fetch_add(1, Ordering::Relaxed);
        let copy = dup.then(|| Packet {
            ctx: self.ctx,
            tag,
            uid,
            dup,
            payload: Box::new(data.clone()),
        });
        let pkt = Packet {
            ctx: self.ctx,
            tag,
            uid,
            dup,
            payload: Box::new(data),
        };
        if ch.check(gsrc, &site, FaultKind::Reorder) {
            // Stash this packet; it is released *after* the next send on
            // this edge (or rescued by the receiver before it blocks), so
            // two consecutive messages genuinely swap arrival order.
            let prev = self.shared.held[gsrc][gdst].lock().replace(pkt);
            if let Some(p) = prev {
                self.push_packet(gsrc, gdst, p);
            }
        } else {
            self.push_packet(gsrc, gdst, pkt);
            let held = self.shared.held[gsrc][gdst].lock().take();
            if let Some(p) = held {
                self.push_packet(gsrc, gdst, p);
            }
        }
        if let Some(p) = copy {
            self.push_packet(gsrc, gdst, p);
        }
    }

    fn push_packet(&self, gsrc: usize, gdst: usize, pkt: Packet) {
        // The receiver ends of all channels live in `Shared`, which outlives
        // every rank thread, so a send can only fail if the whole job is
        // being torn down — at which point nobody observes the loss.
        let _ = self.shared.tx[gsrc][gdst].send(pkt);
    }

    /// Blocking receive of a message from `src` with `tag`. FIFO order is
    /// preserved per (src, ctx, tag).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^32");
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        match self.recv_match_deadline(src, tag, None) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Receive with an optional absolute deadline. With `deadline == None`
    /// and no chaos engine this blocks exactly like the pre-chaos runtime;
    /// otherwise it polls so it can notice deadline expiry, peer death, and
    /// reorder-held packets.
    pub(crate) fn recv_match_deadline<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError> {
        assert!(src < self.size(), "source rank {src} out of range");
        let gsrc = self.members[src];
        let gme = self.members[self.rank];
        let start = Instant::now();
        let polled = self.shared.chaos.is_some() || deadline.is_some();
        loop {
            self.shared.flush_held(gsrc, gme);
            // Scan messages that arrived earlier but did not match then.
            {
                let mut pend = self.shared.pending[gme][gsrc].lock();
                if let Some(pos) = pend.iter().position(|p| p.ctx == self.ctx && p.tag == tag) {
                    let pkt = pend.remove(pos).expect("position valid");
                    return downcast(pkt, src, tag);
                }
            }
            // Pull from the channel (blocking or polling).
            let got = {
                let rx = self.shared.rx[gme][gsrc].lock();
                if polled {
                    let mut wait = RECV_POLL;
                    if let Some(d) = deadline {
                        let now = Instant::now();
                        if now >= d {
                            return Err(CommError::Timeout {
                                src,
                                tag,
                                waited_ms: start.elapsed().as_millis() as u64,
                            });
                        }
                        wait = wait.min(d - now);
                    }
                    match rx.recv_timeout(wait) {
                        Ok(p) => Some(p),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(CommError::PeerFailed { src })
                        }
                    }
                } else {
                    match rx.recv() {
                        Ok(p) => Some(p),
                        Err(_) => return Err(CommError::PeerFailed { src }),
                    }
                }
            };
            match got {
                Some(pkt) => {
                    if let Some(pkt) = self.shared.ingest(gme, pkt) {
                        if pkt.ctx == self.ctx && pkt.tag == tag {
                            return downcast(pkt, src, tag);
                        }
                        self.shared.pending[gme][gsrc].lock().push_back(pkt);
                    }
                }
                None => {
                    if self.shared.job_failed() {
                        return Err(CommError::PeerFailed { src });
                    }
                }
            }
        }
    }

    /// Non-blocking probe: returns a matching message if one has already
    /// arrived from `src` with `tag`, without blocking.
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Option<Vec<T>> {
        assert!(src < self.size());
        let gsrc = self.members[src];
        let gme = self.members[self.rank];
        self.shared.flush_held(gsrc, gme);
        {
            let mut pend = self.shared.pending[gme][gsrc].lock();
            if let Some(pos) = pend.iter().position(|p| p.ctx == self.ctx && p.tag == tag) {
                let pkt = pend.remove(pos).expect("position valid");
                return downcast(pkt, src, tag).ok();
            }
        }
        loop {
            let pkt = {
                let rx = self.shared.rx[gme][gsrc].lock();
                match rx.try_recv() {
                    Ok(p) => p,
                    Err(_) => return None,
                }
            };
            let Some(pkt) = self.shared.ingest(gme, pkt) else {
                continue;
            };
            if pkt.ctx == self.ctx && pkt.tag == tag {
                return downcast(pkt, src, tag).ok();
            }
            self.shared.pending[gme][gsrc].lock().push_back(pkt);
        }
    }

    /// Combined send+receive, deadlock-free for pairwise exchanges.
    pub fn sendrecv<T: Clone + Send + 'static>(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        data: &[T],
    ) -> Vec<T> {
        self.send(dst, tag, data.to_vec());
        self.recv(src, tag)
    }

    /// Partition this communicator into sub-communicators: ranks passing the
    /// same `color` end up together, ordered by `(key, parent rank)`.
    /// Equivalent to `MPI_Comm_split`.
    pub fn split(&self, color: usize, key: usize) -> Communicator {
        let seq = self.split_seq.fetch_add(1, Ordering::Relaxed);
        // Everyone learns everyone's (color, key).
        let mine = vec![(color, key, self.rank)];
        let all: Vec<(usize, usize, usize)> = self.allgather(&mine);
        let mut group: Vec<(usize, usize, usize)> =
            all.into_iter().filter(|&(c, _, _)| c == color).collect();
        group.sort_by_key(|&(_, k, r)| (k, r));
        let members: Vec<usize> = group.iter().map(|&(_, _, r)| self.members[r]).collect();
        let my_local = group
            .iter()
            .position(|&(_, _, r)| r == self.rank)
            .expect("caller must be in its own color group");
        // Deterministic child ctx: identical for all members, distinct across
        // (parent ctx, split call, color).
        let ctx = splitmix64(
            self.ctx
                ^ seq.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ (color as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        Communicator {
            shared: Arc::clone(&self.shared),
            ctx,
            rank: my_local,
            members: Arc::new(members),
            coll_seq: Arc::new(AtomicU64::new(0)),
            split_seq: Arc::new(AtomicU64::new(0)),
            // Re-attribute to the child rank so sub-communicator traffic
            // still lands on the right per-rank counters.
            tracer: self.tracer.as_ref().map(|t| t.for_rank(my_local)),
            a2a_deadline: self.a2a_deadline,
            // Children inherit the verifier but count their own rounds.
            verifier: self
                .verifier
                .as_ref()
                .map(|s| crate::verify::VerifierState::new(s.v.clone())),
        }
    }
}

fn downcast<T: Send + 'static>(pkt: Packet, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
    pkt.payload
        .downcast::<Vec<T>>()
        .map(|b| *b)
        .map_err(|_| CommError::TypeMismatch { src, tag })
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn ring_exchange() {
        let out = Universe::run(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![comm.rank() as u32]);
            let got = comm.recv::<u32>(prev, 7);
            got[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1u8]);
                comm.send(1, 2, vec![2u8]);
                0
            } else {
                // Receive in reverse tag order: tag-2 message must be matched
                // even though tag-1 arrives first.
                let b = comm.recv::<u8>(0, 2);
                let a = comm.recv::<u8>(0, 1);
                (a[0] * 10 + b[0]) as usize
            }
        });
        assert_eq!(out[1], 12);
    }

    #[test]
    fn fifo_within_same_tag() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, 3, vec![i]);
                }
                vec![]
            } else {
                (0..10).map(|_| comm.recv::<u32>(0, 3)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn self_send() {
        let out = Universe::run(1, |comm| {
            comm.send(0, 9, vec![99u64]);
            comm.recv::<u64>(0, 9)[0]
        });
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 5, vec![7u8]);
                comm.barrier();
                true
            } else {
                let early = comm.try_recv::<u8>(0, 5);
                assert!(early.is_none());
                comm.barrier();
                comm.barrier();
                let late = comm.try_recv::<u8>(0, 5);
                late == Some(vec![7u8])
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn split_row_col() {
        // 6 ranks as a 2×3 grid: rows {0,1,2},{3,4,5}; cols {0,3},{1,4},{2,5}.
        let out = Universe::run(6, |comm| {
            let row = comm.rank() / 3;
            let col = comm.rank() % 3;
            let row_comm = comm.split(row, col);
            let col_comm = comm.split(col, row);
            assert_eq!(row_comm.size(), 3);
            assert_eq!(col_comm.size(), 2);
            assert_eq!(row_comm.rank(), col);
            assert_eq!(col_comm.rank(), row);
            // Sum ranks within row via alltoall on the sub-communicator.
            let contrib = vec![comm.rank() as u64; row_comm.size()];
            let got = row_comm.alltoall(&contrib);
            got.iter().sum::<u64>()
        });
        assert_eq!(out, vec![3, 3, 3, 12, 12, 12]);
    }

    #[test]
    fn messages_do_not_leak_across_split_contexts() {
        let out = Universe::run(2, |comm| {
            let sub = comm.split(0, comm.rank());
            if comm.rank() == 0 {
                sub.send(1, 4, vec![1u8]); // on sub-communicator
                comm.send(1, 4, vec![2u8]); // same tag on parent
                0
            } else {
                let parent_msg = comm.recv::<u8>(0, 4);
                let sub_msg = sub.recv::<u8>(0, 4);
                (parent_msg[0] * 10 + sub_msg[0]) as usize
            }
        });
        assert_eq!(out[1], 21);
    }
}
