//! The [`Communicator`]: ranks, point-to-point messaging with tag matching,
//! and communicator splitting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use psdns_chaos::FaultKind;
use psdns_sync::channel::RecvTimeoutError;

use crate::universe::{Packet, Shared};

/// Errors surfaced by the messaging layer. Most misuse (wrong buffer sizes,
/// rank out of range) panics like an MPI abort; these are the recoverable
/// cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A message with the right (ctx, tag) arrived with an unexpected
    /// element type.
    TypeMismatch { src: usize, tag: u64 },
    /// A deadline-aware receive gave up: the message from `src` did not
    /// arrive within the watchdog window (hung exchange, stalled peer).
    Timeout {
        src: usize,
        tag: u64,
        waited_ms: u64,
    },
    /// The peer rank died (injected crash or genuine panic) while we were
    /// waiting for its message.
    PeerFailed { src: usize },
    /// A specific rank died in a resilient job ([`crate::Universe::
    /// run_resilient`]): `rank` is the *global* rank and `epoch` the
    /// per-rank collective call count at which it went down. Unlike
    /// [`CommError::PeerFailed`], the job is still alive — survivors can
    /// [`Communicator::agree_on_failures`], [`Communicator::shrink`] and
    /// continue (the ULFM revoke/shrink/agree shape).
    RankFailed { rank: usize, epoch: u64 },
    /// An ABFT-checksummed payload from `rank` failed verification in
    /// `block` (of [`crate::AbftData`]-element blocks) and every bounded
    /// retransmission under the [`crate::RetryPolicy`] failed too — the
    /// silent-data-corruption analogue of an unrecoverable network error.
    /// Single flips never reach here: the first clean resend heals them.
    Corrupted { rank: usize, block: usize },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::TypeMismatch { src, tag } => {
                write!(f, "type mismatch in message from rank {src} tag {tag}")
            }
            CommError::Timeout {
                src,
                tag,
                waited_ms,
            } => write!(
                f,
                "timed out after {waited_ms} ms waiting for message from rank {src} tag {tag}"
            ),
            CommError::PeerFailed { src } => {
                write!(f, "peer rank {src} failed while a receive was outstanding")
            }
            CommError::RankFailed { rank, epoch } => {
                write!(f, "rank {rank} failed at collective epoch {epoch}")
            }
            CommError::Corrupted { rank, block } => write!(
                f,
                "payload from rank {rank} corrupted in block {block}: checksum mismatch persisted through retransmission"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Base tag for internal collective sequencing; user tags must be below it.
pub(crate) const COLL_TAG_BASE: u64 = 1 << 32;

/// Tag namespace of the failure-agreement protocol
/// ([`Communicator::agree_on_failures`]); disjoint from user, collective and
/// verifier tags.
pub(crate) const AGREE_TAG_BASE: u64 = 1 << 34;

/// Tag namespace for runtime-internal system messages (diskless buddy
/// checkpoint replication); disjoint from everything else.
pub(crate) const SYSTEM_TAG_BASE: u64 = 1 << 35;

/// Rounds of the agreement exchange. Chaos-injected crashes fire only at
/// collective boundaries and agreement is pure point-to-point, so membership
/// is fixed while a round runs; two rounds make every discovery (including a
/// rank that died *entering* agreement) symmetric across survivors.
const AGREE_ROUNDS: u64 = 2;

/// Poll period of deadline-aware / failure-aware receive loops. Fault-free
/// jobs (no chaos engine, no deadline) never poll — they block on the
/// channel exactly as before.
const RECV_POLL: Duration = Duration::from_millis(2);

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The adaptive a2a watchdog is the shared [`psdns_chaos::AdaptiveWatchdog`]
/// (one watchdog-floor policy serves the comm *and* device layers); this
/// re-export keeps the historical `psdns_comm::AdaptiveWatchdog` path alive.
pub use psdns_chaos::AdaptiveWatchdog;

/// An MPI-style communicator: a set of ranks that can exchange point-to-point
/// messages and participate in collectives. Cheap to clone (all state is
/// behind `Arc`s / atomics shared among the clones of *this rank's* handle).
pub struct Communicator {
    pub(crate) shared: Arc<Shared>,
    /// Context id separating message namespaces of different communicators.
    pub(crate) ctx: u64,
    /// This rank within the communicator.
    pub(crate) rank: usize,
    /// Global (universe) rank for each communicator rank.
    pub(crate) members: Arc<Vec<usize>>,
    /// Collective sequence number; kept in lockstep across ranks because
    /// collectives must be called in the same order by every rank.
    pub(crate) coll_seq: Arc<AtomicU64>,
    /// Sequence number for `split` calls, part of child ctx derivation.
    pub(crate) split_seq: Arc<AtomicU64>,
    /// Sequence number for `agree_on_failures` calls; survivors call agree
    /// in lockstep, so this stays identical across ranks and keeps the
    /// agreement tag space collision-free across repeated recoveries.
    pub(crate) agree_seq: Arc<AtomicU64>,
    /// Optional per-rank trace handle; all-to-alls record spans and byte
    /// counters on it when attached.
    pub(crate) tracer: Option<psdns_trace::Tracer>,
    /// Watchdog deadline applied by [`crate::Request::wait_watchdog`]; `None`
    /// means wait forever (the pre-chaos behavior).
    pub(crate) a2a_deadline: Option<Duration>,
    /// Adaptive watchdog; when set it takes precedence over the fixed
    /// `a2a_deadline`, with the fixed value acting only through the floor
    /// passed at construction.
    pub(crate) a2a_adaptive: Option<AdaptiveWatchdog>,
    /// Optional collective-matching verifier; when attached, every primitive
    /// collective is preceded by a cross-rank fingerprint check.
    pub(crate) verifier: Option<crate::verify::VerifierState>,
    /// Optional global-ordering recorder (bound to this rank's *global*
    /// rank); collectives and request waits log [`psdns_analyze::RankOp`]s
    /// for the cross-rank deadlock analyzer.
    pub(crate) recorder: Option<psdns_analyze::RankRecorder>,
    /// ABFT checksumming of collective payloads (see
    /// [`Communicator::set_abft_checksums`]). Off by default — the healthy
    /// path pays nothing unless integrity is armed.
    pub(crate) abft: bool,
}

impl Communicator {
    pub(crate) fn world(shared: Arc<Shared>, rank: usize) -> Self {
        let size = shared.size;
        Self {
            shared,
            ctx: 0,
            rank,
            members: Arc::new((0..size).collect()),
            coll_seq: Arc::new(AtomicU64::new(0)),
            split_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            tracer: None,
            a2a_deadline: None,
            a2a_adaptive: None,
            verifier: None,
            recorder: None,
            abft: false,
        }
    }

    /// Arm (or disarm) ABFT checksums on this rank's collectives: every
    /// `alltoall`/`allgather`-family payload then carries a per-block FNV
    /// sidecar, verified on receipt. A mismatch triggers a bounded
    /// retransmission from the sender's retained clean copy under the
    /// chaos [`crate::RetryPolicy`]; exhaustion surfaces as a typed
    /// [`CommError::Corrupted`]. Arm it on *every* rank of the
    /// communicator (like any collective contract); clones, splits and
    /// shrinks inherit the setting.
    pub fn set_abft_checksums(&mut self, on: bool) {
        self.abft = on;
    }

    /// True when ABFT collective checksums are armed on this handle.
    pub fn abft_checksums(&self) -> bool {
        self.abft
    }

    /// Attach a [`psdns_analyze::GlobalRecorder`]: this rank's collectives
    /// (posts) and request waits (with their deadline bit) are logged under
    /// its global rank for [`psdns_analyze::analyze_global`]. Clones,
    /// [`Communicator::split`] children and [`Communicator::shrink`]
    /// survivors inherit the recorder — the global rank never changes.
    pub fn set_global_recorder(&mut self, hub: &psdns_analyze::GlobalRecorder) {
        self.recorder = Some(hub.rank(self.members[self.rank]));
    }

    /// The attached global-ordering recorder, if any.
    pub fn global_recorder(&self) -> Option<&psdns_analyze::RankRecorder> {
        self.recorder.as_ref()
    }

    /// Log a collective post (global ranks, fingerprint identity) for the
    /// cross-rank analyzer. `tag` is the value [`Self::next_coll_tag`]
    /// returned for this collective.
    pub(crate) fn record_post(
        &self,
        kind: psdns_analyze::CollectiveKind,
        tag: u64,
        blocking: bool,
    ) {
        if let Some(rec) = &self.recorder {
            rec.post(self.ctx, tag - COLL_TAG_BASE, kind, &self.members, blocking);
        }
    }

    /// Log the completion wait of a nonblocking collective; `deadline` says
    /// whether a watchdog bounds it (the unbounded form is what the
    /// analyzer's `UnboundedWait` lint flags).
    pub(crate) fn record_wait(&self, tag: u64, deadline: bool) {
        if let Some(rec) = &self.recorder {
            rec.wait_collective(self.ctx, tag - COLL_TAG_BASE, deadline);
        }
    }

    /// Attach a tracer; subsequent `alltoall`/`ialltoall`/`wait` calls on this
    /// handle (and its clones) record [`psdns_trace::SpanKind::A2aPost`] /
    /// [`psdns_trace::SpanKind::A2aWait`] spans plus network byte counters,
    /// attributed to this communicator's rank.
    pub fn set_tracer(&mut self, tracer: &psdns_trace::Tracer) {
        self.tracer = Some(tracer.for_rank(self.rank));
    }

    /// The attached per-rank tracer, if any.
    pub fn tracer(&self) -> Option<&psdns_trace::Tracer> {
        self.tracer.as_ref()
    }

    /// Configure the all-to-all watchdog: [`crate::Request::wait_watchdog`]
    /// converts an exchange that has not completed within `deadline` into a
    /// typed [`CommError::Timeout`] instead of blocking forever.
    pub fn set_a2a_watchdog(&mut self, deadline: Option<Duration>) {
        self.a2a_deadline = deadline;
    }

    /// The configured all-to-all watchdog deadline, if any.
    pub fn a2a_watchdog(&self) -> Option<Duration> {
        self.a2a_deadline
    }

    /// Enable the adaptive a2a watchdog: the deadline becomes `max(floor,
    /// factor × p99)` over a rolling window of observed exchange latencies
    /// (see [`AdaptiveWatchdog`]). Takes precedence over the fixed watchdog
    /// in [`crate::Request::wait_watchdog`]; the fixed deadline is a natural
    /// choice of `floor`.
    pub fn set_adaptive_a2a_watchdog(&mut self, floor: Duration, factor: u32) {
        self.a2a_adaptive = Some(AdaptiveWatchdog::new(floor, factor));
    }

    /// The adaptive watchdog, if enabled.
    pub fn adaptive_a2a_watchdog(&self) -> Option<&AdaptiveWatchdog> {
        self.a2a_adaptive.as_ref()
    }

    /// True when this job runs under [`crate::Universe::run_resilient`]:
    /// rank death is survivable and surfaces as
    /// [`CommError::RankFailed`] rather than tearing the job down.
    pub fn resilient(&self) -> bool {
        self.shared.resilient
    }

    /// Failure-detector read: every rank known dead, as sorted
    /// `(global rank, collective epoch at death)` pairs. This is each
    /// rank's *local view*; run [`Communicator::agree_on_failures`] before
    /// acting on it so all survivors shrink over the same set.
    pub fn departed(&self) -> Vec<(usize, u64)> {
        self.shared.departed_snapshot()
    }

    /// Logical heartbeat of a global rank: its collective-epoch counter.
    /// A rank whose heartbeat stops advancing while its peers' grow is
    /// stalled or dead. Logical (not wall-clock) so chaos runs stay
    /// seed-deterministic.
    pub fn heartbeat(&self, grank: usize) -> u64 {
        self.shared.coll_epoch[grank].load(Ordering::Relaxed)
    }

    /// The fault-injection engine of this job, when running under
    /// [`crate::Universe::run_chaos`].
    pub fn chaos(&self) -> Option<&psdns_chaos::ChaosEngine> {
        self.shared.chaos.as_ref()
    }

    /// Rank of the caller within this communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global (universe) rank of a communicator rank.
    pub fn global_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    pub(crate) fn next_coll_tag(&self) -> u64 {
        let grank = self.members[self.rank];
        // The collective-epoch counter advances exactly once per collective
        // call, in lockstep with the chaos crash counter below — so
        // `FaultPlan::at(k)` means "die at collective epoch k" and the
        // reported epoch identifies which collective the crash interrupted.
        let epoch = self.shared.coll_epoch[grank].fetch_add(1, Ordering::Relaxed);
        if let Some(ch) = &self.shared.chaos {
            if ch.rank_crash(grank) {
                let msg =
                    format!("chaos: injected crash on rank {grank} at collective epoch {epoch}");
                if self.shared.resilient {
                    // Survivable death: record it *before* panicking so
                    // peers' receives turn into typed RankFailed promptly.
                    self.shared.mark_departed(grank, epoch, msg.clone());
                } else {
                    // Mark the job failed before dying so peers blocked in
                    // polling receives bail out promptly with PeerFailed.
                    self.shared.fail_at(grank, msg.clone(), Some(epoch));
                }
                panic!("{msg}");
            }
        }
        COLL_TAG_BASE + self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Send `data` to `dst` with `tag`. Buffered and non-blocking in the MPI
    /// `MPI_Bsend` sense: always returns immediately.
    pub fn send<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^32");
        self.send_raw(dst, tag, data);
    }

    pub(crate) fn send_raw<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.send_packet(dst, tag, data, None);
    }

    /// Checksummed collective send: computes the ABFT sidecar, retains a
    /// clean copy for retransmission, then exposes the in-flight payload to
    /// seeded bit-flip injection (site `flip:{gsrc}->{gdst}`). The flip
    /// happens strictly *after* the sidecar is computed, so any transit
    /// corruption — any bit, any block — is detectable on receipt.
    pub(crate) fn send_coll<T: crate::AbftData>(&self, dst: usize, tag: u64, mut data: Vec<T>) {
        if !self.abft {
            return self.send_raw(dst, tag, data);
        }
        assert!(dst < self.size(), "destination rank {dst} out of range");
        let gdst = self.members[dst];
        let gsrc = self.members[self.rank];
        let crcs = crate::abft::block_checksums(&data);
        self.shared
            .retx
            .lock()
            .insert((self.ctx, tag, gsrc, gdst), Box::new(data.clone()));
        if let Some(ch) = &self.shared.chaos {
            let site = format!("flip:{gsrc}->{gdst}");
            if let Some(k) = ch.check_seq(gsrc, &site, FaultKind::BitFlip) {
                crate::abft::flip_payload_bit(&mut data, ch.draw(&site, FaultKind::BitFlip, k));
            }
        }
        self.send_packet(dst, tag, data, Some(crcs));
    }

    fn send_packet<T: Clone + Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        data: Vec<T>,
        crcs: Option<Vec<u64>>,
    ) {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        let gdst = self.members[dst];
        let gsrc = self.members[self.rank];
        let Some(ch) = self.shared.chaos.clone() else {
            // Fault-free fast path: identical to the pre-chaos runtime.
            let pkt = Packet {
                ctx: self.ctx,
                tag,
                uid: 0,
                dup: false,
                crcs,
                payload: Box::new(data),
            };
            self.push_packet(gsrc, gdst, pkt);
            return;
        };
        let site = format!("msg:{gsrc}->{gdst}");
        // Drop fault: each transmission attempt may be lost; retry with
        // jittered exponential backoff up to the policy bound. If every
        // attempt is lost the message is genuinely gone — the receiver's
        // watchdog turns that into a typed Timeout.
        let policy = ch.retry();
        let salt = psdns_chaos::site_salt(&site);
        let mut lost = true;
        for attempt in 0..=policy.max_retries {
            if !ch.check(gsrc, &site, FaultKind::Drop) {
                lost = false;
                break;
            }
            if attempt < policy.max_retries {
                std::thread::sleep(policy.backoff_for(attempt, salt));
            }
        }
        if lost {
            return;
        }
        if ch.check(gsrc, &site, FaultKind::Delay) {
            std::thread::sleep(ch.delay_duration());
        }
        let dup = ch.check(gsrc, &site, FaultKind::Duplicate);
        let uid = self.shared.next_uid.fetch_add(1, Ordering::Relaxed);
        let copy = dup.then(|| Packet {
            ctx: self.ctx,
            tag,
            uid,
            dup,
            crcs: crcs.clone(),
            payload: Box::new(data.clone()),
        });
        let pkt = Packet {
            ctx: self.ctx,
            tag,
            uid,
            dup,
            crcs,
            payload: Box::new(data),
        };
        if ch.check(gsrc, &site, FaultKind::Reorder) {
            // Stash this packet; it is released *after* the next send on
            // this edge (or rescued by the receiver before it blocks), so
            // two consecutive messages genuinely swap arrival order.
            let prev = self.shared.held[gsrc][gdst].lock().replace(pkt);
            if let Some(p) = prev {
                self.push_packet(gsrc, gdst, p);
            }
        } else {
            self.push_packet(gsrc, gdst, pkt);
            let held = self.shared.held[gsrc][gdst].lock().take();
            if let Some(p) = held {
                self.push_packet(gsrc, gdst, p);
            }
        }
        if let Some(p) = copy {
            self.push_packet(gsrc, gdst, p);
        }
    }

    fn push_packet(&self, gsrc: usize, gdst: usize, pkt: Packet) {
        // The receiver ends of all channels live in `Shared`, which outlives
        // every rank thread, so a send can only fail if the whole job is
        // being torn down — at which point nobody observes the loss.
        let _ = self.shared.tx[gsrc][gdst].send(pkt);
    }

    /// Blocking receive of a message from `src` with `tag`. FIFO order is
    /// preserved per (src, ctx, tag).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^32");
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        match self.recv_match_deadline(src, tag, None) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Receive with an optional absolute deadline. With `deadline == None`
    /// and no chaos engine this blocks exactly like the pre-chaos runtime;
    /// otherwise it polls so it can notice deadline expiry, peer death, and
    /// reorder-held packets.
    pub(crate) fn recv_match_deadline<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError> {
        self.recv_match_deadline_crc(src, tag, deadline)
            .map(|(v, _)| v)
    }

    /// Like [`Self::recv_match_deadline`] but keeps the ABFT sidecar (if
    /// the sender attached one) alongside the payload.
    pub(crate) fn recv_match_deadline_crc<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<(Vec<T>, Option<Vec<u64>>), CommError> {
        assert!(src < self.size(), "source rank {src} out of range");
        let gsrc = self.members[src];
        let gme = self.members[self.rank];
        let start = Instant::now();
        let polled = self.shared.chaos.is_some() || deadline.is_some();
        loop {
            self.shared.flush_held(gsrc, gme);
            // Scan messages that arrived earlier but did not match then.
            {
                let mut pend = self.shared.pending[gme][gsrc].lock();
                if let Some(pos) = pend.iter().position(|p| p.ctx == self.ctx && p.tag == tag) {
                    let pkt = pend.remove(pos).expect("position valid");
                    return downcast_crc(pkt, src, tag);
                }
            }
            // Pull from the channel (blocking or polling).
            let got = {
                let rx = self.shared.rx[gme][gsrc].lock();
                if polled {
                    let mut wait = RECV_POLL;
                    if let Some(d) = deadline {
                        let now = Instant::now();
                        if now >= d {
                            return Err(CommError::Timeout {
                                src,
                                tag,
                                waited_ms: start.elapsed().as_millis() as u64,
                            });
                        }
                        wait = wait.min(d - now);
                    }
                    match rx.recv_timeout(wait) {
                        Ok(p) => Some(p),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(CommError::PeerFailed { src })
                        }
                    }
                } else {
                    match rx.recv() {
                        Ok(p) => Some(p),
                        Err(_) => return Err(CommError::PeerFailed { src }),
                    }
                }
            };
            match got {
                Some(pkt) => {
                    if let Some(pkt) = self.shared.ingest(gme, pkt) {
                        if pkt.ctx == self.ctx && pkt.tag == tag {
                            return downcast_crc(pkt, src, tag);
                        }
                        self.shared.pending[gme][gsrc].lock().push_back(pkt);
                    }
                }
                None => {
                    if self.shared.job_failed() {
                        return Err(CommError::PeerFailed { src });
                    }
                    // Revocation check (ULFM revoke semantics): once a
                    // survivor revoked this communicator, ordinary traffic
                    // on it fails so ranks stuck in an abandoned collective
                    // escape and can join the agreement. Agreement/system
                    // tags are exempt — they must keep working on a revoked
                    // communicator, exactly like ULFM's agree/shrink.
                    if tag < AGREE_TAG_BASE && self.shared.ctx_revoked(self.ctx) {
                        if let Some((rank, epoch)) = self.shared.first_departed() {
                            return Err(CommError::RankFailed { rank, epoch });
                        }
                    }
                    if let Some(epoch) = self.shared.departed_epoch(gsrc) {
                        // The peer is dead, but messages it sent before
                        // dying are still valid: drain the channel fully
                        // into pending, then do one final match. Only when
                        // nothing matches is the message truly never coming.
                        loop {
                            let pkt = {
                                let rx = self.shared.rx[gme][gsrc].lock();
                                match rx.try_recv() {
                                    Ok(p) => p,
                                    Err(_) => break,
                                }
                            };
                            if let Some(pkt) = self.shared.ingest(gme, pkt) {
                                self.shared.pending[gme][gsrc].lock().push_back(pkt);
                            }
                        }
                        self.shared.flush_held(gsrc, gme);
                        let mut pend = self.shared.pending[gme][gsrc].lock();
                        if let Some(pos) =
                            pend.iter().position(|p| p.ctx == self.ctx && p.tag == tag)
                        {
                            let pkt = pend.remove(pos).expect("position valid");
                            drop(pend);
                            return downcast_crc(pkt, src, tag);
                        }
                        return Err(CommError::RankFailed { rank: gsrc, epoch });
                    }
                }
            }
        }
    }

    /// Verified collective receive: blocks like [`Self::recv_raw`], then
    /// checks the ABFT sidecar (when present) and heals corruption by
    /// bounded retransmission. Panics on unrecoverable errors, like
    /// `recv_raw` — the typed path is [`Self::recv_coll_deadline`].
    pub(crate) fn recv_coll<T: crate::AbftData>(&self, src: usize, tag: u64) -> Vec<T> {
        match self.recv_coll_deadline(src, tag, None) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Verified collective receive with an optional deadline. On a checksum
    /// mismatch the receiver pulls the sender's retained clean copy from
    /// the retransmission store — itself exposed to seeded bit-flip
    /// injection at site `retx:{gsrc}->{gme}`, so a persistently corrupt
    /// link stays representable — up to `RetryPolicy::max_retries` times;
    /// exhaustion yields a typed [`CommError::Corrupted`].
    pub(crate) fn recv_coll_deadline<T: crate::AbftData>(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError> {
        let (mut data, crcs) = self.recv_match_deadline_crc(src, tag, deadline)?;
        let Some(crcs) = crcs else {
            return Ok(data);
        };
        let gsrc = self.members[src];
        let gme = self.members[self.rank];
        let key = (self.ctx, tag, gsrc, gme);
        let policy = self
            .shared
            .chaos
            .as_ref()
            .map(|c| c.retry())
            .unwrap_or_default();
        let mut attempt = 0u32;
        loop {
            let Some(block) = crate::abft::first_corrupt_block(&data, &crcs) else {
                self.shared.retx.lock().remove(&key);
                return Ok(data);
            };
            if let Some(t) = &self.tracer {
                t.incr_faults();
            }
            if attempt >= policy.max_retries {
                self.shared.retx.lock().remove(&key);
                return Err(CommError::Corrupted { rank: src, block });
            }
            // "Retransmit": take a fresh copy of the sender's clean
            // payload. A missing or mistyped entry means the store itself
            // was damaged — treat it as unrecoverable corruption.
            data = {
                let retx = self.shared.retx.lock();
                let Some(clean) = retx.get(&key).and_then(|b| b.downcast_ref::<Vec<T>>()) else {
                    return Err(CommError::Corrupted { rank: src, block });
                };
                clean.clone()
            };
            if let Some(ch) = &self.shared.chaos {
                let site = format!("retx:{gsrc}->{gme}");
                if let Some(k) = ch.check_seq(gme, &site, FaultKind::BitFlip) {
                    crate::abft::flip_payload_bit(&mut data, ch.draw(&site, FaultKind::BitFlip, k));
                }
            }
            attempt += 1;
        }
    }

    /// Non-blocking probe: returns a matching message if one has already
    /// arrived from `src` with `tag`, without blocking.
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Option<Vec<T>> {
        assert!(src < self.size());
        let gsrc = self.members[src];
        let gme = self.members[self.rank];
        self.shared.flush_held(gsrc, gme);
        {
            let mut pend = self.shared.pending[gme][gsrc].lock();
            if let Some(pos) = pend.iter().position(|p| p.ctx == self.ctx && p.tag == tag) {
                let pkt = pend.remove(pos).expect("position valid");
                return downcast(pkt, src, tag).ok();
            }
        }
        loop {
            let pkt = {
                let rx = self.shared.rx[gme][gsrc].lock();
                match rx.try_recv() {
                    Ok(p) => p,
                    Err(_) => return None,
                }
            };
            let Some(pkt) = self.shared.ingest(gme, pkt) else {
                continue;
            };
            if pkt.ctx == self.ctx && pkt.tag == tag {
                return downcast(pkt, src, tag).ok();
            }
            self.shared.pending[gme][gsrc].lock().push_back(pkt);
        }
    }

    /// Combined send+receive, deadlock-free for pairwise exchanges.
    pub fn sendrecv<T: Clone + Send + 'static>(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        data: &[T],
    ) -> Vec<T> {
        self.send(dst, tag, data.to_vec());
        self.recv(src, tag)
    }

    /// Revoke this communicator, the analogue of ULFM's `MPI_Comm_revoke`:
    /// once any rank has detected a failure, ordinary receives on this
    /// communicator return [`CommError::RankFailed`] on every rank instead
    /// of blocking — necessary because rooted collectives (barrier, bcast)
    /// hide a non-root death from the other non-root ranks, which would
    /// otherwise wait forever on a root that already abandoned the
    /// collective. Agreement and system traffic keeps working on a revoked
    /// communicator. Called implicitly by
    /// [`Communicator::agree_on_failures`].
    pub fn revoke(&self) {
        self.shared.revoke_ctx(self.ctx);
    }

    /// Deterministic agreement on the failed-rank set, the analogue of
    /// ULFM's `MPI_Comm_agree`: every survivor returns the *same* sorted
    /// `(global rank, epoch-at-death)` list, so the subsequent
    /// [`Communicator::shrink`] is purely local and still produces
    /// identical communicators on every survivor.
    ///
    /// Protocol: [`AGREE_ROUNDS`] rounds of complete view exchange among
    /// the ranks each survivor currently believes alive. Views only grow
    /// (deaths are monotone), a dead peer's silence itself surfaces as
    /// [`CommError::RankFailed`] and merges into the view, and because
    /// chaos crashes fire only at collective boundaries (agreement is pure
    /// point-to-point) membership cannot change mid-protocol — two rounds
    /// make every view identical. A peer that is alive but unresponsive
    /// past `per_peer_deadline` yields a typed [`CommError::Timeout`];
    /// agreement never hangs.
    ///
    /// Survivors must call this collectively (same call count on each),
    /// like any collective.
    pub fn agree_on_failures(
        &self,
        per_peer_deadline: Duration,
    ) -> Result<Vec<(usize, u64)>, CommError> {
        // Revoke first (see [`Communicator::revoke`]): peers still stuck in
        // an abandoned collective on this communicator fail over to the
        // agreement instead of waiting on a rank that already bailed out.
        self.revoke();
        let seq = self.agree_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = &self.recorder {
            // Agreement is deadline-bounded point-to-point (it never hangs),
            // so it enters the global log as an annotation, not a wait.
            rec.note(&format!("agree_on_failures: seq {seq}"));
        }
        let gme = self.members[self.rank];
        let mut view: std::collections::BTreeMap<u64, u64> = self
            .shared
            .departed_snapshot()
            .into_iter()
            .map(|(r, e)| (r as u64, e))
            .collect();
        for round in 0..AGREE_ROUNDS {
            let tag = AGREE_TAG_BASE + seq * AGREE_ROUNDS + round;
            let alive: Vec<usize> = (0..self.size())
                .filter(|&r| !view.contains_key(&(self.members[r] as u64)))
                .collect();
            let payload: Vec<(u64, u64)> = view.iter().map(|(&r, &e)| (r, e)).collect();
            for &r in &alive {
                if self.members[r] != gme {
                    self.send_raw(r, tag, payload.clone());
                }
            }
            for &r in &alive {
                if self.members[r] == gme {
                    continue;
                }
                let deadline = Instant::now() + per_peer_deadline;
                match self.recv_match_deadline::<(u64, u64)>(r, tag, Some(deadline)) {
                    Ok(peer_view) => view.extend(peer_view),
                    Err(CommError::RankFailed { rank, epoch }) => {
                        // Discovered during the exchange itself; shared
                        // ground truth makes this symmetric across
                        // survivors.
                        view.insert(rank as u64, epoch);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(view.into_iter().map(|(r, e)| (r as usize, e)).collect())
    }

    /// Build the surviving communicator after agreement, the analogue of
    /// ULFM's `MPI_Comm_shrink`: drop `failed` ranks, re-rank survivors in
    /// ascending global-rank order, and derive a fresh context id from the
    /// agreed failure set. The fresh ctx isolates stale messages of the
    /// abandoned pre-failure communicator and gives collectives (and the
    /// attached [`crate::CollectiveVerifier`], if any) a clean namespace
    /// and fresh sequence counters — the "new epoch" of the recovery.
    ///
    /// Purely local: every survivor feeding in the same agreed list (see
    /// [`Communicator::agree_on_failures`]) builds an identical
    /// communicator without further messaging.
    pub fn shrink(&self, failed: &[(usize, u64)]) -> Communicator {
        let gme = self.members[self.rank];
        assert!(
            failed.iter().all(|&(r, _)| r != gme),
            "a failed rank cannot shrink"
        );
        let dead: std::collections::HashSet<usize> = failed.iter().map(|&(r, _)| r).collect();
        let members: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|r| !dead.contains(r))
            .collect();
        assert!(!members.is_empty(), "no survivors to shrink onto");
        let my_local = members
            .iter()
            .position(|&r| r == gme)
            .expect("survivor present in shrunken membership");
        // Chain the ctx through the agreed failure set: identical on every
        // survivor, distinct from the parent and from any earlier shrink.
        let mut ctx = splitmix64(self.ctx ^ 0x5348_5249_4E4B_4544); // "SHRINKED"
        for &(r, e) in failed {
            ctx = splitmix64(ctx ^ (r as u64) ^ e.rotate_left(17));
        }
        if let Some(rec) = &self.recorder {
            rec.note(&format!(
                "shrink: dropped {failed:?}, survivors {members:?}, new ctx {ctx:#x}"
            ));
        }
        Communicator {
            shared: Arc::clone(&self.shared),
            ctx,
            rank: my_local,
            members: Arc::new(members),
            coll_seq: Arc::new(AtomicU64::new(0)),
            split_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            tracer: self.tracer.as_ref().map(|t| t.for_rank(my_local)),
            a2a_deadline: self.a2a_deadline,
            // Latencies observed on the old topology do not transfer.
            a2a_adaptive: self.a2a_adaptive.as_ref().map(|w| w.fresh()),
            verifier: self
                .verifier
                .as_ref()
                .map(|s| crate::verify::VerifierState::new(s.v.clone())),
            recorder: self.recorder.clone(),
            abft: self.abft,
        }
    }

    /// Send on the runtime-internal system tag namespace (buddy checkpoint
    /// replication). System messages never collide with user, collective,
    /// verifier or agreement traffic.
    pub fn send_system<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(tag < COLL_TAG_BASE, "system tags must be < 2^32");
        self.send_raw(dst, SYSTEM_TAG_BASE + tag, data);
    }

    /// Receive a system message; failure-aware — a dead sender surfaces as
    /// [`CommError::RankFailed`] (after draining anything it sent before
    /// dying) instead of blocking forever.
    pub fn recv_system<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
    ) -> Result<Vec<T>, CommError> {
        assert!(tag < COLL_TAG_BASE, "system tags must be < 2^32");
        self.recv_match_deadline(src, SYSTEM_TAG_BASE + tag, None)
    }

    /// Partition this communicator into sub-communicators: ranks passing the
    /// same `color` end up together, ordered by `(key, parent rank)`.
    /// Equivalent to `MPI_Comm_split`.
    pub fn split(&self, color: usize, key: usize) -> Communicator {
        let seq = self.split_seq.fetch_add(1, Ordering::Relaxed);
        // Everyone learns everyone's (color, key).
        let mine = vec![(color, key, self.rank)];
        let all: Vec<(usize, usize, usize)> = self.allgather(&mine);
        let mut group: Vec<(usize, usize, usize)> =
            all.into_iter().filter(|&(c, _, _)| c == color).collect();
        group.sort_by_key(|&(_, k, r)| (k, r));
        let members: Vec<usize> = group.iter().map(|&(_, _, r)| self.members[r]).collect();
        let my_local = group
            .iter()
            .position(|&(_, _, r)| r == self.rank)
            .expect("caller must be in its own color group");
        // Deterministic child ctx: identical for all members, distinct across
        // (parent ctx, split call, color).
        let ctx = splitmix64(
            self.ctx
                ^ seq.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ (color as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        Communicator {
            shared: Arc::clone(&self.shared),
            ctx,
            rank: my_local,
            members: Arc::new(members),
            coll_seq: Arc::new(AtomicU64::new(0)),
            split_seq: Arc::new(AtomicU64::new(0)),
            agree_seq: Arc::new(AtomicU64::new(0)),
            // Re-attribute to the child rank so sub-communicator traffic
            // still lands on the right per-rank counters.
            tracer: self.tracer.as_ref().map(|t| t.for_rank(my_local)),
            a2a_deadline: self.a2a_deadline,
            a2a_adaptive: self.a2a_adaptive.as_ref().map(|w| w.fresh()),
            // Children inherit the verifier but count their own rounds.
            verifier: self
                .verifier
                .as_ref()
                .map(|s| crate::verify::VerifierState::new(s.v.clone())),
            recorder: self.recorder.clone(),
            abft: self.abft,
        }
    }
}

fn downcast<T: Send + 'static>(pkt: Packet, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
    downcast_crc(pkt, src, tag).map(|(v, _)| v)
}

fn downcast_crc<T: Send + 'static>(
    pkt: Packet,
    src: usize,
    tag: u64,
) -> Result<(Vec<T>, Option<Vec<u64>>), CommError> {
    let crcs = pkt.crcs;
    pkt.payload
        .downcast::<Vec<T>>()
        .map(|b| (*b, crcs))
        .map_err(|_| CommError::TypeMismatch { src, tag })
}

#[cfg(test)]
mod tests {
    use super::AdaptiveWatchdog;
    use crate::{CommError, Universe};
    use psdns_chaos::{ChaosConfig, ChaosEngine, FaultPlan};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    #[test]
    fn adaptive_watchdog_floor_and_p99() {
        let wd = AdaptiveWatchdog::new(Duration::from_millis(10), 5);
        assert_eq!(wd.deadline(), Duration::from_millis(10));
        for _ in 0..10 {
            wd.observe(Duration::from_millis(1));
        }
        // 5 × p99(1ms) = 5ms, below the floor.
        assert_eq!(wd.deadline(), Duration::from_millis(10));
        wd.observe(Duration::from_millis(100));
        assert_eq!(wd.deadline(), Duration::from_millis(500));
        assert_eq!(wd.observations(), 11);
    }

    #[test]
    fn departed_rank_messages_drain_before_rank_failed() {
        let mut cfg = ChaosConfig::new(3);
        cfg.crash = FaultPlan::at(0);
        cfg.crash_rank = Some(1);
        let out = Universe::run_resilient(2, ChaosEngine::new(cfg), |comm| {
            if comm.rank() == 1 {
                comm.send_system(0, 5, vec![42u8]);
                comm.barrier(); // dies here, at collective epoch 0
                0u8
            } else {
                // The message sent before death must still be delivered...
                let got = comm.recv_system::<u8>(1, 5).expect("pre-death message");
                assert_eq!(got, vec![42]);
                // ...and only a message that never comes turns into a
                // typed RankFailed naming the rank and its death epoch.
                let err = comm.recv_system::<u8>(1, 6).expect_err("rank 1 is dead");
                assert_eq!(err, CommError::RankFailed { rank: 1, epoch: 0 });
                got[0]
            }
        })
        .expect("resilient job survives the crash");
        assert_eq!(out[0], Some(42));
        assert_eq!(out[1], None);
    }

    #[test]
    fn resilient_crash_agree_shrink_continue() {
        let mut cfg = ChaosConfig::new(7);
        cfg.crash = FaultPlan::at(2);
        cfg.crash_rank = Some(1);
        let out = Universe::run_resilient(3, ChaosEngine::new(cfg), |comm| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                for _ in 0..5 {
                    comm.barrier();
                }
            }));
            match r {
                Ok(()) => (comm.size(), 0u64),
                Err(_) => {
                    // Failure detector saw the death; all survivors must
                    // agree on the same (rank, epoch) set...
                    let failed = comm
                        .agree_on_failures(Duration::from_secs(5))
                        .expect("agreement converges");
                    assert_eq!(failed, vec![(1, 2)]);
                    assert!(comm.departed().contains(&(1, 2)));
                    // ...then shrink locally and keep computing.
                    let small = comm.shrink(&failed);
                    assert_eq!(small.size(), 2);
                    for _ in 0..3 {
                        small.barrier();
                    }
                    let sum: u64 = small.allgather(&[small.rank() as u64]).iter().sum();
                    (small.size(), sum)
                }
            }
        })
        .expect("resilient job survives the crash");
        assert_eq!(out[1], None);
        assert_eq!(out[0], Some((2, 1)));
        assert_eq!(out[2], Some((2, 1)));
    }

    #[test]
    fn second_crash_after_shrink_heals_again() {
        let mut cfg = ChaosConfig::new(11);
        cfg.crash = FaultPlan::at(2);
        cfg.crash_rank = Some(1);
        // Rank 2 dies later, while the once-shrunken communicator is
        // already back at work.
        cfg.extra_crashes.push((2, FaultPlan::at(4)));
        let out = Universe::run_resilient(3, ChaosEngine::new(cfg), |comm| {
            let mut cur = comm.clone();
            let mut heals = 0u32;
            loop {
                let c = cur.clone();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    for _ in 0..8 {
                        c.barrier();
                    }
                }));
                match r {
                    Ok(()) => return (cur.size(), heals),
                    Err(_) => {
                        let failed = cur
                            .agree_on_failures(Duration::from_secs(5))
                            .expect("agreement converges");
                        cur = cur.shrink(&failed);
                        heals += 1;
                    }
                }
            }
        })
        .expect("resilient job survives both crashes");
        assert_eq!(out[1], None);
        assert_eq!(out[2], None);
        assert_eq!(out[0], Some((1, 2)));
    }

    #[test]
    fn ring_exchange() {
        let out = Universe::run(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![comm.rank() as u32]);
            let got = comm.recv::<u32>(prev, 7);
            got[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1u8]);
                comm.send(1, 2, vec![2u8]);
                0
            } else {
                // Receive in reverse tag order: tag-2 message must be matched
                // even though tag-1 arrives first.
                let b = comm.recv::<u8>(0, 2);
                let a = comm.recv::<u8>(0, 1);
                (a[0] * 10 + b[0]) as usize
            }
        });
        assert_eq!(out[1], 12);
    }

    #[test]
    fn fifo_within_same_tag() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, 3, vec![i]);
                }
                vec![]
            } else {
                (0..10).map(|_| comm.recv::<u32>(0, 3)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn self_send() {
        let out = Universe::run(1, |comm| {
            comm.send(0, 9, vec![99u64]);
            comm.recv::<u64>(0, 9)[0]
        });
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 5, vec![7u8]);
                comm.barrier();
                true
            } else {
                let early = comm.try_recv::<u8>(0, 5);
                assert!(early.is_none());
                comm.barrier();
                comm.barrier();
                let late = comm.try_recv::<u8>(0, 5);
                late == Some(vec![7u8])
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn split_row_col() {
        // 6 ranks as a 2×3 grid: rows {0,1,2},{3,4,5}; cols {0,3},{1,4},{2,5}.
        let out = Universe::run(6, |comm| {
            let row = comm.rank() / 3;
            let col = comm.rank() % 3;
            let row_comm = comm.split(row, col);
            let col_comm = comm.split(col, row);
            assert_eq!(row_comm.size(), 3);
            assert_eq!(col_comm.size(), 2);
            assert_eq!(row_comm.rank(), col);
            assert_eq!(col_comm.rank(), row);
            // Sum ranks within row via alltoall on the sub-communicator.
            let contrib = vec![comm.rank() as u64; row_comm.size()];
            let got = row_comm.alltoall(&contrib);
            got.iter().sum::<u64>()
        });
        assert_eq!(out, vec![3, 3, 3, 12, 12, 12]);
    }

    #[test]
    fn messages_do_not_leak_across_split_contexts() {
        let out = Universe::run(2, |comm| {
            let sub = comm.split(0, comm.rank());
            if comm.rank() == 0 {
                sub.send(1, 4, vec![1u8]); // on sub-communicator
                comm.send(1, 4, vec![2u8]); // same tag on parent
                0
            } else {
                let parent_msg = comm.recv::<u8>(0, 4);
                let sub_msg = sub.recv::<u8>(0, 4);
                (parent_msg[0] * 10 + sub_msg[0]) as usize
            }
        });
        assert_eq!(out[1], 21);
    }
}
