//! The [`Universe`] owns the shared state backing one "MPI job" and runs one
//! thread per rank.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use psdns_chaos::ChaosEngine;
use psdns_sync::channel::{unbounded, Receiver, Sender};
use psdns_sync::Mutex;

use crate::comm::Communicator;

/// A type-erased point-to-point message.
pub(crate) struct Packet {
    /// Communicator context id (each split gets a fresh one).
    pub ctx: u64,
    /// User or collective tag.
    pub tag: u64,
    /// Job-unique message id; used to discard chaos-injected duplicates.
    pub uid: u64,
    /// True when this message was duplicated by the chaos layer (both the
    /// original and the copy carry the flag; the second arrival is dropped).
    pub dup: bool,
    /// ABFT sidecar: one FNV-1a checksum per payload block, computed by the
    /// sender *before* any in-transit corruption can occur. `None` on
    /// unchecksummed traffic (point-to-point, non-ABFT collectives).
    pub crcs: Option<Vec<u64>>,
    /// The payload, a `Vec<T>` behind `Any`.
    pub payload: Box<dyn Any + Send>,
}

/// Shared state of the job: a full matrix of channels plus per-destination
/// pending queues for out-of-order tag matching, and (optionally) the chaos
/// fault-injection state.
pub(crate) struct Shared {
    pub size: usize,
    /// `tx[src][dst]` — sender side of the (src → dst) channel.
    pub tx: Vec<Vec<Sender<Packet>>>,
    /// `rx[dst][src]` — receiver side, guarded so `Communicator` can be used
    /// from helper threads of the same rank if needed.
    pub rx: Vec<Vec<Mutex<Receiver<Packet>>>>,
    /// Messages received but not yet matched, per (dst, src).
    pub pending: Vec<Vec<Mutex<VecDeque<Packet>>>>,
    /// Fault-injection engine for this job; `None` outside chaos runs, in
    /// which case every hook below is a branch-on-None no-op.
    pub chaos: Option<ChaosEngine>,
    /// `held[src][dst]` — one stashed packet per edge, used by the reorder
    /// fault: a held packet is released *after* the next send on its edge.
    pub held: Vec<Vec<Mutex<Option<Packet>>>>,
    /// Per-destination uids of duplicate-flagged packets already ingested.
    pub dup_seen: Vec<Mutex<HashSet<u64>>>,
    /// Job-unique message id source.
    pub next_uid: AtomicU64,
    /// Set when any rank died; pollers convert this into a typed error
    /// instead of waiting forever for a message that will never come.
    failed: AtomicBool,
    /// First failure wins: (rank, panic message, collective epoch if known).
    failure: Mutex<Option<(usize, String, Option<u64>)>>,
    /// Resilient mode ([`Universe::run_resilient`]): rank death marks the
    /// victim *departed* instead of failing the whole job, so survivors can
    /// agree, shrink and continue.
    pub resilient: bool,
    /// Per-rank collective-epoch counters, bumped once per collective call
    /// (see [`Communicator::next_coll_tag`]). Doubles as the rank's logical
    /// heartbeat: a rank whose counter stops advancing while peers' grow is
    /// the one the failure detector points at. Wall-clock heartbeats would
    /// break seed-determinism; logical ones do not.
    pub coll_epoch: Vec<AtomicU64>,
    /// Ranks that died, with the collective epoch at death and the panic
    /// message — the ground truth the survivors' agreement round converges
    /// on.
    departed: Mutex<BTreeMap<usize, Departed>>,
    /// Revoked communicator contexts (ULFM `MPI_Comm_revoke` analogue):
    /// ordinary receives on a revoked ctx fail with `RankFailed` so ranks
    /// stuck in an abandoned collective learn about a failure they cannot
    /// observe directly (e.g. a non-root rank waiting on a root that bailed
    /// out of a rooted barrier).
    revoked: Mutex<HashSet<u64>>,
    /// Retransmission store for ABFT collectives: the sender's clean payload
    /// (a `Vec<T>` behind `Any`), keyed by `(ctx, tag, gsrc, gdst)`. Each
    /// collective draws a unique tag, so the key identifies one message.
    /// The receiver removes the entry once the checksums verify; a mismatch
    /// pulls a fresh copy from here (the bounded "resend").
    pub retx: Mutex<RetxStore>,
}

/// Key: `(ctx, tag, gsrc, gdst)`; value: the sender's clean payload.
pub type RetxStore = HashMap<(u64, u64, usize, usize), Box<dyn Any + Send>>;

/// Death record of one rank.
#[derive(Clone, Debug)]
pub(crate) struct Departed {
    pub epoch: u64,
    #[allow(dead_code)]
    pub message: String,
}

impl Shared {
    fn new(size: usize, chaos: Option<ChaosEngine>, resilient: bool) -> Arc<Self> {
        let mut tx: Vec<Vec<Sender<Packet>>> = (0..size).map(|_| Vec::new()).collect();
        let mut rx: Vec<Vec<Mutex<Receiver<Packet>>>> = (0..size).map(|_| Vec::new()).collect();
        // Channel (src, dst): sender stored under src, receiver under dst.
        let mut receivers: Vec<Vec<Option<Mutex<Receiver<Packet>>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        for src in 0..size {
            for row in receivers.iter_mut() {
                let (s, r) = unbounded();
                tx[src].push(s);
                row[src] = Some(Mutex::new(r));
            }
        }
        for (dst, row) in receivers.into_iter().enumerate() {
            rx[dst] = row.into_iter().map(|o| o.expect("channel built")).collect();
        }
        let pending = (0..size)
            .map(|_| (0..size).map(|_| Mutex::new(VecDeque::new())).collect())
            .collect();
        let held = (0..size)
            .map(|_| (0..size).map(|_| Mutex::new(None)).collect())
            .collect();
        let dup_seen = (0..size).map(|_| Mutex::new(HashSet::new())).collect();
        Arc::new(Self {
            size,
            tx,
            rx,
            pending,
            chaos,
            held,
            dup_seen,
            next_uid: AtomicU64::new(1),
            failed: AtomicBool::new(false),
            failure: Mutex::new(None),
            resilient,
            coll_epoch: (0..size).map(|_| AtomicU64::new(0)).collect(),
            departed: Mutex::new(BTreeMap::new()),
            revoked: Mutex::new(HashSet::new()),
            retx: Mutex::new(HashMap::new()),
        })
    }

    pub(crate) fn job_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    pub(crate) fn fail(&self, rank: usize, message: String) {
        self.fail_at(rank, message, None);
    }

    pub(crate) fn fail_at(&self, rank: usize, message: String, epoch: Option<u64>) {
        {
            let mut f = self.failure.lock();
            if f.is_none() {
                *f = Some((rank, message, epoch));
            }
        }
        self.failed.store(true, Ordering::Release);
    }

    fn take_failure(&self) -> Option<(usize, String, Option<u64>)> {
        self.failure.lock().take()
    }

    /// Record a rank's death without failing the job (resilient mode).
    /// First record per rank wins; pollers waiting on this rank bail out
    /// with a typed [`crate::CommError::RankFailed`].
    pub(crate) fn mark_departed(&self, rank: usize, epoch: u64, message: String) {
        self.departed
            .lock()
            .entry(rank)
            .or_insert(Departed { epoch, message });
    }

    /// The epoch at which `rank` died, if it has.
    pub(crate) fn departed_epoch(&self, rank: usize) -> Option<u64> {
        self.departed.lock().get(&rank).map(|d| d.epoch)
    }

    /// Mark a communicator context revoked.
    pub(crate) fn revoke_ctx(&self, ctx: u64) {
        self.revoked.lock().insert(ctx);
    }

    /// True when `ctx` has been revoked.
    pub(crate) fn ctx_revoked(&self, ctx: u64) -> bool {
        self.revoked.lock().contains(&ctx)
    }

    /// The lowest-ranked dead rank, as `(global rank, epoch)`, if any.
    pub(crate) fn first_departed(&self) -> Option<(usize, u64)> {
        self.departed
            .lock()
            .iter()
            .next()
            .map(|(&r, d)| (r, d.epoch))
    }

    /// Snapshot of every dead rank as `(global rank, epoch)`, sorted.
    pub(crate) fn departed_snapshot(&self) -> Vec<(usize, u64)> {
        self.departed
            .lock()
            .iter()
            .map(|(&r, d)| (r, d.epoch))
            .collect()
    }

    /// Duplicate filter applied to every packet pulled off a channel or the
    /// held-packet stash. Returns `None` when the packet is a chaos duplicate
    /// that was already delivered.
    pub(crate) fn ingest(&self, gdst: usize, pkt: Packet) -> Option<Packet> {
        if pkt.dup && !self.dup_seen[gdst].lock().insert(pkt.uid) {
            return None;
        }
        Some(pkt)
    }

    /// Release a reorder-held packet on edge (gsrc → gdst) straight into the
    /// pending queue. Called by receivers before blocking, so a held packet
    /// whose edge sees no further sends is never lost.
    pub(crate) fn flush_held(&self, gsrc: usize, gdst: usize) {
        if self.chaos.is_none() {
            return;
        }
        let pkt = self.held[gsrc][gdst].lock().take();
        if let Some(pkt) = pkt {
            if let Some(pkt) = self.ingest(gdst, pkt) {
                self.pending[gdst][gsrc].lock().push_back(pkt);
            }
        }
    }
}

/// A chaos job ended because a rank died (injected crash or genuine panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniverseError {
    /// Global rank that failed first.
    pub rank: usize,
    /// Its panic message.
    pub message: String,
    /// The collective epoch (per-rank collective call count) the crash
    /// interrupted, when the death happened at a collective boundary —
    /// `FaultPlan::at(k)` crash injection dies at epoch `k`, so tests can
    /// assert recovery resumed from the right step.
    pub epoch: Option<u64>,
}

impl fmt::Display for UniverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.epoch {
            Some(e) => write!(
                f,
                "rank {} failed at collective epoch {e}: {}",
                self.rank, self.message
            ),
            None => write!(f, "rank {} failed: {}", self.rank, self.message),
        }
    }
}

impl std::error::Error for UniverseError {}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Entry point: spawn `size` ranks, run `f` on each, return the results in
/// rank order. Panics in any rank propagate (the whole job aborts), like an
/// MPI error with `MPI_ERRORS_ARE_FATAL`.
pub struct Universe;

impl Universe {
    pub fn run<F, R>(size: usize, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        match Self::run_inner(size, None, false, f) {
            Ok(v) => v.into_iter().map(|r| r.expect("rank result")).collect(),
            Err(e) => panic!("rank panicked: {e}"),
        }
    }

    /// Like [`Universe::run`], but with a fault-injection engine threaded
    /// through the whole job, and rank death (injected crash or genuine
    /// panic) surfaced as a typed [`UniverseError`] instead of a panic.
    /// Surviving ranks notice the failure through their recv polling loops
    /// (typed `CommError::PeerFailed`) rather than hanging.
    pub fn run_chaos<F, R>(size: usize, chaos: ChaosEngine, f: F) -> Result<Vec<R>, UniverseError>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        Self::run_inner(size, Some(chaos), false, f)
            .map(|v| v.into_iter().map(|r| r.expect("rank result")).collect())
    }

    /// ULFM-style resilient job: a rank that dies (injected crash or
    /// genuine panic) is marked *departed* instead of failing the job.
    /// Survivors observe the death as a typed
    /// [`crate::CommError::RankFailed`] from their pending receives, can
    /// [`Communicator::agree_on_failures`] and
    /// [`Communicator::shrink`], and keep running; the dead rank's slot in
    /// the result vector is `None`. `Err` is reserved for job-fatal
    /// aborts (e.g. a collective-verification mismatch).
    pub fn run_resilient<F, R>(
        size: usize,
        chaos: ChaosEngine,
        f: F,
    ) -> Result<Vec<Option<R>>, UniverseError>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        Self::run_inner(size, Some(chaos), true, f)
    }

    fn run_inner<F, R>(
        size: usize,
        chaos: Option<ChaosEngine>,
        resilient: bool,
        f: F,
    ) -> Result<Vec<Option<R>>, UniverseError>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        assert!(size > 0, "universe must have at least one rank");
        let shared = Shared::new(size, chaos, resilient);
        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, slot) in results.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                handles.push(scope.spawn(move || {
                    let comm = Communicator::world(Arc::clone(&shared), rank);
                    match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                        Ok(r) => *slot = Some(r),
                        Err(payload) => {
                            let msg = panic_message(payload);
                            if shared.resilient {
                                // Survivable: record the death (idempotent —
                                // an injected crash already did) so peers'
                                // receives turn into typed RankFailed.
                                let epoch = shared.coll_epoch[rank].load(Ordering::Relaxed);
                                shared.mark_departed(rank, epoch, msg);
                            } else {
                                shared.fail(rank, msg);
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("rank thread join");
            }
        });
        if let Some((rank, message, epoch)) = shared.take_failure() {
            return Err(UniverseError {
                rank,
                message,
                epoch,
            });
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn rank_panic_aborts_the_job() {
        let _ = Universe::run(3, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure in rank 1");
            }
            comm.rank()
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_universe_rejected() {
        let _ = Universe::run(0, |_| 0);
    }

    #[test]
    fn run_chaos_reports_first_failure() {
        let out = Universe::run_chaos(2, ChaosEngine::disabled(), |comm| {
            if comm.rank() == 0 {
                panic!("boom in rank 0");
            }
            comm.rank()
        });
        let err = out.expect_err("job must fail");
        assert_eq!(err.rank, 0);
        assert!(err.message.contains("boom"), "got: {}", err.message);
    }

    #[test]
    fn resilient_rank_death_leaves_none_slot() {
        let out = Universe::run_resilient(3, ChaosEngine::disabled(), |comm| {
            if comm.rank() == 2 {
                panic!("genuine failure in rank 2");
            }
            comm.rank() * 3
        })
        .expect("resilient job does not abort");
        assert_eq!(out, vec![Some(0), Some(3), None]);
    }

    #[test]
    fn run_chaos_happy_path_matches_run() {
        let out = Universe::run_chaos(3, ChaosEngine::disabled(), |comm| comm.rank() * 2)
            .expect("no faults injected");
        assert_eq!(out, vec![0, 2, 4]);
    }
}
