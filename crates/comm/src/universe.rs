//! The [`Universe`] owns the shared state backing one "MPI job" and runs one
//! thread per rank.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use psdns_sync::channel::{unbounded, Receiver, Sender};
use psdns_sync::Mutex;

use crate::comm::Communicator;

/// A type-erased point-to-point message.
pub(crate) struct Packet {
    /// Communicator context id (each split gets a fresh one).
    pub ctx: u64,
    /// User or collective tag.
    pub tag: u64,
    /// The payload, a `Vec<T>` behind `Any`.
    pub payload: Box<dyn Any + Send>,
}

/// Shared state of the job: a full matrix of channels plus per-destination
/// pending queues for out-of-order tag matching.
pub(crate) struct Shared {
    pub size: usize,
    /// `tx[src][dst]` — sender side of the (src → dst) channel.
    pub tx: Vec<Vec<Sender<Packet>>>,
    /// `rx[dst][src]` — receiver side, guarded so `Communicator` can be used
    /// from helper threads of the same rank if needed.
    pub rx: Vec<Vec<Mutex<Receiver<Packet>>>>,
    /// Messages received but not yet matched, per (dst, src).
    pub pending: Vec<Vec<Mutex<VecDeque<Packet>>>>,
}

impl Shared {
    fn new(size: usize) -> Arc<Self> {
        let mut tx: Vec<Vec<Sender<Packet>>> = (0..size).map(|_| Vec::new()).collect();
        let mut rx: Vec<Vec<Mutex<Receiver<Packet>>>> = (0..size).map(|_| Vec::new()).collect();
        // Channel (src, dst): sender stored under src, receiver under dst.
        let mut receivers: Vec<Vec<Option<Mutex<Receiver<Packet>>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        for src in 0..size {
            for row in receivers.iter_mut() {
                let (s, r) = unbounded();
                tx[src].push(s);
                row[src] = Some(Mutex::new(r));
            }
        }
        for (dst, row) in receivers.into_iter().enumerate() {
            rx[dst] = row.into_iter().map(|o| o.expect("channel built")).collect();
        }
        let pending = (0..size)
            .map(|_| (0..size).map(|_| Mutex::new(VecDeque::new())).collect())
            .collect();
        Arc::new(Self {
            size,
            tx,
            rx,
            pending,
        })
    }
}

/// Entry point: spawn `size` ranks, run `f` on each, return the results in
/// rank order. Panics in any rank propagate (the whole job aborts), like an
/// MPI error with `MPI_ERRORS_ARE_FATAL`.
pub struct Universe;

impl Universe {
    pub fn run<F, R>(size: usize, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Send + Sync,
        R: Send,
    {
        assert!(size > 0, "universe must have at least one rank");
        let shared = Shared::new(size);
        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, slot) in results.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                handles.push(scope.spawn(move || {
                    let comm = Communicator::world(shared, rank);
                    *slot = Some(f(comm));
                }));
            }
            for h in handles {
                h.join().expect("rank panicked");
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn rank_panic_aborts_the_job() {
        let _ = Universe::run(3, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure in rank 1");
            }
            comm.rank()
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_universe_rejected() {
        let _ = Universe::run(0, |_| 0);
    }
}
