//! Cross-rank collective-matching verification.
//!
//! With a [`CollectiveVerifier`] attached (see
//! [`Communicator::set_collective_verifier`]), every primitive collective is
//! preceded by a fingerprint exchange: each rank posts what it is about to do
//! (collective kind, element count, communicator context, collective epoch)
//! to rank 0, which compares all views of the round and broadcasts a
//! verdict. A divergence — one rank calling `barrier` while another calls
//! `alltoall`, reordered collectives, a rank that never arrives — therefore
//! produces a typed [`CollectiveMismatch`] diagnosis instead of the classic
//! MPI symptom of an unattributable hang (the class of defect tools like
//! MUST detect on real clusters).
//!
//! The exchange rides on a reserved tag namespace above the collective
//! sequencing tags, so even ranks that disagree about *which* collective is
//! happening still pair up their verification messages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psdns_analyze::{
    decode_verdict, encode_verdict, CollectiveFingerprint, CollectiveKind, CollectiveMismatch,
    CollectiveVerifier,
};

use crate::comm::{CommError, Communicator};

/// Tag namespace for verification exchanges. Collective sequencing tags
/// start at 2^32 and grow by one per collective; 2^33 leaves them ~4 billion
/// rounds of headroom before a clash.
pub(crate) const VERIFY_TAG_BASE: u64 = 1 << 33;

/// Per-communicator verifier attachment: the shared [`CollectiveVerifier`]
/// handle plus this communicator's private verification round counter
/// (clones of one rank's handle share it; splits get a fresh one).
#[derive(Clone)]
pub(crate) struct VerifierState {
    pub(crate) v: CollectiveVerifier,
    pub(crate) round: Arc<AtomicU64>,
}

impl VerifierState {
    pub(crate) fn new(v: CollectiveVerifier) -> Self {
        Self {
            v,
            round: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Communicator {
    /// Attach a collective-matching verifier to this rank's handle. Attach
    /// (a clone of) the same verifier on every rank: each collective then
    /// performs a cross-rank fingerprint check, and a divergence kills the
    /// job with a typed [`CollectiveMismatch`] — retrievable from the
    /// verifier after the job dies — instead of hanging.
    ///
    /// Communicators obtained from [`Communicator::split`] after this call
    /// inherit the verifier (with a fresh round counter).
    pub fn set_collective_verifier(&mut self, v: &CollectiveVerifier) {
        self.verifier = Some(VerifierState::new(v.clone()));
    }

    /// The attached collective verifier, if any.
    pub fn collective_verifier(&self) -> Option<&CollectiveVerifier> {
        self.verifier.as_ref().map(|s| &s.v)
    }

    /// Fingerprint-check one collective round. Called at the top of every
    /// primitive collective, *before* its sequencing tag is drawn. No-op
    /// without a verifier; panics (after failing the job and recording the
    /// diagnosis on the verifier) when the ranks' fingerprints diverge.
    pub(crate) fn verify_collective(&self, kind: CollectiveKind, elems: usize) {
        let Some(state) = self.verifier.clone() else {
            return;
        };
        let round = state.round.fetch_add(1, Ordering::Relaxed);
        if self.size() < 2 {
            return;
        }
        let fp = CollectiveFingerprint {
            kind,
            elems: elems as u64,
            ctx: self.ctx,
            seq: round,
        };
        let tag = VERIFY_TAG_BASE + round;
        let deadline = Instant::now() + state.v.deadline();
        if self.rank() == 0 {
            self.verify_as_root(&state, fp, tag, round, deadline);
        } else {
            self.verify_as_leaf(&state, fp, tag, round, deadline);
        }
    }

    /// Rank 0 collects every rank's fingerprint, diagnoses the first
    /// divergence (or absence), and broadcasts the verdict.
    fn verify_as_root(
        &self,
        state: &VerifierState,
        fp: CollectiveFingerprint,
        tag: u64,
        round: u64,
        deadline: Instant,
    ) {
        let mut diagnosis: Option<CollectiveMismatch> = None;
        for src in 1..self.size() {
            match self.recv_match_deadline::<u64>(src, tag, Some(deadline)) {
                Ok(raw) => {
                    let peer = CollectiveFingerprint::decode(&raw)
                        .expect("verification payload is a fingerprint");
                    if diagnosis.is_none() && !fp.matches(&peer) {
                        diagnosis = Some(CollectiveMismatch::Mismatched {
                            round,
                            a: (0, fp.clone()),
                            b: (src, peer),
                        });
                    }
                }
                Err(e) => {
                    if diagnosis.is_none() {
                        let waited_ms = match &e {
                            CommError::Timeout { waited_ms, .. } => *waited_ms,
                            _ => state.v.deadline().as_millis() as u64,
                        };
                        diagnosis = Some(CollectiveMismatch::Missing {
                            round,
                            rank: src,
                            waited_ms,
                            posted: (0, fp.clone()),
                        });
                    }
                }
            }
        }
        // Broadcast the verdict (even to an absent rank — sends are
        // buffered) so responsive leaves fail with the diagnosis rather
        // than their own timeout.
        let verdict: Vec<u64> = match &diagnosis {
            None => vec![1],
            Some(m) => encode_verdict(m),
        };
        for dst in 1..self.size() {
            self.send_raw(dst, tag, verdict.clone());
        }
        if let Some(m) = diagnosis {
            self.verify_fail(state, m);
        }
    }

    /// Non-root ranks post their fingerprint and await the root's verdict.
    fn verify_as_leaf(
        &self,
        state: &VerifierState,
        fp: CollectiveFingerprint,
        tag: u64,
        round: u64,
        deadline: Instant,
    ) {
        self.send_raw(0, tag, fp.encode());
        match self.recv_match_deadline::<u64>(0, tag, Some(deadline)) {
            Ok(v) if v == [1] => {}
            Ok(v) => {
                let m = decode_verdict(&v).expect("verdict is OK or a mismatch");
                self.verify_fail(state, m);
            }
            Err(e) => {
                // Root died or went silent; prefer its recorded diagnosis
                // (the verifier is shared across ranks) over a generic one.
                let m = state.v.mismatch().unwrap_or_else(|| {
                    let waited_ms = match &e {
                        CommError::Timeout { waited_ms, .. } => *waited_ms,
                        _ => state.v.deadline().as_millis() as u64,
                    };
                    CollectiveMismatch::Missing {
                        round,
                        rank: 0,
                        waited_ms,
                        posted: (self.rank(), fp),
                    }
                });
                self.verify_fail(state, m);
            }
        }
    }

    fn verify_fail(&self, state: &VerifierState, m: CollectiveMismatch) -> ! {
        state.v.report(m.clone());
        if let Some(t) = &self.tracer {
            t.incr_faults();
        }
        let grank = self.global_rank(self.rank());
        self.shared
            .fail(grank, format!("collective verification: {m}"));
        panic!(
            "collective verification failed on rank {}: {m}",
            self.rank()
        );
    }
}
