//! ABFT-style payload checksums for collectives.
//!
//! Every checksummed send (see `Communicator::send_coll`) computes one FNV-1a
//! hash per [`ABFT_BLOCK`]-element block of the payload and ships the hashes
//! as a sidecar on the packet. The receiver recomputes them on arrival: a
//! mismatch localizes the corruption to a block and triggers a bounded
//! retransmission from the sender's retained clean copy, so a flipped bit in
//! transit surfaces as a typed [`crate::CommError::Corrupted`] (or heals
//! silently) instead of poisoning the spectra downstream. This is the
//! algorithm-based fault-tolerance posture the exascale SDC literature
//! assumes: detection must be cheaper than the data motion it guards.
//!
//! The [`AbftData`] element trait exposes exactly what checksumming and
//! seeded fault injection need — a canonical bit pattern to hash and a way
//! to flip an addressed bit — for every payload type the collectives carry:
//! primitive integers, floats, `bool`, small tuples, and
//! [`psdns_fft::Complex`].

use psdns_fft::{Complex, Real};

/// Elements of the payload block are hashed this many at a time; a checksum
/// mismatch therefore localizes corruption to a 1024-element block, which is
/// what [`crate::CommError::Corrupted`] reports.
pub(crate) const ABFT_BLOCK: usize = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a step over the eight little-endian bytes of a word.
#[inline]
fn fnv_word(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// An element type that checksummed collectives can carry: hashable by its
/// canonical bit pattern, and bit-addressable so the chaos layer can flip a
/// chosen bit deterministically.
pub trait AbftData: Clone + Send + 'static {
    /// Number of addressable bits in one element (the fault-injection
    /// address space; a payload of `n` elements has `n · BITS` flippable
    /// bits).
    const BITS: u32;
    /// Accumulate this element's canonical bit pattern into an FNV-1a hash.
    fn fold(&self, h: u64) -> u64;
    /// Flip bit `bit` (`< Self::BITS`) of the element's representation.
    fn flip_bit(&mut self, bit: u32);
}

macro_rules! abft_int {
    ($($t:ty),* $(,)?) => {$(
        impl AbftData for $t {
            const BITS: u32 = <$t>::BITS;
            #[inline]
            fn fold(&self, h: u64) -> u64 {
                fnv_word(h, *self as u64)
            }
            #[inline]
            fn flip_bit(&mut self, bit: u32) {
                *self ^= (1 as $t) << bit;
            }
        }
    )*};
}

abft_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! abft_float {
    ($t:ty, $bits:ty) => {
        impl AbftData for $t {
            const BITS: u32 = <$bits>::BITS;
            #[inline]
            fn fold(&self, h: u64) -> u64 {
                fnv_word(h, self.to_bits() as u64)
            }
            #[inline]
            fn flip_bit(&mut self, bit: u32) {
                *self = <$t>::from_bits(self.to_bits() ^ ((1 as $bits) << bit));
            }
        }
    };
}

abft_float!(f32, u32);
abft_float!(f64, u64);

impl AbftData for bool {
    const BITS: u32 = 1;
    #[inline]
    fn fold(&self, h: u64) -> u64 {
        fnv_word(h, *self as u64)
    }
    #[inline]
    fn flip_bit(&mut self, _bit: u32) {
        *self = !*self;
    }
}

/// Spectral payloads: hash/flip the re and im halves back to back. The
/// `Real` bit-access hooks keep this generic over `f32`/`f64` pencils.
impl<T: Real> AbftData for Complex<T> {
    const BITS: u32 = 2 * T::BITS;
    #[inline]
    fn fold(&self, h: u64) -> u64 {
        fnv_word(fnv_word(h, self.re.to_bits_u64()), self.im.to_bits_u64())
    }
    #[inline]
    fn flip_bit(&mut self, bit: u32) {
        if bit < T::BITS {
            self.re = T::from_bits_u64(self.re.to_bits_u64() ^ (1u64 << bit));
        } else {
            self.im = T::from_bits_u64(self.im.to_bits_u64() ^ (1u64 << (bit - T::BITS)));
        }
    }
}

macro_rules! abft_tuple {
    ($(($($n:tt $T:ident),+)),* $(,)?) => {$(
        impl<$($T: AbftData),+> AbftData for ($($T,)+) {
            const BITS: u32 = 0 $(+ $T::BITS)+;
            #[inline]
            fn fold(&self, h: u64) -> u64 {
                let mut h = h;
                $(h = self.$n.fold(h);)+
                h
            }
            #[inline]
            fn flip_bit(&mut self, bit: u32) {
                let mut bit = bit;
                $(
                    if bit < $T::BITS {
                        return self.$n.flip_bit(bit);
                    }
                    bit -= $T::BITS;
                )+
                let _ = bit;
            }
        }
    )*};
}

abft_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// One FNV-1a checksum per [`ABFT_BLOCK`]-element block, in payload order.
/// Empty payloads produce an empty sidecar (nothing to protect).
pub(crate) fn block_checksums<T: AbftData>(data: &[T]) -> Vec<u64> {
    data.chunks(ABFT_BLOCK)
        .map(|blk| blk.iter().fold(FNV_OFFSET, |h, x| x.fold(h)))
        .collect()
}

/// Recompute the sidecar and report the first mismatching block, if any. A
/// sidecar of the wrong length (a corrupted sidecar itself, or a truncated
/// payload) counts as block 0.
pub(crate) fn first_corrupt_block<T: AbftData>(data: &[T], crcs: &[u64]) -> Option<usize> {
    if crcs.len() != data.len().div_ceil(ABFT_BLOCK) {
        return Some(0);
    }
    data.chunks(ABFT_BLOCK).enumerate().find_map(|(i, blk)| {
        (blk.iter().fold(FNV_OFFSET, |h, x| x.fold(h)) != crcs[i]).then_some(i)
    })
}

/// Flip one seeded bit of the payload: `draw` (a value from
/// [`psdns_chaos::ChaosEngine::draw`]) addresses a uniformly chosen bit of
/// the `len · BITS` total. No-op on empty payloads.
pub(crate) fn flip_payload_bit<T: AbftData>(data: &mut [T], draw: u64) {
    if data.is_empty() {
        return;
    }
    let total = data.len() as u64 * T::BITS as u64;
    let bit = draw % total;
    data[(bit / T::BITS as u64) as usize].flip_bit((bit % T::BITS as u64) as u32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn checksums_cover_blocks_and_tail() {
        let data: Vec<u64> = (0..ABFT_BLOCK as u64 * 2 + 7).collect();
        let crcs = block_checksums(&data);
        assert_eq!(crcs.len(), 3);
        assert_eq!(first_corrupt_block(&data, &crcs), None);
        assert!(block_checksums::<u64>(&[]).is_empty());
    }

    #[test]
    fn tuple_flip_addresses_components() {
        let mut t = (0u64, 0usize, 0u64);
        t.flip_bit(64 + 3); // second component, bit 3
        assert_eq!(t, (0, 8, 0));
        t.flip_bit(64 + 64 + 63); // third component, top bit
        assert_eq!(t, (0, 8, 1 << 63));
    }

    #[test]
    fn complex_flip_is_involutive_and_detected() {
        let mut data = vec![psdns_fft::Complex64::new(1.25, -3.5); 10];
        let crcs = block_checksums(&data);
        data[7].flip_bit(64 + 13); // im mantissa bit
        assert_eq!(first_corrupt_block(&data, &crcs), Some(0));
        data[7].flip_bit(64 + 13);
        assert_eq!(first_corrupt_block(&data, &crcs), None);
    }

    #[test]
    fn wrong_sidecar_length_is_corruption() {
        let data = vec![1u32; 8];
        assert_eq!(first_corrupt_block(&data, &[]), Some(0));
    }

    proptest! {
        /// Any single bit flip anywhere in an f64 payload is detected, and
        /// the reported block is the one holding the flipped element.
        #[test]
        fn single_bit_flip_always_detected_f64(
            len in 1usize..4000,
            seed in 0u64..u64::MAX,
            bit in 0u64..u64::MAX,
        ) {
            let mut data: Vec<f64> = (0..len)
                .map(|i| (seed.wrapping_add(i as u64) as f64) * 1e-3)
                .collect();
            let crcs = block_checksums(&data);
            let bit = bit % (len as u64 * 64);
            let elem = (bit / 64) as usize;
            data[elem].flip_bit((bit % 64) as u32);
            prop_assert_eq!(first_corrupt_block(&data, &crcs), Some(elem / ABFT_BLOCK));
        }

        /// Same guarantee for u32 payloads (the metadata collectives).
        #[test]
        fn single_bit_flip_always_detected_u32(
            len in 1usize..3000,
            seed in 0u32..u32::MAX,
            bit in 0u64..u64::MAX,
        ) {
            let mut data: Vec<u32> = (0..len).map(|i| seed.wrapping_add(i as u32)).collect();
            let crcs = block_checksums(&data);
            let bit = bit % (len as u64 * 32);
            let elem = (bit / 32) as usize;
            data[elem].flip_bit((bit % 32) as u32);
            prop_assert_eq!(first_corrupt_block(&data, &crcs), Some(elem / ABFT_BLOCK));
        }
    }
}
