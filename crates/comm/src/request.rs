//! Nonblocking-communication requests, the analogue of `MPI_Request`.

use std::time::{Duration, Instant};

use crate::comm::{CommError, Communicator};

/// Handle to an in-flight nonblocking all-to-all. Sends were posted when the
/// request was created; receiving (and thus completion) happens in
/// [`wait`](Request::wait). Matches the paper's use of `MPI_IALLTOALL` +
/// `MPI_WAIT` to overlap the global transpose with GPU work (§3.4, Fig. 4).
#[must_use = "an ialltoall that is never waited on never completes"]
pub struct Request<T> {
    comm: Communicator,
    tag: u64,
    chunk: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: crate::AbftData> Request<T> {
    pub(crate) fn new(comm: Communicator, tag: u64, chunk: usize) -> Self {
        Self {
            comm,
            tag,
            chunk,
            _marker: std::marker::PhantomData,
        }
    }

    /// Span guard covering the receive fan-in, when a tracer is attached.
    fn wait_span(&self) -> Option<psdns_trace::SpanGuard> {
        self.comm.tracer().map(|t| {
            t.span(
                psdns_trace::SpanKind::A2aWait,
                crate::coll::NET_TRACK,
                &format!("wait[{}x{}]", self.comm.size(), self.chunk),
            )
        })
    }

    /// Block until the exchange completes; returns the received buffer with
    /// rank `s`'s chunk at positions `[s·chunk, (s+1)·chunk)`.
    pub fn wait(self) -> Vec<T> {
        let _span = self.wait_span();
        // Unbounded by construction — the global analyzer lints this form.
        self.comm.record_wait(self.tag, false);
        let size = self.comm.size();
        let mut out = Vec::with_capacity(size * self.chunk);
        for src in 0..size {
            let piece = self.comm.recv_coll::<T>(src, self.tag);
            debug_assert_eq!(piece.len(), self.chunk);
            out.extend(piece);
        }
        out
    }

    /// Deadline-aware completion: like [`wait`](Request::wait) but gives up
    /// with a typed [`CommError::Timeout`] when any peer's chunk has not
    /// arrived within `timeout`. Chunks received before the timeout are
    /// consumed; the request is spent either way (as with an MPI request
    /// after `MPI_Cancel`).
    pub fn wait_deadline(self, timeout: Duration) -> Result<Vec<T>, CommError> {
        let _span = self.wait_span();
        self.comm.record_wait(self.tag, true);
        let deadline = Instant::now() + timeout;
        let size = self.comm.size();
        let mut out = Vec::with_capacity(size * self.chunk);
        for src in 0..size {
            let piece = self
                .comm
                .recv_coll_deadline::<T>(src, self.tag, Some(deadline))?;
            debug_assert_eq!(piece.len(), self.chunk);
            out.extend(piece);
        }
        Ok(out)
    }

    /// Complete under the communicator's configured a2a watchdog (see
    /// [`Communicator::set_a2a_watchdog`]): a hung exchange surfaces as
    /// [`CommError::Timeout`] within the deadline instead of blocking
    /// forever. Without a configured watchdog this is a plain `wait`.
    ///
    /// With [`Communicator::set_adaptive_a2a_watchdog`] enabled, the
    /// deadline tracks a rolling window of observed exchange latencies
    /// (`max(floor, factor × p99)`) and each successful wait feeds the
    /// window; the adaptive deadline takes precedence over the fixed one.
    pub fn wait_watchdog(self) -> Result<Vec<T>, CommError> {
        if let Some(wd) = self.comm.adaptive_a2a_watchdog().cloned() {
            let started = Instant::now();
            let out = self.wait_deadline(wd.deadline())?;
            wd.observe(started.elapsed());
            return Ok(out);
        }
        match self.comm.a2a_watchdog() {
            Some(deadline) => self.wait_deadline(deadline),
            None => Ok(self.wait()),
        }
    }

    /// Complete the exchange into a caller-provided buffer of length
    /// `size · chunk` (avoids the concatenation allocation on hot paths).
    pub fn wait_into(self, out: &mut [T]) {
        let _span = self.wait_span();
        self.comm.record_wait(self.tag, false);
        let size = self.comm.size();
        assert_eq!(out.len(), size * self.chunk, "output buffer size mismatch");
        for src in 0..size {
            let piece = self.comm.recv_coll::<T>(src, self.tag);
            debug_assert_eq!(piece.len(), self.chunk);
            out[src * self.chunk..(src + 1) * self.chunk].clone_from_slice(&piece);
        }
    }

    /// Non-blocking completion check: returns `Ok(data)` if every peer's
    /// chunk has already arrived, otherwise gives the request back.
    // The Err variant *is* the not-yet-complete request handed back to the
    // caller (MPI_Test semantics); boxing it would complicate every caller
    // for a cold path.
    #[allow(clippy::result_large_err)]
    pub fn test(self) -> Result<Vec<T>, Request<T>> {
        let size = self.comm.size();
        // Peek cheaply: if any chunk is missing we must not consume others,
        // so first check arrival of all chunks without removing... a simple
        // conservative implementation: try to receive all, buffering what we
        // got. Because recv order per (src, tag) is FIFO and this tag is
        // unique to this collective, consuming is safe — but if a later chunk
        // is missing we must stash consumed ones. We simply try sources in
        // order and bail out by re-queueing nothing: instead, collect
        // try_recv results and if incomplete, keep them inside the request.
        // To keep the state machine simple we only test source 0 as a cheap
        // readiness hint, then fall back to full wait when ready.
        let ready = (0..size).all(|src| self.comm_has_message(src));
        if ready {
            Ok(self.wait())
        } else {
            Err(self)
        }
    }

    fn comm_has_message(&self, src: usize) -> bool {
        self.comm.has_pending_or_queued(src, self.tag)
    }
}

impl Communicator {
    /// True when a message from `src` with `tag` on this communicator has
    /// arrived (either already buffered or sitting in the channel).
    pub(crate) fn has_pending_or_queued(&self, src: usize, tag: u64) -> bool {
        let gsrc = self.members[src];
        let gme = self.members[self.rank()];
        self.shared.flush_held(gsrc, gme);
        {
            let pend = self.shared.pending[gme][gsrc].lock();
            if pend.iter().any(|p| p.ctx == self.ctx && p.tag == tag) {
                return true;
            }
        }
        // Drain whatever is currently in the channel into pending, then look.
        loop {
            let pkt = {
                let rx = self.shared.rx[gme][gsrc].lock();
                match rx.try_recv() {
                    Ok(p) => p,
                    Err(_) => break,
                }
            };
            let Some(pkt) = self.shared.ingest(gme, pkt) else {
                continue;
            };
            let matches = pkt.ctx == self.ctx && pkt.tag == tag;
            self.shared.pending[gme][gsrc].lock().push_back(pkt);
            if matches {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn adaptive_watchdog_feeds_window() {
        let out = Universe::run(2, |mut comm| {
            comm.set_adaptive_a2a_watchdog(std::time::Duration::from_secs(5), 5);
            for _ in 0..3 {
                let req = comm.ialltoall(&[comm.rank() as u8; 2]);
                let got = req.wait_watchdog().expect("exchange completes");
                assert_eq!(got, vec![0, 1]);
            }
            comm.adaptive_a2a_watchdog()
                .expect("enabled")
                .observations()
        });
        assert_eq!(out, vec![3, 3]);
    }

    #[test]
    fn wait_into_fills_buffer() {
        let out = Universe::run(4, |comm| {
            let req = comm.ialltoall(&[comm.rank() as u16; 4]);
            let mut buf = vec![0u16; 4];
            req.wait_into(&mut buf);
            buf
        });
        for buf in out {
            assert_eq!(buf, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn test_eventually_succeeds() {
        let out = Universe::run(2, |comm| {
            let req = comm.ialltoall(&[comm.rank() as u8; 2]);
            let mut req = match req.test() {
                Ok(data) => return data,
                Err(r) => r,
            };
            loop {
                match req.test() {
                    Ok(data) => return data,
                    Err(r) => {
                        req = r;
                        std::thread::yield_now();
                    }
                }
            }
        });
        for buf in out {
            assert_eq!(buf, vec![0, 1]);
        }
    }
}
