//! # psdns-comm
//!
//! A thread-backed message-passing runtime with MPI-like semantics. This is
//! the stand-in for IBM Spectrum MPI in the SC '19 paper reproduction: the
//! solver code in `psdns-core` is written against communicators, blocking
//! and nonblocking all-to-alls, and communicator splits exactly as the
//! paper's Fortran code is written against MPI, but "ranks" are threads in
//! one address space.
//!
//! ## Semantics preserved from MPI
//!
//! * point-to-point `send`/`recv` with tag matching and per-(src,dst) FIFO
//!   ordering;
//! * collectives must be called by all ranks of a communicator in the same
//!   order (they are sequenced by an internal collective counter);
//! * `ialltoall` returns a [`Request`] immediately; the exchange completes
//!   on [`Request::wait`], allowing genuine compute/communication overlap
//!   (paper §3.4 posts `MPI_IALLTOALL` per pencil and waits later);
//! * `split` builds row/column communicators for 2-D pencil decompositions
//!   (paper §3.1).
//!
//! ## Example
//!
//! ```
//! use psdns_comm::Universe;
//! let sums = Universe::run(4, |comm| {
//!     let mine = vec![comm.rank() as u64; comm.size()];
//!     let all = comm.alltoall(&mine);
//!     all.iter().sum::<u64>()
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]); // 0+1+2+3 from every peer
//! ```

mod abft;
mod coll;
mod comm;
mod request;
mod universe;
mod verify;

pub use abft::AbftData;
pub use comm::{AdaptiveWatchdog, CommError, Communicator};
pub use psdns_chaos::WatchdogPolicy;
pub use request::Request;
pub use universe::{Universe, UniverseError};

// Re-exported so downstream crates can configure chaos campaigns without a
// direct psdns-chaos dependency.
pub use psdns_chaos::{ChaosConfig, ChaosEngine, FaultKind, FaultPlan, RetryPolicy};

// Collective-matching verification vocabulary (see
// [`Communicator::set_collective_verifier`]), re-exported the same way.
pub use psdns_analyze::{
    CollectiveFingerprint, CollectiveKind, CollectiveMismatch, CollectiveVerifier,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = Universe::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }
}
