//! Collective operations. All collectives must be invoked by every rank of
//! the communicator in the same order (MPI's usual contract); an internal
//! sequence counter turns each call site into a unique tag so consecutive
//! collectives cannot interfere.

use crate::comm::Communicator;
use crate::request::Request;
use psdns_analyze::CollectiveKind;
use psdns_trace::SpanKind;

/// Track name for communication spans; combined with the span's rank this
/// yields one network lane per rank in the exported trace.
pub(crate) const NET_TRACK: &str = "net";

impl Communicator {
    /// Synchronize all ranks (gather-to-root + broadcast).
    pub fn barrier(&self) {
        self.verify_collective(CollectiveKind::Barrier, 0);
        let tag = self.next_coll_tag();
        self.record_post(CollectiveKind::Barrier, tag, true);
        let root = 0;
        if self.rank() == root {
            for src in 1..self.size() {
                let _ = self.recv_raw::<u8>(src, tag);
            }
            for dst in 1..self.size() {
                self.send_raw::<u8>(dst, tag, Vec::new());
            }
        } else {
            self.send_raw::<u8>(root, tag, Vec::new());
            let _ = self.recv_raw::<u8>(root, tag);
        }
    }

    /// Broadcast `data` from `root` to all ranks; every rank returns the
    /// root's buffer.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, data: &[T]) -> Vec<T> {
        self.verify_collective(CollectiveKind::Bcast, data.len());
        let tag = self.next_coll_tag();
        self.record_post(CollectiveKind::Bcast, tag, true);
        if self.rank() == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_raw(dst, tag, data.to_vec());
                }
            }
            data.to_vec()
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// Gather each rank's buffer to `root` (concatenated in rank order);
    /// non-root ranks return an empty Vec.
    pub fn gather<T: Clone + Send + 'static>(&self, root: usize, data: &[T]) -> Vec<T> {
        self.verify_collective(CollectiveKind::Gather, data.len());
        let tag = self.next_coll_tag();
        self.record_post(CollectiveKind::Gather, tag, true);
        if self.rank() == root {
            let mut out = Vec::new();
            for src in 0..self.size() {
                if src == root {
                    out.extend_from_slice(data);
                } else {
                    out.extend(self.recv_raw::<T>(src, tag));
                }
            }
            out
        } else {
            self.send_raw(root, tag, data.to_vec());
            Vec::new()
        }
    }

    /// All ranks obtain the concatenation (in rank order) of every rank's
    /// buffer. Buffers may have different lengths. With
    /// [`Communicator::set_abft_checksums`] armed, each payload carries an
    /// ABFT sidecar verified on receipt (as do `allreduce`/`allreduce_vec`,
    /// which ride on this).
    pub fn allgather<T: crate::AbftData>(&self, data: &[T]) -> Vec<T> {
        self.verify_collective(CollectiveKind::Allgather, data.len());
        let tag = self.next_coll_tag();
        self.record_post(CollectiveKind::Allgather, tag, true);
        for dst in 0..self.size() {
            if dst != self.rank() {
                self.send_coll(dst, tag, data.to_vec());
            }
        }
        let mut out = Vec::new();
        for src in 0..self.size() {
            if src == self.rank() {
                out.extend_from_slice(data);
            } else {
                out.extend(self.recv_coll::<T>(src, tag));
            }
        }
        out
    }

    /// Scatter equal chunks of `root`'s buffer to all ranks.
    pub fn scatter<T: Clone + Send + 'static>(&self, root: usize, data: &[T]) -> Vec<T> {
        self.verify_collective(CollectiveKind::Scatter, data.len());
        let tag = self.next_coll_tag();
        self.record_post(CollectiveKind::Scatter, tag, true);
        if self.rank() == root {
            assert_eq!(data.len() % self.size(), 0, "scatter buffer not divisible");
            let chunk = data.len() / self.size();
            let mut mine = Vec::new();
            for dst in 0..self.size() {
                let piece = &data[dst * chunk..(dst + 1) * chunk];
                if dst == root {
                    mine = piece.to_vec();
                } else {
                    self.send_raw(dst, tag, piece.to_vec());
                }
            }
            mine
        } else {
            assert!(data.is_empty() || !data.is_empty()); // non-root input ignored
            self.recv_raw(root, tag)
        }
    }

    /// Blocking all-to-all with equal chunks: `send.len()` must be a multiple
    /// of `size()`; chunk `d` of the send buffer goes to rank `d`, and the
    /// result holds chunk `s` from rank `s` at position `s`.
    ///
    /// This is the `MPI_ALLTOALL` the paper's standalone kernel benchmarks
    /// (§4.1, Table 2).
    pub fn alltoall<T: crate::AbftData>(&self, send: &[T]) -> Vec<T> {
        self.ialltoall(send).wait()
    }

    /// Nonblocking all-to-all: sends are posted immediately; the returned
    /// [`Request`] completes the receives. This is the paper's
    /// `MPI_IALLTOALL` used to overlap the transpose with GPU work (§3.4).
    pub fn ialltoall<T: crate::AbftData>(&self, send: &[T]) -> Request<T> {
        assert_eq!(
            send.len() % self.size(),
            0,
            "alltoall buffer length {} not divisible by comm size {}",
            send.len(),
            self.size()
        );
        let chunk = send.len() / self.size();
        // Chaos stall: this rank goes quiet before posting its sends, so
        // peers waiting under a watchdog observe a hung exchange.
        if let Some(ch) = &self.shared.chaos {
            if let Some(d) = ch.rank_stall(self.global_rank(self.rank())) {
                std::thread::sleep(d);
            }
        }
        self.verify_collective(CollectiveKind::Alltoall, send.len());
        let tag = self.next_coll_tag();
        // Async post: ordered later by the Request wait's record_wait.
        self.record_post(CollectiveKind::Alltoall, tag, false);
        let span = self.tracer.as_ref().map(|t| {
            t.incr_a2a_calls();
            t.add_bytes_network(std::mem::size_of_val(send));
            t.span(
                SpanKind::A2aPost,
                NET_TRACK,
                &format!("ialltoall[{}x{chunk}]", self.size()),
            )
        });
        for dst in 0..self.size() {
            self.send_coll(dst, tag, send[dst * chunk..(dst + 1) * chunk].to_vec());
        }
        drop(span);
        Request::new(self.clone_handle(), tag, chunk)
    }

    /// Variable-size all-to-all: `send_counts[d]` elements go to rank `d`
    /// (packed contiguously in rank order in `send`); returns the received
    /// buffer packed in rank order together with the per-source counts.
    pub fn alltoallv<T: crate::AbftData>(
        &self,
        send: &[T],
        send_counts: &[usize],
    ) -> (Vec<T>, Vec<usize>) {
        assert_eq!(send_counts.len(), self.size());
        assert_eq!(send.len(), send_counts.iter().sum::<usize>());
        self.verify_collective(CollectiveKind::Alltoallv, send.len());
        let tag = self.next_coll_tag();
        self.record_post(CollectiveKind::Alltoallv, tag, true);
        let mut offset = 0;
        for dst in 0..self.size() {
            let piece = &send[offset..offset + send_counts[dst]];
            offset += send_counts[dst];
            self.send_coll(dst, tag, piece.to_vec());
        }
        let mut out = Vec::new();
        let mut counts = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            let piece = self.recv_coll::<T>(src, tag);
            counts.push(piece.len());
            out.extend(piece);
        }
        (out, counts)
    }

    /// All-reduce with a user-supplied associative, commutative combiner.
    /// Every rank must pass the same `op` (same code path), as in MPI.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: crate::AbftData,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(&[value]);
        let mut it = all.into_iter();
        let first = it.next().expect("non-empty communicator");
        it.fold(first, op)
    }

    /// Element-wise all-reduce over equal-length vectors.
    pub fn allreduce_vec<T, F>(&self, value: &[T], op: F) -> Vec<T>
    where
        T: crate::AbftData,
        F: Fn(&T, &T) -> T,
    {
        let n = value.len();
        let all = self.allgather(value);
        assert_eq!(all.len(), n * self.size(), "ranks passed differing lengths");
        let mut out = all[..n].to_vec();
        for r in 1..self.size() {
            for i in 0..n {
                out[i] = op(&out[i], &all[r * n + i]);
            }
        }
        out
    }

    pub(crate) fn clone_handle(&self) -> Communicator {
        self.clone()
    }
}

/// Clones are handles to the same communicator *for the same rank* — useful
/// for storing a communicator inside solver backends. All clones share the
/// collective sequence counter, so collectives must still be issued once per
/// rank, not once per clone.
impl Clone for Communicator {
    fn clone(&self) -> Self {
        Communicator {
            shared: std::sync::Arc::clone(&self.shared),
            ctx: self.ctx,
            rank: self.rank(),
            members: std::sync::Arc::clone(&self.members),
            coll_seq: std::sync::Arc::clone(&self.coll_seq),
            split_seq: std::sync::Arc::clone(&self.split_seq),
            agree_seq: std::sync::Arc::clone(&self.agree_seq),
            tracer: self.tracer.clone(),
            a2a_deadline: self.a2a_deadline,
            a2a_adaptive: self.a2a_adaptive.clone(),
            verifier: self.verifier.clone(),
            recorder: self.recorder.clone(),
            abft: self.abft,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn alltoall_transposes_rank_matrix() {
        // Rank r sends value 100*r + d to rank d; after the exchange rank d
        // holds 100*s + d at position s — a transpose of the (r, d) matrix.
        let size = 6;
        let out = Universe::run(size, |comm| {
            let send: Vec<u32> = (0..size).map(|d| (100 * comm.rank() + d) as u32).collect();
            comm.alltoall(&send)
        });
        for (d, recvd) in out.iter().enumerate() {
            for s in 0..size {
                assert_eq!(recvd[s], (100 * s + d) as u32);
            }
        }
    }

    #[test]
    fn alltoall_multi_element_chunks() {
        let size = 4;
        let chunk = 3;
        let out = Universe::run(size, |comm| {
            let send: Vec<u64> = (0..size * chunk)
                .map(|i| (comm.rank() * 1000 + i) as u64)
                .collect();
            comm.alltoall(&send)
        });
        for (d, recvd) in out.iter().enumerate() {
            assert_eq!(recvd.len(), size * chunk);
            for s in 0..size {
                for c in 0..chunk {
                    assert_eq!(recvd[s * chunk + c], (s * 1000 + d * chunk + c) as u64);
                }
            }
        }
    }

    #[test]
    fn consecutive_alltoalls_do_not_mix() {
        let out = Universe::run(3, |comm| {
            let first = comm.alltoall(&[comm.rank() as u8; 3]);
            let second = comm.alltoall(&[(10 + comm.rank()) as u8; 3]);
            (first, second)
        });
        for (first, second) in &out {
            assert_eq!(first, &vec![0, 1, 2]);
            assert_eq!(second, &vec![10, 11, 12]);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn alltoallv_roundtrip() {
        let size = 4;
        let out = Universe::run(size, |comm| {
            // Rank r sends (r + d + 1) copies of marker r*10+d to rank d.
            let counts: Vec<usize> = (0..size).map(|d| comm.rank() + d + 1).collect();
            let mut send = Vec::new();
            for d in 0..size {
                send.extend(std::iter::repeat_n(
                    (comm.rank() * 10 + d) as u16,
                    counts[d],
                ));
            }
            comm.alltoallv(&send, &counts)
        });
        for (d, (data, counts)) in out.iter().enumerate() {
            let mut offset = 0;
            for s in 0..size {
                assert_eq!(counts[s], s + d + 1);
                for i in 0..counts[s] {
                    assert_eq!(data[offset + i], (s * 10 + d) as u16);
                }
                offset += counts[s];
            }
        }
    }

    #[test]
    fn bcast_and_gather() {
        let out = Universe::run(5, |comm| {
            let rooted = comm.bcast(2, &[comm.rank() as u32 * 7]);
            let gathered = comm.gather(0, &[comm.rank() as u32]);
            (rooted, gathered)
        });
        for (r, (rooted, gathered)) in out.iter().enumerate() {
            assert_eq!(rooted, &vec![14]);
            if r == 0 {
                assert_eq!(gathered, &vec![0, 1, 2, 3, 4]);
            } else {
                assert!(gathered.is_empty());
            }
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let out = Universe::run(3, |comm| {
            let data: Vec<u8> = if comm.rank() == 1 {
                (0..9).collect()
            } else {
                vec![]
            };
            comm.scatter(1, &data)
        });
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[1], vec![3, 4, 5]);
        assert_eq!(out[2], vec![6, 7, 8]);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let out = Universe::run(6, |comm| {
            let sum = comm.allreduce(comm.rank() as u64, |a, b| a + b);
            let max = comm.allreduce(comm.rank() as u64 * 3, std::cmp::max);
            (sum, max)
        });
        for (sum, max) in out {
            assert_eq!(sum, 15);
            assert_eq!(max, 15);
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Universe::run(4, |comm| {
            let v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_vec(&v, |a, b| a + b)
        });
        for v in out {
            assert_eq!(v, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn ialltoall_overlaps_with_local_work() {
        let size = 4;
        let out = Universe::run(size, |comm| {
            let send: Vec<u32> = vec![comm.rank() as u32; size];
            let req = comm.ialltoall(&send);
            // "Compute" while the exchange is in flight.
            let local: u32 = (0..1000).sum::<u32>();
            let recvd = req.wait();
            (local, recvd)
        });
        for (local, recvd) in out {
            assert_eq!(local, 499_500);
            assert_eq!(recvd, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn multiple_outstanding_ialltoalls_complete_in_any_wait_order() {
        let out = Universe::run(3, |comm| {
            let r1 = comm.ialltoall(&[comm.rank() as u8; 3]);
            let r2 = comm.ialltoall(&[(comm.rank() + 10) as u8; 3]);
            // Wait in reverse order of posting.
            let b = r2.wait();
            let a = r1.wait();
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, vec![0, 1, 2]);
            assert_eq!(b, vec![10, 11, 12]);
        }
    }
}

#[cfg(test)]
mod abft_tests {
    use crate::{ChaosConfig, ChaosEngine, CommError, FaultPlan, Universe};
    use std::time::Duration;

    fn flip_cfg(seed: u64, plan: FaultPlan, site: &str) -> ChaosConfig {
        let mut cfg = ChaosConfig::new(seed);
        cfg.bit_flip = plan;
        cfg.bit_flip_site = Some(site.to_string());
        cfg
    }

    #[test]
    fn healthy_path_is_transparent_and_drains_retx() {
        let out = Universe::run(3, |mut comm| {
            comm.set_abft_checksums(true);
            let send: Vec<f64> = (0..6).map(|i| (comm.rank() * 10 + i) as f64).collect();
            let got = comm.alltoall(&send);
            // Every rank is past its receives once the barrier completes, so
            // the global retransmission store must be fully drained.
            comm.barrier();
            assert!(comm.shared.retx.lock().is_empty(), "retx store must drain");
            got
        });
        for (d, recvd) in out.iter().enumerate() {
            for s in 0..3 {
                assert_eq!(recvd[s * 2], (s * 10 + d * 2) as f64);
                assert_eq!(recvd[s * 2 + 1], (s * 10 + d * 2 + 1) as f64);
            }
        }
    }

    #[test]
    fn transit_flip_is_healed_by_retransmission() {
        // One seeded flip on every `flip:` edge at its first checksummed
        // send; the verified receive must retransmit and return clean data.
        let run = |seed| {
            Universe::run_chaos(
                2,
                ChaosEngine::new(flip_cfg(seed, FaultPlan::at(0), "flip:")),
                |mut comm| {
                    comm.set_abft_checksums(true);
                    let send: Vec<f64> = (0..8).map(|i| (comm.rank() * 100 + i) as f64).collect();
                    comm.alltoall(&send)
                },
            )
            .expect("corruption heals, job survives")
        };
        let out = run(42);
        for (d, recvd) in out.iter().enumerate() {
            for s in 0..2 {
                for c in 0..4 {
                    assert_eq!(recvd[s * 4 + c], (s * 100 + d * 4 + c) as f64);
                }
            }
        }
        // Same-seed replay is byte-identical; a different seed also heals.
        assert_eq!(out, run(42));
        assert_eq!(out, run(7));
    }

    #[test]
    fn allgather_and_allreduce_heal_under_flips() {
        let out = Universe::run_chaos(
            2,
            ChaosEngine::new(flip_cfg(11, FaultPlan::at(0), "flip:")),
            |mut comm| {
                comm.set_abft_checksums(true);
                let sum = comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b);
                let all = comm.allgather(&[comm.rank() as f64; 3]);
                (sum, all)
            },
        )
        .expect("corruption heals");
        for (sum, all) in out {
            assert_eq!(sum, 3);
            assert_eq!(all, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn persistent_corruption_yields_typed_error() {
        // Flip every checksummed send *and* every retransmission: the
        // bounded resend exhausts and surfaces CommError::Corrupted — the
        // unrecoverable-SDC analogue of a double fault. Not a hang.
        let mut cfg = ChaosConfig::new(5);
        cfg.bit_flip = FaultPlan::with_prob(1.0);
        let out = Universe::run_chaos(2, ChaosEngine::new(cfg), |mut comm| {
            comm.set_abft_checksums(true);
            let req = comm.ialltoall(&[comm.rank() as f64; 2]);
            req.wait_deadline(Duration::from_secs(10))
        })
        .expect("typed error, not rank death");
        for r in out {
            match r {
                Err(CommError::Corrupted { block, .. }) => assert_eq!(block, 0),
                other => panic!("expected Corrupted, got {other:?}"),
            }
        }
    }

    #[test]
    fn unarmed_collectives_carry_no_sidecar_under_flip_plan() {
        // Without set_abft_checksums the BitFlip plan has no `flip:` site to
        // fire at — payloads are exactly the pre-ABFT ones.
        let out = Universe::run_chaos(
            2,
            ChaosEngine::new(flip_cfg(9, FaultPlan::with_prob(1.0), "flip:")),
            |comm| comm.alltoall(&[comm.rank() as u32; 2]),
        )
        .expect("no faults fire");
        for recvd in out {
            assert_eq!(recvd, vec![0, 1]);
        }
    }
}

#[cfg(test)]
mod stress_tests {
    use crate::Universe;

    /// Many ranks, many interleaved collectives on parent and split
    /// communicators — a deadlock/mismatch smoke screen.
    #[test]
    fn interleaved_collectives_on_many_communicators() {
        let p = 8;
        let out = Universe::run(p, move |comm| {
            let row = comm.split(comm.rank() / 4, comm.rank() % 4);
            let col = comm.split(10 + comm.rank() % 4, comm.rank() / 4);
            let mut acc = 0u64;
            for round in 0..20 {
                let a = comm.allreduce(comm.rank() as u64 + round, |x, y| x + y);
                let b = row.alltoall(&vec![round; row.size()]);
                let c = col.bcast(round as usize % col.size(), &[a]);
                comm.barrier();
                acc = acc.wrapping_add(a + b.iter().sum::<u64>() + c[0]);
            }
            acc
        });
        // Deterministic: every rank must agree on the collective results
        // that are rank-independent (the allreduce/bcast parts).
        assert_eq!(out.len(), p);
    }

    /// A storm of point-to-point messages with mixed tags must neither
    /// deadlock nor misdeliver.
    #[test]
    fn p2p_storm() {
        let p = 6;
        let msgs = 40;
        let out = Universe::run(p, move |comm| {
            // Everyone sends `msgs` messages to every peer, tagged by index.
            for dst in 0..p {
                for m in 0..msgs {
                    comm.send(dst, m as u64, vec![(comm.rank() * 1000 + m) as u32]);
                }
            }
            // Receive in a scrambled order.
            let mut sum = 0u64;
            for m in (0..msgs).rev() {
                for src in 0..p {
                    let v = comm.recv::<u32>(src, m as u64);
                    assert_eq!(v[0] as usize, src * 1000 + m);
                    sum += v[0] as u64;
                }
            }
            sum
        });
        let expect: u64 = (0..p)
            .map(|s| (0..msgs).map(|m| (s * 1000 + m) as u64).sum::<u64>())
            .sum();
        for s in out {
            assert_eq!(s, expect);
        }
    }
}
