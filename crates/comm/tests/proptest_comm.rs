//! Property tests for the message-passing runtime: the collective algebra
//! must hold for arbitrary sizes, payloads and communicator splits.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use psdns_comm::Universe;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// alltoall is a transpose: recv[d][s] == send[s][d] for any rank count
    /// and chunk length.
    #[test]
    fn alltoall_is_transpose(p in 1usize..7, chunk in 1usize..17, seed in 0u64..1000) {
        let all = Universe::run(p, move |comm| {
            let send: Vec<u64> = (0..p * chunk)
                .map(|i| seed ^ ((comm.rank() * 1_000_003 + i) as u64))
                .collect();
            (send.clone(), comm.alltoall(&send))
        });
        for d in 0..p {
            let (_, recv) = &all[d];
            for s in 0..p {
                let (sent, _) = &all[s];
                prop_assert_eq!(
                    &recv[s * chunk..(s + 1) * chunk],
                    &sent[d * chunk..(d + 1) * chunk]
                );
            }
        }
    }

    /// alltoallv reassembles exactly, for arbitrary per-destination counts.
    #[test]
    fn alltoallv_reassembles(p in 1usize..6, base in 0usize..5, seed in 0u64..100) {
        let all = Universe::run(p, move |comm| {
            let r = comm.rank();
            let counts: Vec<usize> = (0..p).map(|d| (r * 7 + d * 3 + base + seed as usize) % 6).collect();
            let mut send = Vec::new();
            for d in 0..p {
                for i in 0..counts[d] {
                    send.push((r * 10_000 + d * 100 + i) as u32);
                }
            }
            let (recv, rcounts) = comm.alltoallv(&send, &counts);
            (counts, recv, rcounts)
        });
        for d in 0..p {
            let (_, recv, rcounts) = &all[d];
            let mut off = 0;
            for s in 0..p {
                let (scounts, _, _) = &all[s];
                prop_assert_eq!(rcounts[s], scounts[d]);
                for i in 0..rcounts[s] {
                    prop_assert_eq!(recv[off + i], (s * 10_000 + d * 100 + i) as u32);
                }
                off += rcounts[s];
            }
        }
    }

    /// allgather ∘ split == grouping: members of a split communicator see
    /// exactly their color group's data, ordered by key.
    #[test]
    fn split_groups_are_consistent(p in 2usize..8, ncolors in 1usize..4) {
        let all = Universe::run(p, move |comm| {
            let color = comm.rank() % ncolors;
            let sub = comm.split(color, comm.rank());
            let members = sub.allgather(&[comm.rank()]);
            (color, sub.rank(), members)
        });
        for (rank, (color, sub_rank, members)) in all.iter().enumerate() {
            let expect: Vec<usize> = (0..p).filter(|r| r % ncolors == *color).collect();
            prop_assert_eq!(members, &expect);
            prop_assert_eq!(expect[*sub_rank], rank);
        }
    }

    /// allreduce(sum) equals the serial sum for any float payloads.
    #[test]
    fn allreduce_sum_matches_serial(p in 1usize..8, vals in prop::collection::vec(-1e6f64..1e6, 8)) {
        let vals_clone = vals.clone();
        let out = Universe::run(p, move |comm| {
            let mine = vals_clone[comm.rank() % vals_clone.len()];
            comm.allreduce(mine, |a, b| a + b)
        });
        let expect: f64 = (0..p).map(|r| vals[r % vals.len()]).sum();
        for got in out {
            prop_assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
        }
    }

    /// Nonblocking alltoalls can be interleaved arbitrarily with sends and
    /// still deliver the right data.
    #[test]
    fn ialltoall_interleaved_with_p2p(p in 2usize..6, rounds in 1usize..4) {
        let out = Universe::run(p, move |comm| {
            let mut ok = true;
            for round in 0..rounds {
                let tag = round as u64;
                let req = comm.ialltoall(&vec![(comm.rank() * 10 + round) as u16; p]);
                let next = (comm.rank() + 1) % p;
                let prev = (comm.rank() + p - 1) % p;
                comm.send(next, tag, vec![comm.rank() as u16]);
                let got = comm.recv::<u16>(prev, tag);
                ok &= got[0] as usize == prev;
                let a2a = req.wait();
                for s in 0..p {
                    ok &= a2a[s] == (s * 10 + round) as u16;
                }
            }
            ok
        });
        prop_assert!(out.into_iter().all(|b| b));
    }

    /// bcast delivers the root's buffer regardless of which rank is root.
    #[test]
    fn bcast_from_any_root(p in 1usize..7, root_sel in 0usize..16, len in 0usize..9) {
        let out = Universe::run(p, move |comm| {
            let root = root_sel % p;
            let data: Vec<i32> = if comm.rank() == root {
                (0..len as i32).map(|i| i * 3 - 5).collect()
            } else {
                vec![]
            };
            comm.bcast(root, &data)
        });
        let expect: Vec<i32> = (0..len as i32).map(|i| i * 3 - 5).collect();
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }
}
