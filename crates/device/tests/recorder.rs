//! Device-layer schedule recording: the ordering log captures stream ops,
//! event edges and access ranges, and the `psdns-analyze` replay engine
//! certifies (or indicts) the recorded schedule.

use psdns_analyze::{analyze_log, wait_edges, without_pos, HazardKind};
use psdns_device::{
    Access, Device, DeviceConfig, DeviceError, Event, MemSpace, OrderingLog, PinnedBuffer,
};

/// The canonical two-stream offload: H2D on the transfer stream, kernel on
/// the compute stream (guarded by an event), D2H back on the transfer
/// stream (guarded by another event).
fn recorded_offload() -> Result<OrderingLog, DeviceError> {
    let log = OrderingLog::new();
    let dev = Device::new(DeviceConfig::tiny(1 << 20));
    dev.attach_recorder(&log);
    let host = PinnedBuffer::from_vec(vec![1.0f32; 64]);
    let dbuf = dev.alloc::<f32>(64)?;
    log.label_buffer(dbuf.id(), "dbuf");
    let xfer = dev.create_stream("xfer");
    let comp = dev.create_stream("comp");
    let h2d_done = Event::new();
    let compute_done = Event::new();

    xfer.memcpy_h2d_async(&host, 0, &dbuf, 0, 64);
    xfer.record(&h2d_done);
    comp.wait_event(&h2d_done);
    let d = dbuf.clone();
    comp.launch_traced(
        "scale",
        vec![
            Access::read(dbuf.id(), MemSpace::Device, 0, 64),
            Access::write(dbuf.id(), MemSpace::Device, 0, 64),
        ],
        move || {
            for v in d.lock_mut().iter_mut() {
                *v *= 2.0;
            }
        },
    );
    comp.record(&compute_done);
    xfer.wait_event(&compute_done);
    xfer.memcpy_d2h_async(&dbuf, 0, &host, 0, 64);
    xfer.synchronize()?;
    comp.synchronize()?;
    Ok(log)
}

#[test]
fn recorded_offload_analyzes_clean() -> Result<(), DeviceError> {
    let log = recorded_offload()?;
    let report = analyze_log(&log);
    assert!(report.is_clean(), "hazards: {:?}", report.hazards);
    assert_eq!(report.cross_stream_edges, 2);
    assert!(report.tracks.iter().any(|t| t == "xfer"));
    assert!(report.tracks.iter().any(|t| t == "comp"));
    Ok(())
}

#[test]
fn deleting_either_cross_stream_edge_is_detected() -> Result<(), DeviceError> {
    let log = recorded_offload()?;
    let ops = log.snapshot();
    let edges: Vec<_> = wait_edges(&ops)
        .into_iter()
        .filter(|e| e.cross_stream())
        .collect();
    assert_eq!(edges.len(), 2, "both guards are cross-stream");
    for edge in edges {
        let mutated = without_pos(&ops, edge.pos);
        let report = psdns_analyze::analyze(&mutated, &log.labels());
        assert!(
            !report.is_clean(),
            "deleting the wait on {} -> {} must surface a hazard",
            edge.recorder,
            edge.waiter
        );
        let h = &report.hazards[0];
        assert_ne!(h.first.track, h.second.track, "hazard crosses streams");
        assert_eq!(h.buffer_label.as_deref(), Some("dbuf"));
    }
    Ok(())
}

#[test]
fn disjoint_ranges_do_not_conflict_without_edges() -> Result<(), DeviceError> {
    // Two streams touching disjoint halves of one buffer with no events:
    // unordered, but no overlap — must stay clean (no false positives).
    let log = OrderingLog::new();
    let dev = Device::new(DeviceConfig::tiny(1 << 20));
    dev.attach_recorder(&log);
    let host = PinnedBuffer::from_vec(vec![0u32; 64]);
    let dbuf = dev.alloc::<u32>(64)?;
    let a = dev.create_stream("a");
    let b = dev.create_stream("b");
    a.memcpy_h2d_async(&host, 0, &dbuf, 0, 32);
    b.memcpy_h2d_async(&host, 32, &dbuf, 32, 32);
    a.synchronize()?;
    b.synchronize()?;
    let report = analyze_log(&log);
    assert!(report.is_clean(), "hazards: {:?}", report.hazards);

    // Overlapping halves, still no events: now it is a WAW hazard.
    let log2 = OrderingLog::new();
    let dev2 = Device::new(DeviceConfig::tiny(1 << 20));
    dev2.attach_recorder(&log2);
    let dbuf2 = dev2.alloc::<u32>(64)?;
    let a2 = dev2.create_stream("a");
    let b2 = dev2.create_stream("b");
    a2.memcpy_h2d_async(&host, 0, &dbuf2, 0, 40);
    b2.memcpy_h2d_async(&host, 0, &dbuf2, 32, 32);
    a2.synchronize()?;
    b2.synchronize()?;
    let report2 = analyze_log(&log2);
    assert_eq!(report2.hazards.len(), 1);
    assert_eq!(report2.hazards[0].kind, HazardKind::WriteAfterWrite);
    Ok(())
}

#[test]
fn host_snapshot_without_sync_is_a_hazard_when_logged() -> Result<(), DeviceError> {
    // The device layer cannot see host reads of pinned memory; callers log
    // them explicitly (as the gpu pipeline does). Verify the host-join
    // machinery orders them only across a synchronize.
    let log = OrderingLog::new();
    let dev = Device::new(DeviceConfig::tiny(1 << 20));
    dev.attach_recorder(&log);
    let host = PinnedBuffer::from_vec(vec![0u8; 16]);
    let dbuf = dev.alloc::<u8>(16)?;
    let s = dev.create_stream("s");
    s.memcpy_d2h_async(&dbuf, 0, &host, 0, 16);
    // Host read logged *before* the synchronize: unordered with the D2H.
    log.record(
        psdns_analyze::HOST_TRACK,
        "host-snapshot",
        psdns_analyze::OpKind::Exec,
        vec![Access::read(host.id(), MemSpace::Host, 0, 16)],
    );
    let report = analyze_log(&log);
    assert_eq!(report.hazards.len(), 1);
    assert_eq!(report.hazards[0].kind, HazardKind::ReadAfterWrite);

    // Synchronize first: clean.
    let log2 = OrderingLog::new();
    let dev2 = Device::new(DeviceConfig::tiny(1 << 20));
    dev2.attach_recorder(&log2);
    let dbuf2 = dev2.alloc::<u8>(16)?;
    let s2 = dev2.create_stream("s");
    s2.memcpy_d2h_async(&dbuf2, 0, &host, 0, 16);
    s2.synchronize()?;
    log2.record(
        psdns_analyze::HOST_TRACK,
        "host-snapshot",
        psdns_analyze::OpKind::Exec,
        vec![Access::read(host.id(), MemSpace::Host, 0, 16)],
    );
    assert!(analyze_log(&log2).is_clean());
    Ok(())
}
