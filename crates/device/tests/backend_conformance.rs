//! Backend conformance harness: the schedule is decided in the shared
//! `Device`/`Stream` layer, so every [`DeviceBackend`] implementation must
//! observe the *same* program — same copies, same event edges, same
//! recorder log, same chaos decisions. These tests drive one scenario
//! through each backend and compare the outcomes, which is the executable
//! form of the trait's conformance contract (see `backend.rs`).
//!
//! [`DeviceBackend`]: psdns_device::DeviceBackend

#![cfg(feature = "host-backend")]

use std::time::Duration;

use proptest::prelude::*;
use psdns_chaos::{ChaosConfig, ChaosEngine, FaultPlan};
use psdns_device::{
    normalized, Access, BackendKind, Copy2d, Device, DeviceConfig, DeviceError, Event, MemSpace,
    OrderingLog, PinnedBuffer,
};

const KINDS: [BackendKind; 2] = [BackendKind::Simulated, BackendKind::Host];

fn device(kind: BackendKind) -> Device {
    let dev = Device::with_kind(kind, DeviceConfig::tiny(1 << 22));
    dev.timeline().set_enabled(false);
    dev
}

/// 1-D, strided 2-D and zero-copy transfers, one stream, then readback.
type Roundtrip = (Vec<u32>, Vec<u32>, Vec<u32>);

fn copy_roundtrip(kind: BackendKind) -> Result<Roundtrip, DeviceError> {
    let dev = device(kind);
    let s = dev.create_stream("conf-copy");

    let n = 64usize;
    let host_in = PinnedBuffer::from_vec((0..n as u32).map(|v| v * 3 + 1).collect());
    let out_1d = PinnedBuffer::<u32>::new(n);
    let out_2d = PinnedBuffer::<u32>::new(n);
    let out_zc = PinnedBuffer::<u32>::new(n);
    let dbuf = dev.alloc::<u32>(n)?;

    s.memcpy_h2d_async(&host_in, 0, &dbuf, 0, n);
    s.memcpy_d2h_async(&dbuf, 0, &out_1d, 0, n);

    let shape = Copy2d {
        width: 8,
        height: 6,
        src_offset: 2,
        src_pitch: 10,
        dst_offset: 1,
        dst_pitch: 9,
    };
    s.memcpy2d_h2d_async(&host_in, &dbuf, shape);
    s.memcpy2d_d2h_async(
        &dbuf,
        &out_2d,
        Copy2d {
            width: 8,
            height: 6,
            src_offset: 1,
            src_pitch: 9,
            dst_offset: 0,
            dst_pitch: 8,
        },
    );

    let gather: Vec<(usize, usize, usize)> = (0..4).map(|c| (c * 13, c * 8, 8)).collect();
    let scatter: Vec<(usize, usize, usize)> = (0..4).map(|c| (c * 8, c * 11, 8)).collect();
    s.zero_copy_h2d_async(&host_in, &dbuf, gather);
    s.zero_copy_d2h_async(&dbuf, &out_zc, scatter);
    s.synchronize()?;

    Ok((out_1d.snapshot(), out_2d.snapshot(), out_zc.snapshot()))
}

#[test]
fn copy_roundtrips_agree_across_backends() -> Result<(), DeviceError> {
    let sim = copy_roundtrip(KINDS[0])?;
    let host = copy_roundtrip(KINDS[1])?;
    assert_eq!(sim, host);
    // And the data is actually the input, not zeros.
    assert_eq!(sim.0[5], 16);
    Ok(())
}

/// Cross-stream ping-pong through events: a writes, b transforms after
/// waiting on a, a finalizes after waiting on b. The event edges force one
/// deterministic result no matter how the backend schedules the streams.
fn event_ping_pong(kind: BackendKind) -> Result<Vec<i64>, DeviceError> {
    let dev = device(kind);
    let a = dev.create_stream("conf-a");
    let b = dev.create_stream("conf-b");
    let n = 256usize;
    let host_out = PinnedBuffer::<i64>::new(n);
    let dbuf = dev.alloc::<i64>(n)?;

    let d1 = dbuf.clone();
    a.launch("produce", move || {
        let mut d = d1.lock_mut();
        for (i, v) in d.iter_mut().enumerate() {
            *v = i as i64;
        }
    });
    let e1 = Event::new();
    a.record(&e1);

    b.wait_event(&e1);
    let d2 = dbuf.clone();
    b.launch("transform", move || {
        let mut d = d2.lock_mut();
        for v in d.iter_mut() {
            *v = *v * 7 - 3;
        }
    });
    let e2 = Event::new();
    b.record(&e2);

    a.wait_event(&e2);
    let d3 = dbuf.clone();
    a.launch("finalize", move || {
        let mut d = d3.lock_mut();
        for v in d.iter_mut() {
            *v += 1;
        }
    });
    a.memcpy_d2h_async(&dbuf, 0, &host_out, 0, n);
    a.synchronize()?;
    b.synchronize()?;
    Ok(host_out.snapshot())
}

#[test]
fn event_ordering_agrees_across_backends() -> Result<(), DeviceError> {
    let sim = event_ping_pong(KINDS[0])?;
    let host = event_ping_pong(KINDS[1])?;
    assert_eq!(sim, host);
    assert_eq!(sim[10], 10 * 7 - 3 + 1);
    Ok(())
}

/// Ops enqueued out of program order across two streams — the consumer
/// stream is loaded up *before* the producer stream gets its work — still
/// resolve through the event edge on every backend.
fn out_of_order_launches(kind: BackendKind) -> Result<Vec<u32>, DeviceError> {
    let dev = device(kind);
    let prod = dev.create_stream("conf-prod");
    let cons = dev.create_stream("conf-cons");
    let n = 128usize;
    let host_out = PinnedBuffer::<u32>::new(n);
    let dbuf = dev.alloc::<u32>(n)?;

    // Producer fills slowly, records.
    let d1 = dbuf.clone();
    prod.launch("slow-fill", move || {
        std::thread::sleep(Duration::from_millis(2));
        let mut d = d1.lock_mut();
        for (i, v) in d.iter_mut().enumerate() {
            *v = 1000 + i as u32;
        }
    });
    let done = Event::new();
    prod.record(&done);

    // Consumer's whole chain is enqueued while the producer may still be
    // asleep; the wait edge keeps it correct.
    cons.wait_event(&done);
    let d2 = dbuf.clone();
    cons.launch("scale", move || {
        let mut d = d2.lock_mut();
        for v in d.iter_mut() {
            *v *= 2;
        }
    });
    cons.memcpy_d2h_async(&dbuf, 0, &host_out, 0, n);
    cons.synchronize()?;
    prod.synchronize()?;
    Ok(host_out.snapshot())
}

#[test]
fn out_of_order_stream_launches_agree_across_backends() -> Result<(), DeviceError> {
    let sim = out_of_order_launches(KINDS[0])?;
    let host = out_of_order_launches(KINDS[1])?;
    assert_eq!(sim, host);
    assert_eq!(sim[3], (1000 + 3) * 2);
    Ok(())
}

/// One traced offload scenario, recorded on each backend. The ordering
/// logs must describe the identical schedule: same tracks, op names, op
/// kinds, event edges and access ranges — only the globally allocated
/// buffer/event ids may differ, which `normalized` erases.
fn recorded_schedule(kind: BackendKind) -> Result<OrderingLog, DeviceError> {
    let dev = device(kind);
    let log = OrderingLog::new();
    dev.attach_recorder(&log);
    let xfer = dev.create_stream("conf-xfer");
    let comp = dev.create_stream("conf-comp");
    let n = 32usize;
    let host = PinnedBuffer::from_vec(vec![1.0f64; n]);
    let out = PinnedBuffer::<f64>::new(n);
    let dbuf = dev.alloc::<f64>(n)?;

    xfer.memcpy_h2d_async(&host, 0, &dbuf, 0, n);
    let up = Event::new();
    xfer.record(&up);
    comp.wait_event(&up);
    let d = dbuf.clone();
    comp.launch_traced(
        "square",
        vec![
            Access::read(dbuf.id(), MemSpace::Device, 0, n),
            Access::write(dbuf.id(), MemSpace::Device, 0, n),
        ],
        move || {
            let mut d = d.lock_mut();
            for v in d.iter_mut() {
                *v *= *v;
            }
        },
    );
    let done = Event::new();
    comp.record(&done);
    xfer.wait_event(&done);
    xfer.memcpy_d2h_async(&dbuf, 0, &out, 0, n);
    xfer.synchronize()?;
    comp.synchronize()?;
    Ok(log)
}

#[test]
fn recorder_logs_are_equal_across_backends() -> Result<(), DeviceError> {
    let sim = recorded_schedule(KINDS[0])?;
    let host = recorded_schedule(KINDS[1])?;
    assert!(!sim.snapshot().is_empty());
    assert_eq!(normalized(&sim.snapshot()), normalized(&host.snapshot()));
    Ok(())
}

/// Same-seeded chaos engines see the same per-site occurrence sequence on
/// every backend: the gates fire host-side at enqueue time, so the fault
/// schedule digest is backend-independent.
fn chaos_run(kind: BackendKind) -> Result<u64, DeviceError> {
    let mut cfg = ChaosConfig::new(0xC0FFEE);
    cfg.copy_fault = FaultPlan::with_prob(0.4);
    cfg.stream_stall = FaultPlan::with_prob(0.4);
    cfg.stream_stall_duration = Duration::from_micros(10);
    cfg.alloc_fault = FaultPlan::at(2);
    cfg.retry.max_retries = 1;
    cfg.retry.backoff = Duration::from_micros(10);
    let engine = ChaosEngine::new(cfg);

    let dev = device(kind);
    dev.attach_chaos(&engine);
    let s = dev.create_stream("conf-chaos");
    let host = PinnedBuffer::from_vec(vec![7u32; 16]);
    let out = PinnedBuffer::<u32>::new(16);
    let dbuf = dev.alloc::<u32>(16)?;
    let _ = dev.alloc::<u32>(16); // occurrence 1
    assert!(dev.alloc::<u32>(16).is_err(), "alloc fault fires at k=2");
    for _ in 0..8 {
        s.memcpy_h2d_async(&host, 0, &dbuf, 0, 16);
        s.memcpy_d2h_async(&dbuf, 0, &out, 0, 16);
        let dk = dbuf.clone();
        s.launch("noop", move || drop(dk.lock()));
    }
    let _ = s.synchronize();
    let _ = dev.take_error(); // a fired copy fault is part of the plan
    Ok(engine.schedule_digest())
}

#[test]
fn chaos_schedules_are_equal_across_backends() -> Result<(), DeviceError> {
    assert_eq!(chaos_run(KINDS[0])?, chaos_run(KINDS[1])?);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary strided `Copy2d` shapes move exactly the same bytes on
    /// every backend.
    #[test]
    fn random_copy2d_shapes_agree_between_backends(
        width in 1usize..17,
        height in 1usize..9,
        extra_src_pitch in 0usize..5,
        extra_dst_pitch in 0usize..5,
        src_offset in 0usize..8,
        dst_offset in 0usize..8,
    ) {
        let src_pitch = width + extra_src_pitch;
        let dst_pitch = width + extra_dst_pitch;
        let src_len = src_offset + src_pitch * (height - 1) + width;
        let dst_len = dst_offset + dst_pitch * (height - 1) + width;

        let mut results = Vec::new();
        for kind in KINDS {
            let dev = device(kind);
            let host = PinnedBuffer::from_vec((0..src_len as u32).map(|v| v ^ 0xA5).collect::<Vec<u32>>());
            let out = PinnedBuffer::<u32>::new(dst_len);
            let dbuf = dev.alloc::<u32>(dst_len).unwrap();
            let s = dev.create_stream("conf-2d");
            s.memcpy2d_h2d_async(&host, &dbuf, Copy2d {
                width, height, src_offset, src_pitch, dst_offset, dst_pitch,
            });
            s.memcpy_d2h_async(&dbuf, 0, &out, 0, dst_len);
            prop_assert!(s.synchronize().is_ok(), "synchronize must succeed");
            results.push(out.snapshot());
        }
        prop_assert_eq!(&results[0], &results[1]);
    }
}
