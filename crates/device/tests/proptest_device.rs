//! Property tests for the simulated accelerator: arbitrary strided copy
//! shapes and chunk patterns must move data exactly, and stream/event
//! ordering must hold under random op interleavings.

use proptest::prelude::*;
use psdns_device::{Copy2d, Device, DeviceConfig, Event, PinnedBuffer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// memcpy2d == the equivalent loop of small copies, for arbitrary
    /// width/height/pitch/offset combinations.
    #[test]
    fn memcpy2d_matches_loop(
        width in 1usize..17,
        height in 1usize..9,
        extra_src_pitch in 0usize..5,
        extra_dst_pitch in 0usize..5,
        src_offset in 0usize..8,
        dst_offset in 0usize..8,
    ) {
        let src_pitch = width + extra_src_pitch;
        let dst_pitch = width + extra_dst_pitch;
        let src_len = src_offset + src_pitch * (height - 1) + width;
        let dst_len = dst_offset + dst_pitch * (height - 1) + width;

        let dev = Device::new(DeviceConfig::tiny(1 << 22));
        dev.timeline().set_enabled(false);
        let host = PinnedBuffer::from_vec((0..src_len as u32).collect());
        let via_2d = dev.alloc::<u32>(dst_len).unwrap();
        let via_loop = dev.alloc::<u32>(dst_len).unwrap();
        let s = dev.create_stream("t");

        s.memcpy2d_h2d_async(&host, &via_2d, Copy2d {
            width, height, src_offset, src_pitch, dst_offset, dst_pitch,
        });
        for r in 0..height {
            s.memcpy_h2d_async(&host, src_offset + r * src_pitch, &via_loop, dst_offset + r * dst_pitch, width);
        }
        prop_assert!(s.synchronize().is_ok(), "synchronize must succeed");
        prop_assert_eq!(via_2d.snapshot(), via_loop.snapshot());
    }

    /// zero-copy gather + scatter through arbitrary non-overlapping chunk
    /// patterns is the identity on the gathered data.
    #[test]
    fn zero_copy_gather_scatter_roundtrip(
        nchunks in 1usize..12,
        chunk_len in 1usize..9,
        gap in 0usize..5,
        seed in 0u64..1000,
    ) {
        let stride = chunk_len + gap;
        let host_len = nchunks * stride + 4;
        let dev_len = nchunks * chunk_len;

        let dev = Device::new(DeviceConfig::tiny(1 << 22));
        dev.timeline().set_enabled(false);
        let host_in = PinnedBuffer::from_vec(
            (0..host_len).map(|i| (i as u64).wrapping_mul(seed + 1)).collect::<Vec<u64>>(),
        );
        let host_out = PinnedBuffer::new(host_len);
        let dbuf = dev.alloc::<u64>(dev_len).unwrap();
        let s = dev.create_stream("zc");

        let gather: Vec<(usize, usize, usize)> =
            (0..nchunks).map(|c| (c * stride, c * chunk_len, chunk_len)).collect();
        let scatter: Vec<(usize, usize, usize)> =
            (0..nchunks).map(|c| (c * chunk_len, c * stride, chunk_len)).collect();
        s.zero_copy_h2d_async(&host_in, &dbuf, gather);
        s.zero_copy_d2h_async(&dbuf, &host_out, scatter);
        prop_assert!(s.synchronize().is_ok(), "synchronize must succeed");

        let a = host_in.snapshot();
        let b = host_out.snapshot();
        for c in 0..nchunks {
            for i in 0..chunk_len {
                prop_assert_eq!(a[c * stride + i], b[c * stride + i]);
            }
        }
    }

    /// Random interleavings of kernels on two streams with an event chain
    /// preserve the producer→consumer order.
    #[test]
    fn event_chain_orders_random_workloads(delays in prop::collection::vec(0u64..3, 1..6)) {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        dev.timeline().set_enabled(false);
        let a = dev.create_stream("a");
        let b = dev.create_stream("b");
        let log = std::sync::Arc::new(psdns_sync::Mutex::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let evt = Event::new();
            let l1 = std::sync::Arc::clone(&log);
            a.launch("produce", move || {
                if d > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(d));
                }
                l1.lock().push((i, 'p'));
            });
            a.record(&evt);
            b.wait_event(&evt);
            let l2 = std::sync::Arc::clone(&log);
            b.launch("consume", move || l2.lock().push((i, 'c')));
        }
        prop_assert!(a.synchronize().is_ok(), "synchronize must succeed");
        prop_assert!(b.synchronize().is_ok(), "synchronize must succeed");
        let log = log.lock();
        for i in 0..delays.len() {
            let p = log.iter().position(|&e| e == (i, 'p')).unwrap();
            let c = log.iter().position(|&e| e == (i, 'c')).unwrap();
            prop_assert!(p < c, "consumer {i} ran before its producer");
        }
    }

    /// Allocation accounting is exact under arbitrary alloc/free sequences.
    #[test]
    fn alloc_accounting_balances(sizes in prop::collection::vec(1usize..4096, 1..16)) {
        let capacity: usize = sizes.iter().sum::<usize>() * 8 + 64;
        let dev = Device::new(DeviceConfig::tiny(capacity));
        let mut live = Vec::new();
        let mut expect = 0usize;
        for (i, &sz) in sizes.iter().enumerate() {
            let buf = dev.alloc::<u64>(sz).unwrap();
            expect += sz * 8;
            live.push(buf);
            prop_assert_eq!(dev.allocated_bytes(), expect);
            if i % 3 == 2 {
                let b = live.remove(0);
                expect -= b.size_bytes();
                drop(b);
                prop_assert_eq!(dev.allocated_bytes(), expect);
            }
        }
        drop(live);
        prop_assert_eq!(dev.allocated_bytes(), 0);
    }
}
