//! Device health & hot-swap groundwork: hung queues and lost devices must
//! surface as *typed* errors within the watchdog deadline — never a hang,
//! never a panic — and the all-integer health-event log must replay
//! byte-identically for the same chaos seed, on every backend.
//!
//! The state machine under test (see `health.rs`): a fence that misses its
//! adaptive deadline marks the backend `Suspect`; a cheap canary op on a
//! fresh queue probes the device before anything is condemned; a failed
//! probe condemns with `DeviceLost`, an exhausted retry budget on a
//! still-responsive device condemns with `QueueHung`.

#![cfg(feature = "host-backend")]

use std::time::{Duration, Instant};

use psdns_chaos::{ChaosConfig, ChaosEngine, FaultPlan, WatchdogPolicy};
use psdns_device::{
    BackendKind, Device, DeviceConfig, DeviceError, HealthCause, HealthEvent, HealthState,
};

const KINDS: [BackendKind; 2] = [BackendKind::Simulated, BackendKind::Host];

fn device(kind: BackendKind) -> Device {
    let dev = Device::with_kind(kind, DeviceConfig::tiny(1 << 22));
    dev.timeline().set_enabled(false);
    dev
}

fn chaos(seed: u64, mutate: impl FnOnce(&mut ChaosConfig)) -> ChaosEngine {
    let mut cfg = ChaosConfig {
        seed,
        ..ChaosConfig::default()
    };
    cfg.retry.max_retries = 2;
    cfg.retry.backoff = Duration::from_micros(50);
    mutate(&mut cfg);
    ChaosEngine::new(cfg)
}

fn fast_watchdog() -> WatchdogPolicy {
    WatchdogPolicy {
        floor: Duration::from_millis(20),
        factor: 8,
    }
}

/// Inject a hang at the first op, run one kernel, synchronize. Returns the
/// typed error and the health-event log.
fn run_hang(kind: BackendKind, seed: u64) -> (DeviceError, Vec<HealthEvent>, u64) {
    let engine = chaos(seed, |c| c.device_hang = FaultPlan::at(0));
    let dev = device(kind);
    dev.attach_chaos(&engine);
    dev.enable_fence_watchdog(fast_watchdog());
    let s = dev.create_stream("hang-victim");
    s.launch("nop", || {});
    let t0 = Instant::now();
    let err = s
        .synchronize()
        .expect_err("hung queue must yield a typed error");
    // Bounded detection: armed-fault fences short-circuit, so the whole
    // suspect → probe → condemn sequence is far under the test's patience.
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "detection must finish within the deadline budget"
    );
    assert!(dev.health().is_lost());
    assert!(
        dev.take_error().is_some(),
        "condemnation records a sticky device error"
    );
    (err, dev.health().events(), engine.schedule_digest())
}

#[test]
fn hung_queue_condemns_with_queue_hung() {
    for kind in KINDS {
        let (err, events, _) = run_hang(kind, 11);
        match &err {
            DeviceError::QueueHung { stream, .. } => assert_eq!(stream, "hang-victim"),
            other => panic!("{kind:?}: expected QueueHung, got {other}"),
        }
        // Suspect(fence timeout), then one probe per retry (all ok — the
        // device still answers), then condemned for retry exhaustion.
        assert!(matches!(
            events.first(),
            Some(HealthEvent::Suspect {
                cause: HealthCause::FenceTimeout,
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(HealthEvent::Condemned {
                cause: HealthCause::RetriesExhausted,
                ..
            })
        ));
        assert!(events
            .iter()
            .all(|e| !matches!(e, HealthEvent::Probe { ok: false, .. })));
    }
}

#[test]
fn lost_device_condemns_with_device_lost() {
    for kind in KINDS {
        let engine = chaos(7, |c| c.device_lost = FaultPlan::at(0));
        let dev = device(kind);
        dev.attach_chaos(&engine);
        dev.enable_fence_watchdog(fast_watchdog());
        let s = dev.create_stream("lost-victim");
        s.launch("nop", || {});
        let err = s
            .synchronize()
            .expect_err("lost device must yield a typed error");
        assert!(
            matches!(err, DeviceError::DeviceLost { .. }),
            "{kind:?}: expected DeviceLost, got {err}"
        );
        let events = dev.health().events();
        // Loss is detected at the first fence, the canary probe fails, and
        // the device is condemned — no retry loop for a dead device.
        assert!(matches!(
            events.first(),
            Some(HealthEvent::Suspect {
                cause: HealthCause::LostFault,
                ..
            })
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, HealthEvent::Probe { ok: false, .. })));
        assert!(matches!(
            events.last(),
            Some(HealthEvent::Condemned {
                cause: HealthCause::ProbeFailed,
                ..
            })
        ));
        // Sticky: every later synchronize fails fast with the same verdict.
        let s2 = dev.create_stream("post-mortem");
        s2.launch("nop", || {});
        let t0 = Instant::now();
        assert!(matches!(
            s2.synchronize(),
            Err(DeviceError::DeviceLost { .. })
        ));
        assert!(t0.elapsed() < Duration::from_secs(1), "fail-fast when lost");
    }
}

/// A queue that is merely *slow* (op outlasts the fence deadline) must not
/// be condemned: the probe passes, the retried fence eventually completes,
/// and the backend transitions Suspect → Healthy. Exercises the real
/// `fence_deadline` timeout path (no armed-fault short-circuit).
#[test]
fn transient_slow_op_recovers_without_condemnation() {
    // Simulated backend only: an eager backend finishes ops at submit time,
    // so its fences cannot observe an op in flight.
    let engine = chaos(3, |c| {
        c.retry.max_retries = 50; // patience ≫ the op's overshoot
    });
    let dev = device(BackendKind::Simulated);
    dev.attach_chaos(&engine);
    dev.enable_fence_watchdog(WatchdogPolicy {
        floor: Duration::from_millis(10),
        factor: 8,
    });
    let s = dev.create_stream("slowpoke");
    s.launch("slow", || std::thread::sleep(Duration::from_millis(45)));
    s.synchronize()
        .expect("a slow queue on a healthy device must recover");
    assert_eq!(dev.health().state(), HealthState::Healthy);
    let events = dev.health().events();
    assert!(matches!(
        events.first(),
        Some(HealthEvent::Suspect {
            cause: HealthCause::FenceTimeout,
            ..
        })
    ));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, HealthEvent::Recovered { .. })),
        "suspect must resolve back to healthy: {events:?}"
    );
    assert!(
        dev.take_error().is_none(),
        "recovery leaves no sticky error"
    );
}

/// Same seed ⇒ byte-identical health-event log and chaos schedule digest,
/// and the logs agree across backends (the fault schedule is decided in the
/// shared stream layer, not by the executor).
#[test]
fn health_log_is_deterministic_and_backend_uniform() {
    let (e1, log1, d1) = run_hang(BackendKind::Simulated, 99);
    let (e2, log2, d2) = run_hang(BackendKind::Simulated, 99);
    assert_eq!(log1, log2, "same-seed replay must be byte-identical");
    assert_eq!(d1, d2, "same-seed chaos digests must match");
    assert_eq!(format!("{e1}"), format!("{e2}"));

    let (_, log_host, d_host) = run_hang(BackendKind::Host, 99);
    assert_eq!(
        log1, log_host,
        "health transitions must be identical across backends"
    );
    assert_eq!(d1, d_host);
}

/// Dropping a device with an armed (never-synchronized) hang must not
/// deadlock: condemnation never happened, so the release latch opens on
/// device drop and the wedged worker drains before the join.
#[test]
fn dropping_wedged_device_does_not_deadlock() {
    let engine = chaos(5, |c| c.device_hang = FaultPlan::at(0));
    let dev = device(BackendKind::Simulated);
    dev.attach_chaos(&engine);
    let s = dev.create_stream("abandoned");
    s.launch("nop", || {});
    drop(s);
    drop(dev); // joins the worker; must return
}

/// The canary probe is cheap and side-effect free on a healthy device.
#[test]
fn probe_succeeds_on_healthy_device() {
    for kind in KINDS {
        let dev = device(kind);
        assert!(dev.probe(Some(Duration::from_millis(500))));
        assert!(dev.probe(None));
        assert_eq!(dev.health().state(), HealthState::Healthy);
        assert!(dev.health().events().is_empty());
    }
}
