//! [`SimBackend`]: the discrete-event simulated accelerator, extracted
//! behavior-preserving from the original monolithic `Stream` implementation.
//!
//! Each queue is a FIFO channel drained by a dedicated worker thread (named
//! `stream-{name}`), so streams really run concurrently and event waits
//! really block a stream — the execution model the paper's overlap analysis
//! (Figs. 4, 10) depends on. Ops execute through the shared
//! [`run_op`](crate::run_op) harness, keeping the DES timeline and tracer
//! bridge byte-for-byte identical to the pre-trait runtime.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use psdns_sync::channel::{unbounded, RecvTimeoutError, Sender};

use crate::backend::{
    run_op, BackendCommon, BackendKind, DeviceBackend, ExecQueue, FenceWait, QueueOp,
};
use crate::device::{DeviceConfig, WeakDevice};
use crate::error::DeviceError;

enum SimOp {
    Task(QueueOp),
    Fence(Sender<()>),
    Shutdown,
}

/// One simulated stream queue: channel + worker thread.
pub(crate) struct SimQueue {
    stream_name: String,
    tx: Sender<SimOp>,
    /// Set when the backend shuts down (or the worker is gone): subsequent
    /// submits/fences fail with [`DeviceError::BackendShutDown`] instead of
    /// panicking on a closed channel — the drop-order footgun this replaces.
    dead: AtomicBool,
    worker: psdns_sync::Mutex<Option<JoinHandle<()>>>,
}

impl SimQueue {
    fn spawn(device: WeakDevice, stream_id: u64, stream_name: String) -> Arc<Self> {
        let (tx, rx) = unbounded::<SimOp>();
        let sname = stream_name.clone();
        let worker = std::thread::Builder::new()
            .name(format!("stream-{sname}"))
            .spawn(move || {
                while let Ok(op) = rx.recv() {
                    match op {
                        SimOp::Task(op) => run_op(&device, stream_id, &sname, op),
                        SimOp::Fence(ack) => {
                            let _ = ack.send(());
                        }
                        SimOp::Shutdown => break,
                    }
                }
            })
            .expect("spawn stream worker");
        Arc::new(Self {
            stream_name,
            tx,
            dead: AtomicBool::new(false),
            worker: psdns_sync::Mutex::new(Some(worker)),
        })
    }

    fn shut_down_error(&self) -> DeviceError {
        DeviceError::BackendShutDown {
            stream: self.stream_name.clone(),
        }
    }

    /// Mark the queue dead and nudge the worker to exit after draining the
    /// ops already in the FIFO. Never joins — safe to call from any thread,
    /// including a device drop racing the worker.
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.tx.send(SimOp::Shutdown);
    }
}

impl ExecQueue for SimQueue {
    fn submit(&self, op: QueueOp) -> Result<(), DeviceError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.shut_down_error());
        }
        self.tx
            .send(SimOp::Task(op))
            .map_err(|_| self.shut_down_error())
    }

    fn fence(&self) -> Result<(), DeviceError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.shut_down_error());
        }
        let (ack_tx, ack_rx) = unbounded();
        self.tx
            .send(SimOp::Fence(ack_tx))
            .map_err(|_| self.shut_down_error())?;
        ack_rx.recv().map_err(|_| self.shut_down_error())
    }

    /// Real timed fence: a marker goes into the FIFO and the host waits at
    /// most `deadline` for the worker to reach it. A timeout leaves the
    /// marker in place (its ack lands in a dropped receiver) — each retry
    /// posts a fresh one.
    fn fence_deadline(&self, deadline: std::time::Duration) -> Result<FenceWait, DeviceError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.shut_down_error());
        }
        let (ack_tx, ack_rx) = unbounded();
        self.tx
            .send(SimOp::Fence(ack_tx))
            .map_err(|_| self.shut_down_error())?;
        match ack_rx.recv_timeout(deadline) {
            Ok(()) => Ok(FenceWait::Complete),
            Err(RecvTimeoutError::Timeout) => Ok(FenceWait::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Err(self.shut_down_error()),
        }
    }
}

impl Drop for SimQueue {
    fn drop(&mut self) {
        // Last handle gone: drain remaining ops, then join the worker (like
        // `cudaStreamDestroy` after a synchronize). The same-thread guard
        // covers the (never expected) case of the final drop happening on
        // the worker itself.
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.tx.send(SimOp::Shutdown);
        if let Some(h) = self.worker.lock().take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

/// The simulated-accelerator backend ([`BackendKind::Simulated`], the
/// default): real worker threads, real blocking, DES timeline intact.
pub struct SimBackend {
    common: BackendCommon,
    /// Weak registry of live queues so `shutdown` can kill them without
    /// keeping them (or their workers) alive.
    queues: psdns_sync::Mutex<Vec<Weak<SimQueue>>>,
}

impl SimBackend {
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            common: BackendCommon::new(config),
            queues: psdns_sync::Mutex::new(Vec::new()),
        }
    }
}

impl DeviceBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Simulated
    }

    fn concurrent(&self) -> bool {
        true
    }

    fn common(&self) -> &BackendCommon {
        &self.common
    }

    fn create_queue(
        &self,
        device: WeakDevice,
        stream_id: u64,
        stream_name: &str,
    ) -> Arc<dyn ExecQueue> {
        let q = SimQueue::spawn(device, stream_id, stream_name.to_string());
        let mut reg = self.queues.lock();
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&q));
        q
    }

    fn shutdown(&self) {
        for q in self.queues.lock().drain(..) {
            if let Some(q) = q.upgrade() {
                q.kill();
            }
        }
    }
}
