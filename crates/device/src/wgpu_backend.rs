//! [`WgpuBackend`]: compile-checked skeleton mapping the [`DeviceBackend`]
//! trait onto a `wgpu`/Vulkan-style queue + command-buffer model (`cargo
//! check --features wgpu-backend`; ROADMAP item 2).
//!
//! The real `wgpu` crate is not vendored, so the `shim` module mirrors the
//! subset of its API this backend programs against (instance → adapter →
//! queue, command encoders, submitted command buffers). Swapping the shim
//! for the real crate keeps this file's control flow intact: the open work
//! is buffer residency and kernel translation (WGSL compute for the
//! pack/unpack and batched-FFT kernels), not orchestration.
//!
//! Deferred-execution model: GPU APIs batch work into command buffers, so
//! `Kernel`/copy ops are *encoded* and only execute when a batch is flushed.
//! The skeleton flushes at every `Sync`/`Marker` op and at `fence` — event
//! tickets therefore complete no later than their record op's flush, which
//! keeps the certified schedule's cross-stream waits deadlock-free. A
//! hazard-free schedule (what `analyze_schedule` certifies) observes no
//! difference between this batching and eager execution.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::backend::{run_op, BackendCommon, BackendKind, DeviceBackend, ExecQueue, QueueOp};
use crate::device::{DeviceConfig, WeakDevice};
use crate::error::DeviceError;
use crate::timeline::SpanKind;

/// In-tree stand-in for the `wgpu` types this backend drives. Same shapes,
/// no GPU: command buffers hold the encoded closures and "submission"
/// executes them in order on the submitting thread.
mod shim {
    use super::QueueOp;

    /// `wgpu::Instance` — entry point, enumerates adapters.
    pub struct Instance;

    impl Instance {
        pub fn new() -> Self {
            Instance
        }

        /// `request_adapter`: the shim always exposes one software adapter.
        pub fn request_adapter(&self) -> Option<Adapter> {
            Some(Adapter {
                name: "wgpu-shim (software)".to_string(),
            })
        }
    }

    /// `wgpu::Adapter` — one physical device.
    pub struct Adapter {
        pub name: String,
    }

    impl Adapter {
        /// `request_device`: yields the queue work is submitted to.
        pub fn request_device(&self) -> Queue {
            Queue
        }
    }

    /// `wgpu::Queue` — executes submitted command buffers in order.
    pub struct Queue;

    impl Queue {
        pub fn submit(&self, buffers: impl IntoIterator<Item = CommandBuffer>) {
            for buf in buffers {
                for op in buf.ops {
                    (op.exec)();
                }
            }
        }
    }

    /// `wgpu::CommandEncoder` — records ops until `finish`.
    #[derive(Default)]
    pub struct CommandEncoder {
        ops: Vec<QueueOp>,
    }

    impl CommandEncoder {
        pub fn push(&mut self, op: QueueOp) {
            self.ops.push(op);
        }

        pub fn is_empty(&self) -> bool {
            self.ops.is_empty()
        }

        pub fn finish(&mut self) -> CommandBuffer {
            CommandBuffer {
                ops: std::mem::take(&mut self.ops),
            }
        }
    }

    /// `wgpu::CommandBuffer` — a finished, submittable batch.
    pub struct CommandBuffer {
        ops: Vec<QueueOp>,
    }
}

struct WgpuQueue {
    device: WeakDevice,
    stream_id: u64,
    stream_name: String,
    dead: Arc<AtomicBool>,
    gpu_queue: Arc<shim::Queue>,
    encoder: psdns_sync::Mutex<shim::CommandEncoder>,
}

impl WgpuQueue {
    fn shut_down_error(&self) -> DeviceError {
        DeviceError::BackendShutDown {
            stream: self.stream_name.clone(),
        }
    }

    /// Submit the current command buffer. Encoded ops were wrapped through
    /// the shared [`run_op`] harness at encode time, so execution keeps the
    /// timeline comparable with the other backends. The shim executes
    /// inline; a real wgpu queue would hand the buffer to the driver here
    /// and completion would arrive via on_submitted_work_done callbacks.
    fn flush(&self) {
        let mut enc = self.encoder.lock();
        if enc.is_empty() {
            return;
        }
        let batch = enc.finish();
        drop(enc);
        self.gpu_queue.submit([batch]);
    }
}

impl ExecQueue for WgpuQueue {
    fn submit(&self, op: QueueOp) -> Result<(), DeviceError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.shut_down_error());
        }
        let flush_after = matches!(op.kind, SpanKind::Sync | SpanKind::Marker);
        let device = self.device.clone();
        let (id, name) = (self.stream_id, self.stream_name.clone());
        let wrapped = QueueOp {
            name: op.name.clone(),
            kind: op.kind,
            exec: Box::new(move || run_op(&device, id, &name, op)),
        };
        self.encoder.lock().push(wrapped);
        if flush_after {
            // Event records/waits and markers are batch boundaries: flushing
            // here completes tickets before any cross-stream wait can block.
            self.flush();
        }
        Ok(())
    }

    fn fence(&self) -> Result<(), DeviceError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.shut_down_error());
        }
        self.flush();
        Ok(())
    }
}

/// The `wgpu`-style backend ([`BackendKind::Wgpu`]). Compile-checked only:
/// `ci.sh` runs `cargo check --features wgpu-backend` so the skeleton can
/// never rot, but no test suite requires it.
pub struct WgpuBackend {
    common: BackendCommon,
    dead: Arc<AtomicBool>,
    adapter: shim::Adapter,
    gpu_queue: Arc<shim::Queue>,
}

impl WgpuBackend {
    /// Instance → adapter → device/queue, the wgpu initialization chain.
    /// Returns `None` when no adapter is available (never, with the shim).
    pub fn new(config: DeviceConfig) -> Option<Self> {
        let instance = shim::Instance::new();
        let adapter = instance.request_adapter()?;
        let gpu_queue = Arc::new(adapter.request_device());
        Some(Self {
            common: BackendCommon::new(config),
            dead: Arc::new(AtomicBool::new(false)),
            adapter,
            gpu_queue,
        })
    }

    /// Name of the adapter actually driving this backend (the shim reports
    /// its software adapter; a real build reports the GPU).
    pub fn adapter_name(&self) -> &str {
        &self.adapter.name
    }
}

impl DeviceBackend for WgpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Wgpu
    }

    fn common(&self) -> &BackendCommon {
        &self.common
    }

    fn create_queue(
        &self,
        device: WeakDevice,
        stream_id: u64,
        stream_name: &str,
    ) -> Arc<dyn ExecQueue> {
        Arc::new(WgpuQueue {
            device,
            stream_id,
            stream_name: stream_name.to_string(),
            dead: Arc::clone(&self.dead),
            gpu_queue: Arc::clone(&self.gpu_queue),
            encoder: psdns_sync::Mutex::new(shim::CommandEncoder::default()),
        })
    }

    fn shutdown(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }
}
