//! # psdns-device
//!
//! A simulated CUDA-like accelerator runtime. This crate replaces the CUDA
//! Fortran + cuFFT layer of the SC '19 paper with a faithful *behavioral*
//! model that really executes:
//!
//! * [`Device`] — one accelerator with a hard device-memory capacity (16 GB
//!   on a V100); allocations beyond capacity fail with a typed error, which
//!   is exactly the constraint that forces the paper's out-of-core pencil
//!   batching (§3.4, §3.5);
//! * [`DeviceBuffer`] / [`PinnedBuffer`] — device memory and page-locked
//!   host memory (pinned memory is required for async copies, §3.5);
//! * [`Stream`] — a FIFO work queue executed by a dedicated worker thread.
//!   The paper uses exactly two streams: one for compute, one for transfers
//!   ("a distinct data transfer stream ensures that bandwidth is devoted to
//!   one direction of traffic at a time", §3.4);
//! * [`Event`] — cross-stream synchronization with CUDA record/wait
//!   semantics;
//! * copy engines — `memcpy_h2d_async`, `memcpy_d2h_async`, and the strided
//!   [`memcpy2d`](Stream::memcpy2d_h2d_async) analogue of
//!   `cudaMemcpy2DAsync` (§4.2, Fig. 7), plus zero-copy gather/scatter
//!   kernels that read/write pinned host memory "directly from the device"
//!   (§4.2, Fig. 8);
//! * [`Timeline`] — nvtx-style span tracing so real executions can be
//!   inspected the way the paper inspects NVIDIA Visual Profiler timelines
//!   (Fig. 10).
//!
//! Everything executes for real: kernels are closures (the solver submits
//! genuine FFTs through them) and copies move real bytes between host and
//! "device" vectors. Only the silicon is emulated by threads.
//!
//! Since the `DeviceBackend` redesign, [`Device`] is a thin handle over an
//! `Arc<dyn DeviceBackend>` executor, and the simulated accelerator is just
//! the default backend ([`SimBackend`]). The stream/event *schedule* — the
//! paper's actual contribution — is recorded and certified in the shared
//! layer above the trait, so the same schedule runs on:
//!
//! * [`SimBackend`] (default) — worker threads, DES timeline;
//! * [`HostBackend`] (`host-backend`, default feature) — eager host-CPU
//!   execution of the same kernels, used by the solver's degraded mode;
//! * `WgpuBackend` (`--features wgpu-backend`) — compile-checked
//!   queue/command-buffer skeleton for a real GPU port (ROADMAP item 2).

mod backend;
mod buffer;
mod copy;
mod device;
mod error;
mod event;
mod health;
#[cfg(feature = "host-backend")]
mod host;
mod sim;
mod stream;
mod timeline;
#[cfg(feature = "wgpu-backend")]
mod wgpu_backend;

pub use backend::{
    run_op, BackendCommon, BackendKind, DeviceBackend, ExecQueue, FenceWait, QueueOp,
};
pub use buffer::{DeviceBuffer, PinnedBuffer};
pub use copy::Copy2d;
pub use device::{Device, DeviceConfig, DeviceConfigBuilder, DeviceStats, WeakDevice};
pub use error::DeviceError;
pub use event::Event;
pub use health::{HealthCause, HealthEvent, HealthMonitor, HealthState, DEVICE_WIDE};
#[cfg(feature = "host-backend")]
pub use host::HostBackend;
pub use sim::SimBackend;
pub use stream::Stream;
pub use timeline::{Span, SpanKind, Timeline};
#[cfg(feature = "wgpu-backend")]
pub use wgpu_backend::WgpuBackend;

// Schedule-recording vocabulary, re-exported so callers declaring kernel
// accesses for `Stream::launch_traced` need no direct `psdns-analyze`
// dependency.
pub use psdns_analyze::{normalized, Access, AccessMode, MemSpace, OrderingLog};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_offload_roundtrip() {
        // The canonical flow: pin host data, H2D, kernel, D2H, synchronize.
        let dev = Device::new(DeviceConfig::default());
        let host_in = PinnedBuffer::from_vec((0..1024i64).collect());
        let host_out = PinnedBuffer::from_vec(vec![0i64; 1024]);
        let dbuf = dev.alloc::<i64>(1024).unwrap();

        let stream = dev.create_stream("s0");
        stream.memcpy_h2d_async(&host_in, 0, &dbuf, 0, 1024);
        let dk = dbuf.clone();
        stream.launch("double", move || {
            let mut d = dk.lock_mut();
            for v in d.iter_mut() {
                *v *= 2;
            }
        });
        stream.memcpy_d2h_async(&dbuf, 0, &host_out, 0, 1024);
        stream.synchronize().unwrap();

        let out = host_out.snapshot();
        assert_eq!(out[0], 0);
        assert_eq!(out[511], 1022);
        assert_eq!(out[1023], 2046);
    }
}
