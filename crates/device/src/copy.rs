//! Copy engines and zero-copy kernels.
//!
//! Three ways to move strided data between pinned host memory and the
//! device, matching paper §4.2 / Fig. 7:
//!
//! 1. many small [`memcpy_h2d_async`](Stream::memcpy_h2d_async) calls — one
//!    stream op per contiguous chunk (API-call overhead dominates for small
//!    chunks);
//! 2. one [`memcpy2d_h2d_async`](Stream::memcpy2d_h2d_async) — a single op
//!    handling a simple (pitch, width, height) stride on the copy engine,
//!    the analogue of `cudaMemcpy2DAsync`;
//! 3. a zero-copy kernel
//!    ([`zero_copy_h2d_async`](Stream::zero_copy_h2d_async) /
//!    [`zero_copy_d2h_async`](Stream::zero_copy_d2h_async)) — a single
//!    kernel that dereferences pinned host memory directly and can follow
//!    *arbitrary* chunk patterns (used for unpacking after the transpose).

use std::sync::atomic::Ordering;

use psdns_analyze::{Access, AccessMode, MemSpace};

use crate::buffer::{DeviceBuffer, PinnedBuffer};
use crate::stream::Stream;
use crate::timeline::SpanKind;

/// Parameters of a 2-D strided copy (all in elements): `height` rows of
/// `width` contiguous elements; row `r` starts at `src_offset + r·src_pitch`
/// in the source and `dst_offset + r·dst_pitch` in the destination.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Copy2d {
    pub width: usize,
    pub height: usize,
    pub src_offset: usize,
    pub src_pitch: usize,
    pub dst_offset: usize,
    pub dst_pitch: usize,
}

impl Copy2d {
    /// Contiguous 1-D copy expressed as a single row.
    pub fn linear(len: usize, src_offset: usize, dst_offset: usize) -> Self {
        Self {
            width: len,
            height: 1,
            src_offset,
            src_pitch: 0,
            dst_offset,
            dst_pitch: 0,
        }
    }

    pub fn elements(&self) -> usize {
        self.width * self.height
    }

    fn last_src(&self) -> usize {
        self.src_offset + self.src_pitch * self.height.saturating_sub(1) + self.width
    }

    fn last_dst(&self) -> usize {
        self.dst_offset + self.dst_pitch * self.height.saturating_sub(1) + self.width
    }

    fn validate(&self, src_len: usize, dst_len: usize) {
        assert!(self.width > 0 && self.height > 0, "empty 2-D copy");
        assert!(
            self.height == 1 || (self.src_pitch >= self.width && self.dst_pitch >= self.width),
            "rows overlap: pitch < width"
        );
        assert!(
            self.last_src() <= src_len,
            "2-D copy reads past source: {} > {}",
            self.last_src(),
            src_len
        );
        assert!(
            self.last_dst() <= dst_len,
            "2-D copy writes past destination: {} > {}",
            self.last_dst(),
            dst_len
        );
    }
}

fn copy_rows<T: Copy>(p: &Copy2d, src: &[T], dst: &mut [T]) {
    // Shared cache-blocked 2-D copy kernel (same one ManyPlan uses for its
    // tile transposes). Both sides are row-contiguous here, so it runs the
    // memcpy-per-row fast path.
    psdns_fft::tile::copy_grid(
        src,
        p.src_offset,
        p.src_pitch,
        1,
        dst,
        p.dst_offset,
        p.dst_pitch,
        1,
        p.height,
        p.width,
    );
}

impl Stream {
    /// Asynchronous contiguous host→device copy (`cudaMemcpyAsync`, H2D).
    pub fn memcpy_h2d_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        host: &PinnedBuffer<T>,
        host_offset: usize,
        dev: &DeviceBuffer<T>,
        dev_offset: usize,
        len: usize,
    ) {
        assert!(
            host_offset + len <= host.len(),
            "H2D reads past host buffer"
        );
        assert!(
            dev_offset + len <= dev.len(),
            "H2D writes past device buffer"
        );
        if !self.chaos_copy_gate() {
            return;
        }
        // A stream that outlived its device: async no-op (CUDA-style).
        let Some(device) = self.device() else {
            return;
        };
        let bytes = len * std::mem::size_of::<T>();
        let stats = device.stats();
        stats.bytes_h2d.fetch_add(bytes, Ordering::Relaxed);
        stats.copy_calls.fetch_add(1, Ordering::Relaxed);
        device.trace_add_bytes_h2d(bytes);
        self.record_exec(
            "memcpyAsync-h2d",
            vec![
                Access::read(host.id(), MemSpace::Host, host_offset, len),
                Access::write(dev.id(), MemSpace::Device, dev_offset, len),
            ],
        );
        let (h, d) = (host.clone(), dev.clone());
        self.enqueue(
            "memcpyAsync-h2d".to_string(),
            SpanKind::CopyH2D,
            Box::new(move || {
                let src = h.lock();
                let mut dst = d.lock_mut();
                dst[dev_offset..dev_offset + len]
                    .copy_from_slice(&src[host_offset..host_offset + len]);
            }),
        );
    }

    /// Asynchronous contiguous device→host copy (`cudaMemcpyAsync`, D2H).
    pub fn memcpy_d2h_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        dev: &DeviceBuffer<T>,
        dev_offset: usize,
        host: &PinnedBuffer<T>,
        host_offset: usize,
        len: usize,
    ) {
        assert!(
            dev_offset + len <= dev.len(),
            "D2H reads past device buffer"
        );
        assert!(
            host_offset + len <= host.len(),
            "D2H writes past host buffer"
        );
        if !self.chaos_copy_gate() {
            return;
        }
        let Some(device) = self.device() else {
            return;
        };
        let bytes = len * std::mem::size_of::<T>();
        let stats = device.stats();
        stats.bytes_d2h.fetch_add(bytes, Ordering::Relaxed);
        stats.copy_calls.fetch_add(1, Ordering::Relaxed);
        device.trace_add_bytes_d2h(bytes);
        self.record_exec(
            "memcpyAsync-d2h",
            vec![
                Access::read(dev.id(), MemSpace::Device, dev_offset, len),
                Access::write(host.id(), MemSpace::Host, host_offset, len),
            ],
        );
        let (h, d) = (host.clone(), dev.clone());
        self.enqueue(
            "memcpyAsync-d2h".to_string(),
            SpanKind::CopyD2H,
            Box::new(move || {
                let src = d.lock();
                let mut dst = h.lock_mut();
                dst[host_offset..host_offset + len]
                    .copy_from_slice(&src[dev_offset..dev_offset + len]);
            }),
        );
    }

    /// Strided host→device copy in one call (`cudaMemcpy2DAsync`, H2D):
    /// handled by the copy engine, occupying no SMs (paper §4.2).
    pub fn memcpy2d_h2d_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        host: &PinnedBuffer<T>,
        dev: &DeviceBuffer<T>,
        params: Copy2d,
    ) {
        params.validate(host.len(), dev.len());
        if !self.chaos_copy_gate() {
            return;
        }
        let Some(device) = self.device() else {
            return;
        };
        let bytes = params.elements() * std::mem::size_of::<T>();
        let stats = device.stats();
        stats.bytes_h2d.fetch_add(bytes, Ordering::Relaxed);
        stats.copy_calls.fetch_add(1, Ordering::Relaxed);
        device.trace_add_bytes_h2d(bytes);
        self.record_exec(
            "memcpy2DAsync-h2d",
            vec![
                Access::strided(
                    AccessMode::Read,
                    host.id(),
                    MemSpace::Host,
                    params.src_offset,
                    params.width,
                    params.height,
                    params.src_pitch,
                ),
                Access::strided(
                    AccessMode::Write,
                    dev.id(),
                    MemSpace::Device,
                    params.dst_offset,
                    params.width,
                    params.height,
                    params.dst_pitch,
                ),
            ],
        );
        let (h, d) = (host.clone(), dev.clone());
        self.enqueue(
            "memcpy2DAsync-h2d".to_string(),
            SpanKind::CopyH2D,
            Box::new(move || {
                let src = h.lock();
                let mut dst = d.lock_mut();
                copy_rows(&params, &src, &mut dst);
            }),
        );
    }

    /// Strided device→host copy in one call (`cudaMemcpy2DAsync`, D2H). The
    /// paper uses this for the combined "pack + D2H" of computed pencils
    /// ("both the packing and the D2H are performed in a single operation",
    /// §3.4).
    pub fn memcpy2d_d2h_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        dev: &DeviceBuffer<T>,
        host: &PinnedBuffer<T>,
        params: Copy2d,
    ) {
        params.validate(dev.len(), host.len());
        if !self.chaos_copy_gate() {
            return;
        }
        let Some(device) = self.device() else {
            return;
        };
        let bytes = params.elements() * std::mem::size_of::<T>();
        let stats = device.stats();
        stats.bytes_d2h.fetch_add(bytes, Ordering::Relaxed);
        stats.copy_calls.fetch_add(1, Ordering::Relaxed);
        device.trace_add_bytes_d2h(bytes);
        self.record_exec(
            "memcpy2DAsync-d2h",
            vec![
                Access::strided(
                    AccessMode::Read,
                    dev.id(),
                    MemSpace::Device,
                    params.src_offset,
                    params.width,
                    params.height,
                    params.src_pitch,
                ),
                Access::strided(
                    AccessMode::Write,
                    host.id(),
                    MemSpace::Host,
                    params.dst_offset,
                    params.width,
                    params.height,
                    params.dst_pitch,
                ),
            ],
        );
        let (h, d) = (host.clone(), dev.clone());
        self.enqueue(
            "memcpy2DAsync-d2h".to_string(),
            SpanKind::CopyD2H,
            Box::new(move || {
                let src = d.lock();
                let mut dst = h.lock_mut();
                copy_rows(&params, &src, &mut dst);
            }),
        );
    }

    /// Zero-copy gather kernel: the device reads pinned host memory directly
    /// through an arbitrary list of `(host_offset, dev_offset, len)` chunks.
    /// One kernel launch regardless of chunk count — but it occupies SMs
    /// (paper §4.2, Fig. 8).
    pub fn zero_copy_h2d_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        host: &PinnedBuffer<T>,
        dev: &DeviceBuffer<T>,
        chunks: Vec<(usize, usize, usize)>,
    ) {
        let total: usize = chunks.iter().map(|&(_, _, l)| l).sum();
        for &(h_off, d_off, len) in &chunks {
            assert!(h_off + len <= host.len(), "zero-copy chunk reads past host");
            assert!(
                d_off + len <= dev.len(),
                "zero-copy chunk writes past device"
            );
        }
        if !self.chaos_copy_gate() {
            return;
        }
        let Some(device) = self.device() else {
            return;
        };
        let stats = device.stats();
        stats
            .bytes_h2d
            .fetch_add(total * std::mem::size_of::<T>(), Ordering::Relaxed);
        stats.kernel_launches.fetch_add(1, Ordering::Relaxed);
        device.trace_add_bytes_h2d(total * std::mem::size_of::<T>());
        device.trace_incr_kernel();
        if self.has_recorder() {
            let mut accesses = Vec::with_capacity(chunks.len() * 2);
            for &(h_off, d_off, len) in &chunks {
                accesses.push(Access::read(host.id(), MemSpace::Host, h_off, len));
                accesses.push(Access::write(dev.id(), MemSpace::Device, d_off, len));
            }
            self.record_exec("zero-copy-gather", accesses);
        }
        let (h, d) = (host.clone(), dev.clone());
        self.enqueue(
            "zero-copy-gather".to_string(),
            SpanKind::Kernel,
            Box::new(move || {
                let src = h.lock();
                let mut dst = d.lock_mut();
                for (h_off, d_off, len) in chunks {
                    dst[d_off..d_off + len].copy_from_slice(&src[h_off..h_off + len]);
                }
            }),
        );
    }

    /// Zero-copy scatter kernel: the device writes pinned host memory
    /// directly through an arbitrary chunk list. The paper uses this shape
    /// for unpacking non-contiguous data after communication (§4.2).
    pub fn zero_copy_d2h_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        dev: &DeviceBuffer<T>,
        host: &PinnedBuffer<T>,
        chunks: Vec<(usize, usize, usize)>,
    ) {
        let total: usize = chunks.iter().map(|&(_, _, l)| l).sum();
        for &(d_off, h_off, len) in &chunks {
            assert!(
                d_off + len <= dev.len(),
                "zero-copy chunk reads past device"
            );
            assert!(
                h_off + len <= host.len(),
                "zero-copy chunk writes past host"
            );
        }
        if !self.chaos_copy_gate() {
            return;
        }
        let Some(device) = self.device() else {
            return;
        };
        let stats = device.stats();
        stats
            .bytes_d2h
            .fetch_add(total * std::mem::size_of::<T>(), Ordering::Relaxed);
        stats.kernel_launches.fetch_add(1, Ordering::Relaxed);
        device.trace_add_bytes_d2h(total * std::mem::size_of::<T>());
        device.trace_incr_kernel();
        if self.has_recorder() {
            let mut accesses = Vec::with_capacity(chunks.len() * 2);
            for &(d_off, h_off, len) in &chunks {
                accesses.push(Access::read(dev.id(), MemSpace::Device, d_off, len));
                accesses.push(Access::write(host.id(), MemSpace::Host, h_off, len));
            }
            self.record_exec("zero-copy-scatter", accesses);
        }
        let (h, d) = (host.clone(), dev.clone());
        self.enqueue(
            "zero-copy-scatter".to_string(),
            SpanKind::Kernel,
            Box::new(move || {
                let src = d.lock();
                let mut dst = h.lock_mut();
                for (d_off, h_off, len) in chunks {
                    dst[h_off..h_off + len].copy_from_slice(&src[d_off..d_off + len]);
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};

    fn setup(n: usize) -> (Device, Stream, PinnedBuffer<u32>, DeviceBuffer<u32>) {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("copy");
        let host = PinnedBuffer::from_vec((0..n as u32).collect());
        let dbuf = dev.alloc::<u32>(n).unwrap();
        (dev, s, host, dbuf)
    }

    #[test]
    fn contiguous_copies_roundtrip() {
        let (_dev, s, host, dbuf) = setup(256);
        let back = PinnedBuffer::new(256);
        s.memcpy_h2d_async(&host, 0, &dbuf, 0, 256);
        s.memcpy_d2h_async(&dbuf, 0, &back, 0, 256);
        s.synchronize().unwrap();
        assert_eq!(back.snapshot(), host.snapshot());
    }

    #[test]
    fn partial_offsets() {
        let (_dev, s, host, dbuf) = setup(100);
        s.memcpy_h2d_async(&host, 10, &dbuf, 50, 20);
        s.synchronize().unwrap();
        let d = dbuf.snapshot();
        assert!(d[..50].iter().all(|&v| v == 0));
        for i in 0..20 {
            assert_eq!(d[50 + i], (10 + i) as u32);
        }
    }

    #[test]
    fn memcpy2d_strided_gather_matches_loop_of_small_copies() {
        // Gather a "pencil": 8 rows of width 4 from a host array of pitch 16
        // into a dense device array of pitch 4 — the Fig. 6 pattern.
        let n = 16 * 8;
        let (dev, s, host, dbuf) = setup(n);
        let dense = dev.alloc::<u32>(32).unwrap();
        let p = Copy2d {
            width: 4,
            height: 8,
            src_offset: 3,
            src_pitch: 16,
            dst_offset: 0,
            dst_pitch: 4,
        };
        s.memcpy2d_h2d_async(&host, &dense, p);

        // Reference: many small contiguous copies.
        for r in 0..8 {
            s.memcpy_h2d_async(&host, 3 + r * 16, &dbuf, r * 4, 4);
        }
        s.synchronize().unwrap();
        assert_eq!(dense.snapshot()[..32], dbuf.snapshot()[..32]);
    }

    #[test]
    fn memcpy2d_d2h_packs_strided_device_data() {
        let (dev, s, host, dbuf) = setup(64);
        let _ = dev;
        s.memcpy_h2d_async(&host, 0, &dbuf, 0, 64);
        let packed = PinnedBuffer::new(16);
        // Pack columns: 4 rows of 4 from pitch-16 device layout.
        let p = Copy2d {
            width: 4,
            height: 4,
            src_offset: 8,
            src_pitch: 16,
            dst_offset: 0,
            dst_pitch: 4,
        };
        s.memcpy2d_d2h_async(&dbuf, &packed, p);
        s.synchronize().unwrap();
        let got = packed.snapshot();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(got[r * 4 + c], (8 + r * 16 + c) as u32);
            }
        }
    }

    #[test]
    fn zero_copy_gather_and_scatter() {
        let (_dev, s, host, dbuf) = setup(128);
        let chunks: Vec<(usize, usize, usize)> = (0..8).map(|i| (i * 16, i * 4, 4)).collect();
        s.zero_copy_h2d_async(&host, &dbuf, chunks.clone());
        s.synchronize().unwrap();
        let d = dbuf.snapshot();
        for i in 0..8 {
            for j in 0..4 {
                assert_eq!(d[i * 4 + j], (i * 16 + j) as u32);
            }
        }
        // Scatter back to a fresh host buffer at shifted offsets.
        let out = PinnedBuffer::new(128);
        let back: Vec<(usize, usize, usize)> = (0..8).map(|i| (i * 4, i * 16 + 1, 4)).collect();
        s.zero_copy_d2h_async(&dbuf, &out, back);
        s.synchronize().unwrap();
        let o = out.snapshot();
        for i in 0..8 {
            for j in 0..4 {
                assert_eq!(o[i * 16 + 1 + j], (i * 16 + j) as u32);
            }
        }
    }

    #[test]
    fn byte_accounting() {
        let (dev, s, host, dbuf) = setup(64);
        s.memcpy_h2d_async(&host, 0, &dbuf, 0, 64); // 256 B
        s.memcpy_d2h_async(&dbuf, 0, &host, 0, 32); // 128 B
        s.synchronize().unwrap();
        let (h2d, d2h, calls, _) = dev.stats().snapshot();
        assert_eq!(h2d, 256);
        assert_eq!(d2h, 128);
        assert_eq!(calls, 2);
    }

    #[test]
    #[should_panic(expected = "past device")]
    fn out_of_bounds_copy_panics() {
        let (_dev, s, host, dbuf) = setup(16);
        s.memcpy_h2d_async(&host, 0, &dbuf, 10, 10);
    }

    #[test]
    #[should_panic(expected = "rows overlap")]
    fn overlapping_pitch_rejected() {
        let (_dev, s, host, dbuf) = setup(64);
        let p = Copy2d {
            width: 8,
            height: 2,
            src_offset: 0,
            src_pitch: 4, // < width
            dst_offset: 0,
            dst_pitch: 8,
        };
        s.memcpy2d_h2d_async(&host, &dbuf, p);
    }
}

impl Stream {
    /// Asynchronously fill a device region with a value (`cudaMemsetAsync`
    /// generalized to typed fills).
    pub fn memset_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        dev: &DeviceBuffer<T>,
        offset: usize,
        len: usize,
        value: T,
    ) {
        assert!(offset + len <= dev.len(), "memset past device buffer");
        self.record_exec(
            "memsetAsync",
            vec![Access::write(dev.id(), MemSpace::Device, offset, len)],
        );
        let d = dev.clone();
        self.enqueue(
            "memsetAsync".to_string(),
            SpanKind::Kernel,
            Box::new(move || {
                let mut dst = d.lock_mut();
                for v in dst[offset..offset + len].iter_mut() {
                    *v = value;
                }
            }),
        );
    }

    /// Asynchronous device-to-device copy (`cudaMemcpyAsync`, D2D). Source
    /// and destination may be the same buffer only for disjoint ranges.
    pub fn memcpy_d2d_async<T: Copy + Send + Sync + Default + 'static>(
        &self,
        src: &DeviceBuffer<T>,
        src_offset: usize,
        dst: &DeviceBuffer<T>,
        dst_offset: usize,
        len: usize,
    ) {
        assert!(src_offset + len <= src.len(), "D2D reads past source");
        assert!(dst_offset + len <= dst.len(), "D2D writes past destination");
        if let Some(dev) = self.device() {
            dev.stats().copy_calls.fetch_add(1, Ordering::Relaxed);
        }
        self.record_exec(
            "memcpyAsync-d2d",
            vec![
                Access::read(src.id(), MemSpace::Device, src_offset, len),
                Access::write(dst.id(), MemSpace::Device, dst_offset, len),
            ],
        );
        let (s, d) = (src.clone(), dst.clone());
        self.enqueue(
            "memcpyAsync-d2d".to_string(),
            SpanKind::Kernel,
            Box::new(move || {
                // Same-buffer copies use a temporary to avoid lock recursion.
                let tmp: Vec<T> = {
                    let a = s.lock();
                    a[src_offset..src_offset + len].to_vec()
                };
                let mut b = d.lock_mut();
                b[dst_offset..dst_offset + len].copy_from_slice(&tmp);
            }),
        );
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};

    #[test]
    fn memset_fills_region() {
        let dev = Device::new(DeviceConfig::tiny(1 << 16));
        let buf = dev.alloc::<f32>(64).unwrap();
        let s = dev.create_stream("m");
        s.memset_async(&buf, 8, 16, 2.5);
        s.synchronize().unwrap();
        let d = buf.snapshot();
        assert!(d[..8].iter().all(|&v| v == 0.0));
        assert!(d[8..24].iter().all(|&v| v == 2.5));
        assert!(d[24..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn d2d_copies_between_and_within_buffers() {
        let dev = Device::new(DeviceConfig::tiny(1 << 16));
        let a = dev.alloc::<u32>(32).unwrap();
        let b = dev.alloc::<u32>(32).unwrap();
        let host = PinnedBuffer::from_vec((0..32u32).collect());
        let s = dev.create_stream("d");
        s.memcpy_h2d_async(&host, 0, &a, 0, 32);
        s.memcpy_d2d_async(&a, 4, &b, 10, 8);
        // Same-buffer disjoint copy.
        s.memcpy_d2d_async(&a, 0, &a, 20, 8);
        s.synchronize().unwrap();
        let bv = b.snapshot();
        for i in 0..8 {
            assert_eq!(bv[10 + i], (4 + i) as u32);
        }
        let av = a.snapshot();
        for i in 0..8 {
            assert_eq!(av[20 + i], i as u32);
        }
    }
}
