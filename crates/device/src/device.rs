//! The [`Device`]: a thin, cheap-to-clone handle over an
//! `Arc<dyn DeviceBackend>` executor, plus the per-device observability that
//! is identical across backends (stats, timeline, tracer bridge, chaos
//! gates, sticky error slot). Defaults model one NVIDIA V100 of Summit
//! running on the simulated backend.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use crate::backend::{BackendKind, DeviceBackend};
use crate::buffer::DeviceBuffer;
use crate::error::DeviceError;
use crate::sim::SimBackend;
use crate::stream::Stream;
use crate::timeline::Timeline;

/// Static description of one accelerator.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    pub name: String,
    /// Device memory capacity in bytes (V100: 16 GB).
    pub memory_bytes: usize,
    /// Number of streaming multiprocessors (V100: 80). Only used for
    /// reporting and by the zero-copy throughput model in `psdns-model`.
    pub sm_count: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            name: "V100-SXM2-16GB (simulated)".to_string(),
            memory_bytes: 16 * (1 << 30),
            sm_count: 80,
        }
    }
}

impl DeviceConfig {
    /// A small-memory device used in tests and examples to force the
    /// out-of-core batched path at laptop problem sizes.
    pub fn tiny(memory_bytes: usize) -> Self {
        Self {
            name: format!("tiny-device-{memory_bytes}B"),
            memory_bytes,
            sm_count: 80,
        }
    }

    /// Validating builder, the device-layer counterpart of
    /// `GpuFftBuilder`: field-by-field construction with range checks at
    /// [`build`](DeviceConfigBuilder::build) instead of struct literals.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder {
            config: DeviceConfig::default(),
        }
    }
}

/// Builder for [`DeviceConfig`]; defaults to the V100 profile.
#[derive(Clone, Debug)]
pub struct DeviceConfigBuilder {
    config: DeviceConfig,
}

impl DeviceConfigBuilder {
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.config.memory_bytes = bytes;
        self
    }

    pub fn sm_count(mut self, sms: usize) -> Self {
        self.config.sm_count = sms;
        self
    }

    /// Validate and produce the config. Fails with
    /// [`DeviceError::InvalidConfig`] on an empty name, zero capacity, or an
    /// SM count outside `1..=4096` (far past any shipping part — a count
    /// beyond it is a units bug, not a bigger GPU).
    pub fn build(self) -> Result<DeviceConfig, DeviceError> {
        let c = self.config;
        if c.name.trim().is_empty() {
            return Err(DeviceError::InvalidConfig {
                field: "name",
                message: "device name must be non-empty".to_string(),
            });
        }
        if c.memory_bytes == 0 {
            return Err(DeviceError::InvalidConfig {
                field: "memory_bytes",
                message: "device memory capacity must be > 0".to_string(),
            });
        }
        if c.sm_count == 0 || c.sm_count > 4096 {
            return Err(DeviceError::InvalidConfig {
                field: "sm_count",
                message: format!("sm_count {} outside 1..=4096", c.sm_count),
            });
        }
        Ok(c)
    }
}

/// Cumulative transfer/kernel counters, the device-side analogue of the
/// paper's profiling data.
#[derive(Debug, Default)]
pub struct DeviceStats {
    pub bytes_h2d: AtomicUsize,
    pub bytes_d2h: AtomicUsize,
    pub copy_calls: AtomicUsize,
    pub kernel_launches: AtomicUsize,
}

impl DeviceStats {
    pub fn snapshot(&self) -> (usize, usize, usize, usize) {
        (
            self.bytes_h2d.load(Ordering::Relaxed),
            self.bytes_d2h.load(Ordering::Relaxed),
            self.copy_calls.load(Ordering::Relaxed),
            self.kernel_launches.load(Ordering::Relaxed),
        )
    }
}

pub(crate) struct DeviceInner {
    /// The executor. Capacity ledger and schedule recorder live here (on the
    /// backend) so they follow the trait object; everything below is shared
    /// observability identical across backends.
    pub backend: Arc<dyn DeviceBackend>,
    pub stats: DeviceStats,
    pub timeline: Timeline,
    pub epoch: Instant,
    pub next_stream_id: AtomicU64,
    /// Shared tracer bridge: when attached, backend executors mirror every
    /// executed span into it and the copy engine mirrors byte counters.
    pub tracer: psdns_sync::Mutex<Option<psdns_trace::Tracer>>,
    /// Fault-injection engine; `None` outside chaos runs.
    pub chaos: psdns_sync::Mutex<Option<psdns_chaos::ChaosEngine>>,
    /// Sticky asynchronous error, like a CUDA context error: set when a copy
    /// fails after retries, observed (and cleared) via [`Device::take_error`].
    pub error: psdns_sync::Mutex<Option<DeviceError>>,
    /// Optional cross-rank ordering recorder: fences log deadline-flagged
    /// local waits for [`psdns_analyze::analyze_global`].
    pub global_recorder: psdns_sync::Mutex<Option<psdns_analyze::RankRecorder>>,
}

impl Drop for DeviceInner {
    fn drop(&mut self) {
        // The last Device handle is gone; open the health release latch
        // first so any injected hung op unblocks and wedged workers can
        // drain, then shut the executor down so any surviving Stream sees
        // BackendShutDown instead of wedging or panicking. Pending ops drain
        // FIFO before the shutdown marker.
        self.backend.health().release();
        self.backend.shutdown();
    }
}

/// Downgraded device handle held by streams and queue workers: neither may
/// keep the device alive (that is the drop-order footgun this PR removes),
/// and both must tolerate it being gone.
#[derive(Clone)]
pub struct WeakDevice {
    pub(crate) inner: Weak<DeviceInner>,
}

impl WeakDevice {
    pub fn upgrade(&self) -> Option<Device> {
        self.inner.upgrade().map(|inner| Device { inner })
    }
}

/// Handle to one accelerator. Cheap to clone; all clones refer to the same
/// device (like a CUDA device ordinal after `cudaSetDevice`).
///
/// ```
/// use psdns_device::{Device, DeviceConfig, PinnedBuffer};
/// let dev = Device::new(DeviceConfig::tiny(1 << 20));
/// let host = PinnedBuffer::from_vec(vec![1.0f32; 256]);
/// let dbuf = dev.alloc::<f32>(256)?;
/// let s = dev.create_stream("doc");
/// s.memcpy_h2d_async(&host, 0, &dbuf, 0, 256);
/// let d = dbuf.clone();
/// s.launch("scale", move || {
///     for v in d.lock_mut().iter_mut() { *v *= 3.0; }
/// });
/// s.memcpy_d2h_async(&dbuf, 0, &host, 0, 256);
/// s.synchronize()?;
/// assert_eq!(host.snapshot()[0], 3.0);
/// # Ok::<(), psdns_device::DeviceError>(())
/// ```
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Device {
    /// A device on the default executor: the simulated accelerator.
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_backend(Arc::new(SimBackend::new(config)))
    }

    /// A device on the eager host-CPU executor (feature `host-backend`,
    /// enabled by default): same schedule, runs on the submitting thread.
    #[cfg(feature = "host-backend")]
    pub fn host(config: DeviceConfig) -> Self {
        Self::with_backend(Arc::new(crate::host::HostBackend::new(config)))
    }

    /// A device on the named executor. Panics when the requested backend's
    /// cargo feature is compiled out — backend selection is a build-time
    /// decision, not a recoverable runtime condition.
    pub fn with_kind(kind: BackendKind, config: DeviceConfig) -> Self {
        match kind {
            BackendKind::Simulated => Self::new(config),
            BackendKind::Host => {
                #[cfg(feature = "host-backend")]
                {
                    Self::host(config)
                }
                #[cfg(not(feature = "host-backend"))]
                {
                    let _ = config;
                    panic!("psdns-device was built without the `host-backend` feature")
                }
            }
            BackendKind::Wgpu => {
                #[cfg(feature = "wgpu-backend")]
                {
                    let backend = crate::wgpu_backend::WgpuBackend::new(config)
                        .expect("wgpu shim always exposes an adapter");
                    Self::with_backend(Arc::new(backend))
                }
                #[cfg(not(feature = "wgpu-backend"))]
                {
                    let _ = config;
                    panic!("psdns-device was built without the `wgpu-backend` feature")
                }
            }
        }
    }

    /// A device over an arbitrary executor — the extension point for
    /// out-of-tree backends.
    pub fn with_backend(backend: Arc<dyn DeviceBackend>) -> Self {
        Self {
            inner: Arc::new(DeviceInner {
                backend,
                stats: DeviceStats::default(),
                timeline: Timeline::new(),
                epoch: Instant::now(),
                next_stream_id: AtomicU64::new(0),
                tracer: psdns_sync::Mutex::new(None),
                chaos: psdns_sync::Mutex::new(None),
                error: psdns_sync::Mutex::new(None),
                global_recorder: psdns_sync::Mutex::new(None),
            }),
        }
    }

    /// Attach this rank's [`psdns_analyze::RankRecorder`]: every subsequent
    /// fence on this device's streams logs a deadline-flagged local wait
    /// (and, on completion, its `done-local` retirement) into the global
    /// cross-rank ordering log. An un-watchdogged fence records an
    /// *unbounded* wait — exactly what `analyze_global`'s `UnboundedWait`
    /// lint exists to flag.
    pub fn attach_global_recorder(&self, rec: &psdns_analyze::RankRecorder) {
        *self.inner.global_recorder.lock() = Some(rec.clone());
    }

    /// The attached cross-rank recorder, if any.
    pub fn global_recorder(&self) -> Option<psdns_analyze::RankRecorder> {
        self.inner.global_recorder.lock().clone()
    }

    /// The executor behind this handle.
    pub fn backend(&self) -> &Arc<dyn DeviceBackend> {
        &self.inner.backend
    }

    /// The backend's health state machine (`Healthy → Suspect → Lost`);
    /// shared by every clone and stream of this device.
    pub fn health(&self) -> &crate::health::HealthMonitor {
        self.inner.backend.health()
    }

    /// Arm fence/queue watchdogs: every subsequent `Stream::synchronize`
    /// on this device is bounded by the adaptive rolling-p99 deadline
    /// (`max(floor, factor × p99)`) and a miss drives the health protocol
    /// instead of blocking forever. Pass the same
    /// [`psdns_chaos::WatchdogPolicy`] used for the comm layer's a2a
    /// watchdog to keep one watchdog-floor configuration stack-wide.
    pub fn enable_fence_watchdog(&self, policy: psdns_chaos::WatchdogPolicy) {
        self.inner
            .backend
            .health()
            .set_watchdog(psdns_chaos::AdaptiveWatchdog::with_policy(policy));
    }

    /// Cheap canary: submit one trivial op on a *fresh* queue and fence it
    /// (bounded by `deadline` when given). `true` means the device still
    /// responds — a wedged stream on a responsive device is congestion, not
    /// loss. Bypasses the stream-layer chaos gates so probing draws no new
    /// faults and perturbs no fault schedule.
    pub fn probe(&self, deadline: Option<std::time::Duration>) -> bool {
        use std::sync::atomic::AtomicBool;
        if self.inner.backend.health().lost_injected() {
            return false;
        }
        let id = self.inner.next_stream_id.fetch_add(1, Ordering::Relaxed);
        let q = self
            .inner
            .backend
            .create_queue(self.downgrade(), id, "canary");
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        let submitted = q.submit(crate::backend::QueueOp {
            name: "canary".to_string(),
            kind: crate::timeline::SpanKind::Marker,
            exec: Box::new(move || ran2.store(true, Ordering::SeqCst)),
        });
        if submitted.is_err() {
            return false;
        }
        let done = match deadline {
            Some(d) => matches!(q.fence_deadline(d), Ok(crate::backend::FenceWait::Complete)),
            None => q.fence().is_ok(),
        };
        done && ran.load(Ordering::SeqCst)
    }

    /// Which executor this device runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.backend.kind()
    }

    /// Weak handle for streams and queue workers (see [`WeakDevice`]).
    pub fn downgrade(&self) -> WeakDevice {
        WeakDevice {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Attach a schedule recorder: every subsequently enqueued stream op,
    /// `record`/`wait_event` edge and copy access range on this device is
    /// mirrored into `log` (see `psdns-analyze`). Recording captures the
    /// *schedule* — host enqueue order plus declared access ranges — not
    /// execution timing, so a single recorded dry-run can be replayed and
    /// mutated offline. The recorder lives on the backend trait object, so
    /// it is identical for every executor.
    pub fn attach_recorder(&self, log: &psdns_analyze::OrderingLog) {
        self.inner.backend.attach_recorder(log);
    }

    /// The attached schedule recorder, if any.
    pub fn recorder(&self) -> Option<psdns_analyze::OrderingLog> {
        self.inner.backend.recorder()
    }

    /// Thread a fault-injection engine through this device: allocations may
    /// fail with injected OOM, copies may fail transiently (retried per the
    /// engine's policy), and streams may stall. A device without an engine
    /// behaves exactly like the pre-chaos runtime. The gates live in the
    /// shared stream layer, so fault sites and schedules are identical on
    /// every backend.
    pub fn attach_chaos(&self, engine: &psdns_chaos::ChaosEngine) {
        *self.inner.chaos.lock() = Some(engine.clone());
    }

    pub(crate) fn chaos(&self) -> Option<psdns_chaos::ChaosEngine> {
        self.inner.chaos.lock().clone()
    }

    /// Rank this device's work is attributed to (via the attached tracer);
    /// 0 when untraced. Used to label injected faults.
    pub(crate) fn trace_rank(&self) -> usize {
        self.inner
            .tracer
            .lock()
            .as_ref()
            .map(|t| t.rank())
            .unwrap_or(0)
    }

    pub(crate) fn set_error(&self, e: DeviceError) {
        let mut slot = self.inner.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Take the sticky asynchronous error, if any — the analogue of
    /// `cudaGetLastError`: returns the first error recorded since the last
    /// call and clears it.
    pub fn take_error(&self) -> Option<DeviceError> {
        self.inner.error.lock().take()
    }

    /// Bridge this device into a shared [`psdns_trace::Tracer`]: every span
    /// the local [`Timeline`] records is also recorded on the tracer (track =
    /// stream name, rank = the handle's rank), and transfer byte counters are
    /// mirrored. Attach a `tracer.for_rank(r)` handle so spans land on the
    /// owning rank.
    pub fn attach_tracer(&self, tracer: &psdns_trace::Tracer) {
        *self.inner.tracer.lock() = Some(tracer.clone());
    }

    /// The attached tracer handle, if any.
    pub fn tracer(&self) -> Option<psdns_trace::Tracer> {
        self.inner.tracer.lock().clone()
    }

    pub(crate) fn trace_add_bytes_h2d(&self, bytes: usize) {
        if let Some(t) = self.tracer() {
            t.add_bytes_h2d(bytes);
        }
    }

    pub(crate) fn trace_add_bytes_d2h(&self, bytes: usize) {
        if let Some(t) = self.tracer() {
            t.add_bytes_d2h(bytes);
        }
    }

    pub(crate) fn trace_incr_kernel(&self) {
        if let Some(t) = self.tracer() {
            t.incr_kernel_launches();
        }
    }

    pub fn config(&self) -> &DeviceConfig {
        self.inner.backend.config()
    }

    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    /// nvtx-style span trace of everything this device has executed.
    pub fn timeline(&self) -> &Timeline {
        &self.inner.timeline
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> usize {
        self.inner.backend.allocated_bytes()
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> usize {
        self.inner.backend.capacity_bytes() - self.allocated_bytes()
    }

    /// Allocate `len` elements of device memory. Fails with
    /// [`DeviceError::OutOfMemory`] when capacity would be exceeded — the
    /// constraint that forces pencil batching at large N (paper §3.5).
    pub fn alloc<T: Copy + Send + Sync + Default + 'static>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = len * std::mem::size_of::<T>();
        // Injected memory pressure: fail an allocation that would fit, as a
        // fragmented/oversubscribed device would.
        if let Some(ch) = self.chaos() {
            let rank = self.trace_rank();
            if ch.check(
                rank,
                &format!("alloc:r{rank}"),
                psdns_chaos::FaultKind::AllocFault,
            ) {
                return Err(DeviceError::OutOfMemory {
                    requested_bytes: bytes,
                    free_bytes: self.free_bytes(),
                    capacity_bytes: self.inner.backend.capacity_bytes(),
                });
            }
        }
        let id = crate::buffer::next_buffer_id();
        self.inner.backend.alloc(id, bytes)?;
        Ok(DeviceBuffer::new(Arc::clone(&self.inner.backend), id, len))
    }

    /// Create a named stream: a FIFO queue on this device's backend.
    pub fn create_stream(&self, name: &str) -> Stream {
        let id = self.inner.next_stream_id.fetch_add(1, Ordering::Relaxed);
        let queue = self.inner.backend.create_queue(self.downgrade(), id, name);
        Stream::new(
            self.downgrade(),
            Arc::clone(&self.inner.backend),
            queue,
            id,
            name.to_string(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_accounting() -> Result<(), DeviceError> {
        let dev = Device::new(DeviceConfig::tiny(1024));
        assert_eq!(dev.free_bytes(), 1024);
        let a = dev.alloc::<u8>(512)?;
        assert_eq!(dev.free_bytes(), 512);
        let b = dev.alloc::<f32>(64)?; // 256 B
        assert_eq!(dev.free_bytes(), 256);
        let err = dev.alloc::<u8>(512).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested_bytes,
                free_bytes,
                capacity_bytes,
            } => {
                assert_eq!(requested_bytes, 512);
                assert_eq!(free_bytes, 256);
                assert_eq!(capacity_bytes, 1024);
            }
            other => panic!("wrong error {other:?}"),
        }
        drop(a);
        assert_eq!(dev.free_bytes(), 768);
        drop(b);
        assert_eq!(dev.free_bytes(), 1024);
        Ok(())
    }

    #[test]
    fn alias_clones_free_once() -> Result<(), DeviceError> {
        let dev = Device::new(DeviceConfig::tiny(1024));
        let a = dev.alloc::<u8>(1000)?;
        let alias = a.clone();
        drop(a);
        // Memory stays allocated while an alias lives.
        assert_eq!(dev.free_bytes(), 24);
        drop(alias);
        assert_eq!(dev.free_bytes(), 1024);
        Ok(())
    }

    #[test]
    fn v100_default_capacity() {
        let dev = Device::new(DeviceConfig::default());
        assert_eq!(dev.config().memory_bytes, 16 * (1 << 30));
        assert_eq!(dev.config().sm_count, 80);
        assert_eq!(dev.backend_kind(), BackendKind::Simulated);
    }

    #[test]
    fn buffers_keep_ledger_alive_past_device_drop() -> Result<(), DeviceError> {
        // A buffer outliving its Device must release capacity into the
        // backend's ledger without touching the (gone) device handle.
        let dev = Device::new(DeviceConfig::tiny(1024));
        let buf = dev.alloc::<u8>(512)?;
        drop(dev);
        drop(buf); // must not panic
        Ok(())
    }

    #[test]
    fn config_builder_validates_ranges() -> Result<(), DeviceError> {
        let ok = DeviceConfig::builder()
            .name("test-gpu")
            .memory_bytes(1 << 20)
            .sm_count(40)
            .build()?;
        assert_eq!(ok.name, "test-gpu");
        assert_eq!(ok.memory_bytes, 1 << 20);
        assert_eq!(ok.sm_count, 40);

        // Defaults are the V100 profile.
        let dflt = DeviceConfig::builder().build()?;
        assert_eq!(dflt.memory_bytes, 16 * (1 << 30));

        let e = DeviceConfig::builder().name("  ").build().unwrap_err();
        assert!(matches!(
            e,
            DeviceError::InvalidConfig { field: "name", .. }
        ));
        let e = DeviceConfig::builder().memory_bytes(0).build().unwrap_err();
        assert!(matches!(
            e,
            DeviceError::InvalidConfig {
                field: "memory_bytes",
                ..
            }
        ));
        let e = DeviceConfig::builder().sm_count(0).build().unwrap_err();
        assert!(matches!(
            e,
            DeviceError::InvalidConfig {
                field: "sm_count",
                ..
            }
        ));
        let e = DeviceConfig::builder().sm_count(5000).build().unwrap_err();
        assert!(e.to_string().contains("sm_count"));
        Ok(())
    }

    #[cfg(feature = "host-backend")]
    #[test]
    fn host_device_runs_the_same_offload() -> Result<(), DeviceError> {
        let dev = Device::host(DeviceConfig::tiny(1 << 20));
        assert_eq!(dev.backend_kind(), BackendKind::Host);
        let buf = dev.alloc::<u32>(16)?;
        let s = dev.create_stream("h");
        let b = buf.clone();
        s.launch("fill", move || {
            for (i, v) in b.lock_mut().iter_mut().enumerate() {
                *v = i as u32;
            }
        });
        s.synchronize()?;
        assert_eq!(buf.snapshot()[15], 15);
        Ok(())
    }
}
