//! The [`Device`]: a capacity-limited accelerator with streams and a span
//! timeline. Defaults model one NVIDIA V100 of Summit.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::buffer::DeviceBuffer;
use crate::error::DeviceError;
use crate::stream::Stream;
use crate::timeline::Timeline;

/// Static description of one accelerator.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    pub name: String,
    /// Device memory capacity in bytes (V100: 16 GB).
    pub memory_bytes: usize,
    /// Number of streaming multiprocessors (V100: 80). Only used for
    /// reporting and by the zero-copy throughput model in `psdns-model`.
    pub sm_count: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            name: "V100-SXM2-16GB (simulated)".to_string(),
            memory_bytes: 16 * (1 << 30),
            sm_count: 80,
        }
    }
}

impl DeviceConfig {
    /// A small-memory device used in tests and examples to force the
    /// out-of-core batched path at laptop problem sizes.
    pub fn tiny(memory_bytes: usize) -> Self {
        Self {
            name: format!("tiny-device-{memory_bytes}B"),
            memory_bytes,
            sm_count: 80,
        }
    }
}

/// Cumulative transfer/kernel counters, the device-side analogue of the
/// paper's profiling data.
#[derive(Debug, Default)]
pub struct DeviceStats {
    pub bytes_h2d: AtomicUsize,
    pub bytes_d2h: AtomicUsize,
    pub copy_calls: AtomicUsize,
    pub kernel_launches: AtomicUsize,
}

impl DeviceStats {
    pub fn snapshot(&self) -> (usize, usize, usize, usize) {
        (
            self.bytes_h2d.load(Ordering::Relaxed),
            self.bytes_d2h.load(Ordering::Relaxed),
            self.copy_calls.load(Ordering::Relaxed),
            self.kernel_launches.load(Ordering::Relaxed),
        )
    }
}

pub(crate) struct DeviceInner {
    pub config: DeviceConfig,
    pub allocated: AtomicUsize,
    pub stats: DeviceStats,
    pub timeline: Timeline,
    pub epoch: Instant,
    pub next_stream_id: AtomicU64,
    /// Shared tracer bridge: when attached, stream workers mirror every
    /// executed span into it and the copy engine mirrors byte counters.
    pub tracer: psdns_sync::Mutex<Option<psdns_trace::Tracer>>,
    /// Fault-injection engine; `None` outside chaos runs.
    pub chaos: psdns_sync::Mutex<Option<psdns_chaos::ChaosEngine>>,
    /// Sticky asynchronous error, like a CUDA context error: set when a copy
    /// fails after retries, observed (and cleared) via [`Device::take_error`].
    pub error: psdns_sync::Mutex<Option<DeviceError>>,
    /// Schedule recorder: when attached, every stream op, event edge and
    /// copy access range is mirrored into the ordering log for
    /// happens-before hazard analysis.
    pub recorder: psdns_sync::Mutex<Option<psdns_analyze::OrderingLog>>,
}

/// Handle to one simulated accelerator. Cheap to clone; all clones refer to
/// the same device (like a CUDA device ordinal after `cudaSetDevice`).
///
/// ```
/// use psdns_device::{Device, DeviceConfig, PinnedBuffer};
/// let dev = Device::new(DeviceConfig::tiny(1 << 20));
/// let host = PinnedBuffer::from_vec(vec![1.0f32; 256]);
/// let dbuf = dev.alloc::<f32>(256).unwrap();
/// let s = dev.create_stream("doc");
/// s.memcpy_h2d_async(&host, 0, &dbuf, 0, 256);
/// let d = dbuf.clone();
/// s.launch("scale", move || {
///     for v in d.lock_mut().iter_mut() { *v *= 3.0; }
/// });
/// s.memcpy_d2h_async(&dbuf, 0, &host, 0, 256);
/// s.synchronize();
/// assert_eq!(host.snapshot()[0], 3.0);
/// ```
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Device {
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            inner: Arc::new(DeviceInner {
                config,
                allocated: AtomicUsize::new(0),
                stats: DeviceStats::default(),
                timeline: Timeline::new(),
                epoch: Instant::now(),
                next_stream_id: AtomicU64::new(0),
                tracer: psdns_sync::Mutex::new(None),
                chaos: psdns_sync::Mutex::new(None),
                error: psdns_sync::Mutex::new(None),
                recorder: psdns_sync::Mutex::new(None),
            }),
        }
    }

    /// Attach a schedule recorder: every subsequently enqueued stream op,
    /// `record`/`wait_event` edge and copy access range on this device is
    /// mirrored into `log` (see `psdns-analyze`). Recording captures the
    /// *schedule* — host enqueue order plus declared access ranges — not
    /// execution timing, so a single recorded dry-run can be replayed and
    /// mutated offline.
    pub fn attach_recorder(&self, log: &psdns_analyze::OrderingLog) {
        *self.inner.recorder.lock() = Some(log.clone());
    }

    /// The attached schedule recorder, if any.
    pub fn recorder(&self) -> Option<psdns_analyze::OrderingLog> {
        self.inner.recorder.lock().clone()
    }

    /// Thread a fault-injection engine through this device: allocations may
    /// fail with injected OOM, copies may fail transiently (retried per the
    /// engine's policy), and streams may stall. A device without an engine
    /// behaves exactly like the pre-chaos runtime.
    pub fn attach_chaos(&self, engine: &psdns_chaos::ChaosEngine) {
        *self.inner.chaos.lock() = Some(engine.clone());
    }

    pub(crate) fn chaos(&self) -> Option<psdns_chaos::ChaosEngine> {
        self.inner.chaos.lock().clone()
    }

    /// Rank this device's work is attributed to (via the attached tracer);
    /// 0 when untraced. Used to label injected faults.
    pub(crate) fn trace_rank(&self) -> usize {
        self.inner
            .tracer
            .lock()
            .as_ref()
            .map(|t| t.rank())
            .unwrap_or(0)
    }

    pub(crate) fn set_error(&self, e: DeviceError) {
        let mut slot = self.inner.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Take the sticky asynchronous error, if any — the analogue of
    /// `cudaGetLastError`: returns the first error recorded since the last
    /// call and clears it.
    pub fn take_error(&self) -> Option<DeviceError> {
        self.inner.error.lock().take()
    }

    /// Bridge this device into a shared [`psdns_trace::Tracer`]: every span
    /// the local [`Timeline`] records is also recorded on the tracer (track =
    /// stream name, rank = the handle's rank), and transfer byte counters are
    /// mirrored. Attach a `tracer.for_rank(r)` handle so spans land on the
    /// owning rank.
    pub fn attach_tracer(&self, tracer: &psdns_trace::Tracer) {
        *self.inner.tracer.lock() = Some(tracer.clone());
    }

    /// The attached tracer handle, if any.
    pub fn tracer(&self) -> Option<psdns_trace::Tracer> {
        self.inner.tracer.lock().clone()
    }

    pub(crate) fn trace_add_bytes_h2d(&self, bytes: usize) {
        if let Some(t) = self.tracer() {
            t.add_bytes_h2d(bytes);
        }
    }

    pub(crate) fn trace_add_bytes_d2h(&self, bytes: usize) {
        if let Some(t) = self.tracer() {
            t.add_bytes_d2h(bytes);
        }
    }

    pub(crate) fn trace_incr_kernel(&self) {
        if let Some(t) = self.tracer() {
            t.incr_kernel_launches();
        }
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    /// nvtx-style span trace of everything this device has executed.
    pub fn timeline(&self) -> &Timeline {
        &self.inner.timeline
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> usize {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> usize {
        self.inner.config.memory_bytes - self.allocated_bytes()
    }

    /// Allocate `len` elements of device memory. Fails with
    /// [`DeviceError::OutOfMemory`] when capacity would be exceeded — the
    /// constraint that forces pencil batching at large N (paper §3.5).
    pub fn alloc<T: Copy + Send + Sync + Default + 'static>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = len * std::mem::size_of::<T>();
        // Injected memory pressure: fail an allocation that would fit, as a
        // fragmented/oversubscribed device would.
        if let Some(ch) = self.chaos() {
            let rank = self.trace_rank();
            if ch.check(
                rank,
                &format!("alloc:r{rank}"),
                psdns_chaos::FaultKind::AllocFault,
            ) {
                return Err(DeviceError::OutOfMemory {
                    requested_bytes: bytes,
                    free_bytes: self.free_bytes(),
                    capacity_bytes: self.inner.config.memory_bytes,
                });
            }
        }
        // Reserve optimistically, roll back on failure (allocation may race
        // between host threads driving different streams).
        let prev = self.inner.allocated.fetch_add(bytes, Ordering::SeqCst);
        if prev + bytes > self.inner.config.memory_bytes {
            self.inner.allocated.fetch_sub(bytes, Ordering::SeqCst);
            return Err(DeviceError::OutOfMemory {
                requested_bytes: bytes,
                free_bytes: self.inner.config.memory_bytes - prev,
                capacity_bytes: self.inner.config.memory_bytes,
            });
        }
        Ok(DeviceBuffer::new(self.clone(), len))
    }

    /// Create a named stream (a FIFO queue with its own worker thread).
    pub fn create_stream(&self, name: &str) -> Stream {
        let id = self.inner.next_stream_id.fetch_add(1, Ordering::Relaxed);
        Stream::spawn(self.clone(), id, name.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_accounting() {
        let dev = Device::new(DeviceConfig::tiny(1024));
        assert_eq!(dev.free_bytes(), 1024);
        let a = dev.alloc::<u8>(512).unwrap();
        assert_eq!(dev.free_bytes(), 512);
        let b = dev.alloc::<f32>(64).unwrap(); // 256 B
        assert_eq!(dev.free_bytes(), 256);
        let err = dev.alloc::<u8>(512).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested_bytes,
                free_bytes,
                capacity_bytes,
            } => {
                assert_eq!(requested_bytes, 512);
                assert_eq!(free_bytes, 256);
                assert_eq!(capacity_bytes, 1024);
            }
            other => panic!("wrong error {other:?}"),
        }
        drop(a);
        assert_eq!(dev.free_bytes(), 768);
        drop(b);
        assert_eq!(dev.free_bytes(), 1024);
    }

    #[test]
    fn alias_clones_free_once() {
        let dev = Device::new(DeviceConfig::tiny(1024));
        let a = dev.alloc::<u8>(1000).unwrap();
        let alias = a.clone();
        drop(a);
        // Memory stays allocated while an alias lives.
        assert_eq!(dev.free_bytes(), 24);
        drop(alias);
        assert_eq!(dev.free_bytes(), 1024);
    }

    #[test]
    fn v100_default_capacity() {
        let dev = Device::new(DeviceConfig::default());
        assert_eq!(dev.config().memory_bytes, 16 * (1 << 30));
        assert_eq!(dev.config().sm_count, 80);
    }
}
