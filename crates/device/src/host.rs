//! [`HostBackend`]: eager host-CPU execution of the same certified schedule.
//!
//! Every submitted op runs immediately on the submitting thread, so the
//! "device" is just the host address space and enqueue order *is* execution
//! order. This replaces the ad-hoc `SlabFftCpu` fallback path that used to
//! live inside `gpu_pipeline.rs`: the degraded mode now executes the *same*
//! launched kernels, copies and event edges as the simulated accelerator —
//! only eagerly — so one code path is certified once and runs everywhere.
//!
//! Eager execution cannot deadlock on events: an `event-record` op completes
//! its ticket at submit time, and host program order guarantees every record
//! precedes the `event-wait` that captured its ticket, so waits always find
//! their ticket already complete. Kernels still exploit multicore through the
//! PR-5 `WorkerPool`: the solver's launched closures call
//! `execute_parallel(..., host_threads)` internally, which is
//! thread-count-independent bitwise — the keystone of the byte-identical
//! cross-backend equivalence pinned by `tests/backend_equivalence.rs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::backend::{run_op, BackendCommon, BackendKind, DeviceBackend, ExecQueue, QueueOp};
use crate::device::{DeviceConfig, WeakDevice};
use crate::error::DeviceError;

struct HostQueue {
    device: WeakDevice,
    stream_id: u64,
    stream_name: String,
    dead: Arc<AtomicBool>,
}

impl HostQueue {
    fn shut_down_error(&self) -> DeviceError {
        DeviceError::BackendShutDown {
            stream: self.stream_name.clone(),
        }
    }
}

impl ExecQueue for HostQueue {
    fn submit(&self, op: QueueOp) -> Result<(), DeviceError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.shut_down_error());
        }
        run_op(&self.device, self.stream_id, &self.stream_name, op);
        Ok(())
    }

    fn fence(&self) -> Result<(), DeviceError> {
        // Everything already ran at submit time; the fence only reports
        // backend liveness.
        if self.dead.load(Ordering::SeqCst) {
            return Err(self.shut_down_error());
        }
        Ok(())
    }
}

/// The eager host-CPU backend ([`BackendKind::Host`], feature
/// `host-backend`, on by default).
pub struct HostBackend {
    common: BackendCommon,
    dead: Arc<AtomicBool>,
}

impl HostBackend {
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            common: BackendCommon::new(config),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl DeviceBackend for HostBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Host
    }

    fn common(&self) -> &BackendCommon {
        &self.common
    }

    fn create_queue(
        &self,
        device: WeakDevice,
        stream_id: u64,
        stream_name: &str,
    ) -> Arc<dyn ExecQueue> {
        Arc::new(HostQueue {
            device,
            stream_id,
            stream_name: stream_name.to_string(),
            dead: Arc::clone(&self.dead),
        })
    }

    fn shutdown(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }
}
