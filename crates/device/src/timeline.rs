//! nvtx-style span tracing. The paper leans on the NVIDIA Visual Profiler
//! plus Fortran nvtx markers to produce its Fig. 10 timelines; this module
//! records the same kind of (stream, name, start, end) spans for real
//! executions of the simulated device.

use std::sync::atomic::{AtomicBool, Ordering};

use psdns_sync::Mutex;

/// What kind of work a span covers — used to color/aggregate timelines.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    Kernel,
    CopyH2D,
    CopyD2H,
    Sync,
    Marker,
}

impl SpanKind {
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::CopyH2D => "h2d",
            SpanKind::CopyD2H => "d2h",
            SpanKind::Sync => "sync",
            SpanKind::Marker => "marker",
        }
    }
}

/// One executed operation.
#[derive(Clone, Debug)]
pub struct Span {
    pub stream_id: u64,
    pub stream_name: String,
    pub name: String,
    pub kind: SpanKind,
    /// Microseconds since the device epoch.
    pub start_us: f64,
    pub end_us: f64,
}

impl Span {
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Shared, append-only trace of device activity.
pub struct Timeline {
    spans: Mutex<Vec<Span>>,
    enabled: AtomicBool,
}

impl Timeline {
    pub fn new() -> Self {
        Self {
            spans: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(true),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn push(&self, span: Span) {
        if self.is_enabled() {
            self.spans.lock().push(span);
        }
    }

    pub fn snapshot(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    /// Total busy time (µs) per kind — a quick profile summary.
    pub fn busy_by_kind(&self) -> Vec<(SpanKind, f64)> {
        let spans = self.spans.lock();
        let mut acc: Vec<(SpanKind, f64)> = Vec::new();
        for s in spans.iter() {
            match acc.iter_mut().find(|(k, _)| *k == s.kind) {
                Some((_, t)) => *t += s.duration_us(),
                None => acc.push((s.kind, s.duration_us())),
            }
        }
        acc
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: f64, end: f64) -> Span {
        Span {
            stream_id: 0,
            stream_name: "s".into(),
            name: "op".into(),
            kind,
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn accumulates_by_kind() {
        let t = Timeline::new();
        t.push(span(SpanKind::Kernel, 0.0, 5.0));
        t.push(span(SpanKind::Kernel, 5.0, 7.0));
        t.push(span(SpanKind::CopyH2D, 1.0, 2.0));
        let busy = t.busy_by_kind();
        assert!(busy.contains(&(SpanKind::Kernel, 7.0)));
        assert!(busy.contains(&(SpanKind::CopyH2D, 1.0)));
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let t = Timeline::new();
        t.set_enabled(false);
        t.push(span(SpanKind::Sync, 0.0, 1.0));
        assert!(t.snapshot().is_empty());
    }
}
