//! Typed device errors. The important one is out-of-memory: the paper's
//! whole batching design exists because a slab does not fit in HBM.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Allocation would exceed the device memory capacity.
    OutOfMemory {
        requested_bytes: usize,
        free_bytes: usize,
        capacity_bytes: usize,
    },
    /// An operation referenced a region outside a buffer.
    OutOfBounds {
        offset: usize,
        len: usize,
        buffer_len: usize,
    },
    /// A copy-engine transfer failed even after the configured retries
    /// (injected by the chaos layer; real hardware surfaces this as a sticky
    /// `cudaErrorECCUncorrectable`-style stream error).
    CopyFailed { stream: String, attempts: u32 },
    /// The stream's backend has shut down (its `Device` was dropped while
    /// this `Stream` handle survived). Async enqueues silently no-op in that
    /// state — CUDA-style — and `Stream::synchronize` reports this instead
    /// of panicking.
    BackendShutDown { stream: String },
    /// A [`crate::DeviceConfig`] builder field failed validation.
    InvalidConfig {
        field: &'static str,
        message: String,
    },
    /// A fence/synchronize on `stream` exceeded its watchdog deadline, the
    /// canary probe showed the *device* still responds, and the retry budget
    /// is exhausted: the queue itself is wedged. The device is condemned
    /// ([`crate::HealthState::Lost`]) so callers can hot-swap instead of
    /// blocking forever.
    QueueHung {
        stream: String,
        deadline: std::time::Duration,
    },
    /// The device stopped responding entirely (`cudaErrorDeviceLost`): the
    /// canary probe failed after a fence timeout, or a loss fault was
    /// injected. Sticky — every subsequent synchronize on the device reports
    /// this.
    DeviceLost { device: String },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested_bytes,
                free_bytes,
                capacity_bytes,
            } => write!(
                f,
                "device out of memory: requested {requested_bytes} B, free {free_bytes} B of {capacity_bytes} B"
            ),
            DeviceError::OutOfBounds {
                offset,
                len,
                buffer_len,
            } => write!(
                f,
                "device access out of bounds: [{offset}, {}) on buffer of {buffer_len} elements",
                offset + len
            ),
            DeviceError::CopyFailed { stream, attempts } => write!(
                f,
                "copy engine failed on stream {stream} after {attempts} attempts"
            ),
            DeviceError::BackendShutDown { stream } => write!(
                f,
                "backend shut down: stream {stream} outlived its device"
            ),
            DeviceError::InvalidConfig { field, message } => {
                write!(f, "invalid device config: {field}: {message}")
            }
            DeviceError::QueueHung { stream, deadline } => write!(
                f,
                "queue hung: stream {stream} missed its {} ms fence deadline (device still responds)",
                deadline.as_millis()
            ),
            DeviceError::DeviceLost { device } => {
                write!(f, "device lost: {device} stopped responding")
            }
        }
    }
}

impl std::error::Error for DeviceError {}
