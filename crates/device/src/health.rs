//! Per-backend device health: the `Healthy → Suspect → Lost` state machine
//! that turns "a fence never returned" into a typed, recoverable condition.
//!
//! At the paper's scale (Ravikumar, Appelhans & Yeung, SC'19) a GPU falling
//! off the bus is more common than a node dying, and the stock failure mode
//! is the worst one: `cudaStreamSynchronize` simply never returns. The
//! [`HealthMonitor`] lives on [`crate::BackendCommon`] — one per backend, so
//! every `Device` clone and every `Stream` of that backend shares a single
//! verdict — and is driven from the shared stream layer:
//!
//! 1. **Healthy**: fences run under a deadline from the shared
//!    [`AdaptiveWatchdog`] (same rolling-p99 policy as the comm layer's a2a
//!    watchdog). No watchdog attached ⇒ fences block forever, exactly the
//!    pre-health behavior.
//! 2. **Suspect**: entered when a fence misses its deadline or a loss fault
//!    is detected. A cheap canary op on a *fresh* queue probes the device
//!    before anything is condemned: a slow queue on a responsive device is
//!    congestion, not death.
//! 3. **Lost**: the probe failed (→ [`crate::DeviceError::DeviceLost`]) or
//!    the probe passed but the queue stayed wedged through the shared
//!    [`RetryPolicy`] budget (→ [`crate::DeviceError::QueueHung`]). Sticky:
//!    every later synchronize fails fast so callers can hot-swap.
//!
//! Condemnation also opens the **release latch** that injected
//! [`psdns_chaos::FaultKind::DeviceHang`] ops block on: a wedged simulated
//! worker drains its FIFO once the verdict is in, so joining it on drop can
//! not deadlock — mirroring a real driver cancelling work when a context is
//! torn down.
//!
//! Every transition is recorded in an all-integer event log (the device-side
//! analogue of `psdns-core`'s `RecoveryEvent`): no wall-clock content, so
//! same-seed chaos replays produce byte-identical logs.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::Duration;

use psdns_chaos::AdaptiveWatchdog;
use psdns_sync::{Condvar, Mutex};

/// Health verdict for one backend (shared by all streams and device clones).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthState {
    /// Normal operation.
    Healthy = 0,
    /// A deadline was missed or a fault was observed; the device is being
    /// probed. Transient: resolves back to `Healthy` or on to `Lost`.
    Suspect = 1,
    /// Condemned. Sticky; the only way out is a new device.
    Lost = 2,
}

/// Why a transition happened. The discriminants are part of the replay
/// contract (they appear in [`HealthEvent`] logs compared across runs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthCause {
    /// A fence/synchronize missed its watchdog deadline.
    FenceTimeout = 0,
    /// An injected (or driver-reported) device-loss fault.
    LostFault = 1,
    /// The canary probe failed.
    ProbeFailed = 2,
    /// Deadline retries exhausted while the device still answered probes.
    RetriesExhausted = 3,
}

/// One health transition, all-integer so same-seed replays are
/// byte-identical (the device-side analogue of `RecoveryEvent`).
/// `seq` is the monotone logical timestamp of the transition; `stream` is
/// the id of the stream that observed it (`u64::MAX` for device-wide
/// events).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// `Healthy → Suspect`.
    Suspect {
        seq: u64,
        stream: u64,
        cause: HealthCause,
    },
    /// Canary verdict while `Suspect`: `ok` is 1/0.
    Probe { seq: u64, ok: bool },
    /// `Suspect → Healthy` (a later fence attempt succeeded).
    Recovered { seq: u64, stream: u64 },
    /// `→ Lost` (sticky).
    Condemned {
        seq: u64,
        stream: u64,
        cause: HealthCause,
    },
}

impl HealthEvent {
    /// Logical timestamp of the transition.
    pub fn seq(&self) -> u64 {
        match *self {
            HealthEvent::Suspect { seq, .. }
            | HealthEvent::Probe { seq, .. }
            | HealthEvent::Recovered { seq, .. }
            | HealthEvent::Condemned { seq, .. } => seq,
        }
    }
}

/// Stream id used for device-wide events in the log.
pub const DEVICE_WIDE: u64 = u64::MAX;

struct Latch {
    released: Mutex<bool>,
    cv: Condvar,
}

/// The per-backend health state machine. See the module docs for the
/// protocol; all methods are cheap and lock-free on the happy path (one
/// atomic load per fence).
pub struct HealthMonitor {
    state: AtomicU8,
    /// Set by an injected [`psdns_chaos::FaultKind::DeviceLost`]: the canary
    /// probe consults this, modelling a device that fell off the bus.
    lost_injected: AtomicBool,
    /// Fence-deadline policy; `None` (the default) keeps the historical
    /// block-forever fences.
    watchdog: Mutex<Option<AdaptiveWatchdog>>,
    /// Injected hang ops block on this until the device is condemned, so a
    /// wedged worker can always drain (drop/join safety).
    latch: Latch,
    events: Mutex<Vec<HealthEvent>>,
}

impl HealthMonitor {
    pub fn new() -> Self {
        Self {
            state: AtomicU8::new(HealthState::Healthy as u8),
            lost_injected: AtomicBool::new(false),
            watchdog: Mutex::new(None),
            latch: Latch {
                released: Mutex::new(false),
                cv: Condvar::new(),
            },
            events: Mutex::new(Vec::new()),
        }
    }

    pub fn state(&self) -> HealthState {
        match self.state.load(Ordering::SeqCst) {
            0 => HealthState::Healthy,
            1 => HealthState::Suspect,
            _ => HealthState::Lost,
        }
    }

    pub fn is_lost(&self) -> bool {
        self.state() == HealthState::Lost
    }

    /// Arm fence deadlines with the shared adaptive policy. Passing the same
    /// [`psdns_chaos::WatchdogPolicy`] used for the a2a watchdog keeps one
    /// watchdog-floor configuration across the whole stack.
    pub fn set_watchdog(&self, wd: AdaptiveWatchdog) {
        *self.watchdog.lock() = Some(wd);
    }

    /// The armed fence watchdog, if any.
    pub fn watchdog(&self) -> Option<AdaptiveWatchdog> {
        self.watchdog.lock().clone()
    }

    /// Mark an injected device loss (sticky). The transition to `Lost` is
    /// still driven through suspect→probe by the next synchronize, so the
    /// event log records the same sequence on every backend.
    pub fn inject_lost(&self) {
        self.lost_injected.store(true, Ordering::SeqCst);
    }

    pub fn lost_injected(&self) -> bool {
        self.lost_injected.load(Ordering::SeqCst)
    }

    /// `Healthy → Suspect` (no-op if already suspect/lost). Returns whether
    /// the transition happened.
    pub fn mark_suspect(&self, stream: u64, cause: HealthCause) -> bool {
        let moved = self
            .state
            .compare_exchange(
                HealthState::Healthy as u8,
                HealthState::Suspect as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok();
        if moved {
            self.push(|seq| HealthEvent::Suspect { seq, stream, cause });
        }
        moved
    }

    /// Record a canary verdict while suspect.
    pub fn record_probe(&self, ok: bool) {
        self.push(|seq| HealthEvent::Probe { seq, ok });
    }

    /// `Suspect → Healthy`: a later fence attempt succeeded.
    pub fn mark_recovered(&self, stream: u64) {
        let moved = self
            .state
            .compare_exchange(
                HealthState::Suspect as u8,
                HealthState::Healthy as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok();
        if moved {
            self.push(|seq| HealthEvent::Recovered { seq, stream });
        }
    }

    /// `→ Lost` (sticky) and open the release latch so wedged workers can
    /// drain. Returns whether this call performed the transition.
    pub fn condemn(&self, stream: u64, cause: HealthCause) -> bool {
        let prev = self.state.swap(HealthState::Lost as u8, Ordering::SeqCst);
        let moved = prev != HealthState::Lost as u8;
        if moved {
            self.push(|seq| HealthEvent::Condemned { seq, stream, cause });
        }
        self.release();
        moved
    }

    /// Open the release latch (also called on backend shutdown, so hung ops
    /// never outlive the device).
    pub fn release(&self) {
        *self.latch.released.lock() = true;
        self.latch.cv.notify_all();
    }

    /// Block until the latch opens — the body of an injected
    /// [`psdns_chaos::FaultKind::DeviceHang`] op: "forever", but releasable,
    /// so queue teardown can always complete.
    pub fn block_until_released(&self) {
        let mut g = self.latch.released.lock();
        while !*g {
            self.latch.cv.wait(&mut g);
        }
    }

    /// Like [`block_until_released`](Self::block_until_released) with a
    /// bound, for callers that must make progress even if nobody condemns
    /// the device. Returns `true` if the latch opened.
    pub fn block_until_released_for(&self, limit: Duration) -> bool {
        let mut g = self.latch.released.lock();
        if *g {
            return true;
        }
        self.latch.cv.wait_timeout(&mut g, limit);
        *g
    }

    /// Snapshot of the all-integer transition log, in order.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.events.lock().clone()
    }

    fn push(&self, make: impl FnOnce(u64) -> HealthEvent) {
        let mut log = self.events.lock();
        let seq = log.len() as u64;
        log.push(make(seq));
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_transitions_and_log() {
        let m = HealthMonitor::new();
        assert_eq!(m.state(), HealthState::Healthy);
        assert!(m.mark_suspect(3, HealthCause::FenceTimeout));
        assert!(!m.mark_suspect(3, HealthCause::FenceTimeout), "idempotent");
        m.record_probe(true);
        m.mark_recovered(3);
        assert_eq!(m.state(), HealthState::Healthy);
        assert!(m.mark_suspect(4, HealthCause::LostFault));
        m.record_probe(false);
        assert!(m.condemn(4, HealthCause::ProbeFailed));
        assert!(!m.condemn(4, HealthCause::ProbeFailed), "sticky");
        assert_eq!(m.state(), HealthState::Lost);
        let ev = m.events();
        assert_eq!(ev.len(), 6);
        assert_eq!(
            ev[0],
            HealthEvent::Suspect {
                seq: 0,
                stream: 3,
                cause: HealthCause::FenceTimeout
            }
        );
        assert_eq!(ev[5].seq(), 5);
    }

    #[test]
    fn latch_releases_blocked_waiter() {
        let m = std::sync::Arc::new(HealthMonitor::new());
        let m2 = std::sync::Arc::clone(&m);
        let h = std::thread::spawn(move || m2.block_until_released());
        std::thread::sleep(Duration::from_millis(20));
        m.condemn(DEVICE_WIDE, HealthCause::RetriesExhausted);
        assert!(h.join().is_ok());
        assert!(m.block_until_released_for(Duration::from_millis(1)));
    }
}
