//! Streams: FIFO work queues with a dedicated worker thread each.
//!
//! The enqueue calls all return immediately ("copy operations in the
//! transfer stream are performed asynchronously, i.e., the CPU can move
//! forward to other tasks", paper §3.4); ordering *within* a stream is
//! strictly FIFO, ordering *across* streams only via [`Event`]s.

use std::sync::atomic::Ordering;
use std::thread::JoinHandle;
use std::time::Instant;

use psdns_sync::channel::{unbounded, Sender};

use crate::device::Device;
use crate::error::DeviceError;
use crate::event::Event;
use crate::timeline::{Span, SpanKind};

/// Map a device-timeline span onto the shared tracer's typed kinds. Kernels
/// are split by name: pack/unpack and zero-copy gather/scatter launches move
/// data, everything else is FFT/pointwise compute.
fn bridge_kind(kind: SpanKind, name: &str) -> psdns_trace::SpanKind {
    match kind {
        SpanKind::CopyH2D => psdns_trace::SpanKind::H2d,
        SpanKind::CopyD2H => psdns_trace::SpanKind::D2h,
        SpanKind::Kernel => {
            if name.starts_with("pack")
                || name.starts_with("unpack")
                || name.starts_with("zero-copy")
            {
                psdns_trace::SpanKind::PackUnpack
            } else {
                psdns_trace::SpanKind::FftCompute
            }
        }
        SpanKind::Sync | SpanKind::Marker => psdns_trace::SpanKind::Other,
    }
}

pub(crate) enum Op {
    Task {
        name: String,
        kind: SpanKind,
        f: Box<dyn FnOnce() + Send>,
    },
    Fence(Sender<()>),
    Shutdown,
}

/// Handle to one stream. Dropping the handle drains the queue and joins the
/// worker (like `cudaStreamDestroy` after a synchronize).
pub struct Stream {
    device: Device,
    id: u64,
    name: String,
    tx: Sender<Op>,
    worker: Option<JoinHandle<()>>,
}

impl Stream {
    pub(crate) fn spawn(device: Device, id: u64, name: String) -> Self {
        let (tx, rx) = unbounded::<Op>();
        let dev = device.clone();
        let sname = name.clone();
        let worker = std::thread::Builder::new()
            .name(format!("stream-{sname}"))
            .spawn(move || {
                let epoch: Instant = dev.inner.epoch;
                while let Ok(op) = rx.recv() {
                    match op {
                        Op::Task { name, kind, f } => {
                            let tracer = dev.tracer();
                            let t0 = epoch.elapsed().as_secs_f64() * 1e6;
                            let trace_t0 = tracer.as_ref().map(|t| t.now_ns());
                            f();
                            let t1 = epoch.elapsed().as_secs_f64() * 1e6;
                            if let (Some(t), Some(start)) = (&tracer, trace_t0) {
                                t.record(
                                    bridge_kind(kind, &name),
                                    &sname,
                                    &name,
                                    start,
                                    t.now_ns(),
                                );
                            }
                            dev.inner.timeline.push(Span {
                                stream_id: id,
                                stream_name: sname.clone(),
                                name,
                                kind,
                                start_us: t0,
                                end_us: t1,
                            });
                        }
                        Op::Fence(ack) => {
                            let _ = ack.send(());
                        }
                        Op::Shutdown => break,
                    }
                }
            })
            .expect("spawn stream worker");
        Self {
            device,
            id,
            name,
            tx,
            worker: Some(worker),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mirror an executing op with its declared accesses into the attached
    /// schedule recorder, if any. Called by the copy engine right before
    /// enqueueing the transfer.
    pub(crate) fn record_exec(&self, name: &str, accesses: Vec<psdns_analyze::Access>) {
        if let Some(log) = self.device.recorder() {
            log.record(&self.name, name, psdns_analyze::OpKind::Exec, accesses);
        }
    }

    pub(crate) fn enqueue(&self, name: String, kind: SpanKind, f: Box<dyn FnOnce() + Send>) {
        self.tx
            .send(Op::Task { name, kind, f })
            .expect("stream worker alive");
    }

    /// Injected stream stall: wedge this stream's FIFO for a while by
    /// enqueueing a sleep. The host does not block (asynchronous semantics
    /// preserved); subsequent ops on this stream drain late.
    fn chaos_stall_gate(&self) {
        let Some(ch) = self.device().chaos() else {
            return;
        };
        let rank = self.device().trace_rank();
        if ch.check(
            rank,
            &format!("stall:{}", self.name),
            psdns_chaos::FaultKind::StreamStall,
        ) {
            let d = ch.stream_stall_duration();
            self.enqueue(
                "chaos-stall".to_string(),
                SpanKind::Marker,
                Box::new(move || std::thread::sleep(d)),
            );
        }
    }

    /// Transient copy-engine fault with bounded retry: returns `true` when
    /// the transfer may proceed. After exhausting the retry budget the
    /// transfer is abandoned and a sticky [`DeviceError::CopyFailed`] is
    /// recorded on the device (visible via [`Device::take_error`]) — the
    /// caller's next error check surfaces it as a typed failure.
    pub(crate) fn chaos_copy_gate(&self) -> bool {
        let Some(ch) = self.device().chaos() else {
            return true;
        };
        let rank = self.device().trace_rank();
        let site = format!("copy:{}", self.name);
        let policy = ch.retry();
        let salt = psdns_chaos::site_salt(&site);
        for attempt in 0..=policy.max_retries {
            if !ch.check(rank, &site, psdns_chaos::FaultKind::CopyFault) {
                return true;
            }
            if attempt < policy.max_retries {
                std::thread::sleep(policy.backoff_for(attempt, salt));
            }
        }
        self.device().set_error(DeviceError::CopyFailed {
            stream: self.name.clone(),
            attempts: policy.max_retries + 1,
        });
        false
    }

    /// Enqueue an arbitrary "kernel" — a closure executed on the stream
    /// worker in FIFO order. The solver submits FFT batches and pointwise
    /// physics kernels through this.
    ///
    /// A plain launch declares no buffer accesses, so the hazard analyzer
    /// cannot see what it touches; use [`launch_traced`](Self::launch_traced)
    /// on paths covered by schedule analysis.
    pub fn launch<F: FnOnce() + Send + 'static>(&self, name: &str, f: F) {
        self.launch_traced(name, Vec::new(), f);
    }

    /// [`launch`](Self::launch) with declared buffer accesses: when a
    /// schedule recorder is attached to the device, the kernel is logged as
    /// an executing op touching `accesses`, making it visible to the
    /// happens-before hazard analysis in `psdns-analyze`.
    pub fn launch_traced<F: FnOnce() + Send + 'static>(
        &self,
        name: &str,
        accesses: Vec<psdns_analyze::Access>,
        f: F,
    ) {
        self.chaos_stall_gate();
        self.device
            .inner
            .stats
            .kernel_launches
            .fetch_add(1, Ordering::Relaxed);
        self.device.trace_incr_kernel();
        if let Some(log) = self.device.recorder() {
            log.record(&self.name, name, psdns_analyze::OpKind::Exec, accesses);
        }
        self.enqueue(name.to_string(), SpanKind::Kernel, Box::new(f));
    }

    /// Record `event` at the current tail of this stream
    /// (`cudaEventRecord`).
    pub fn record(&self, event: &Event) {
        let ticket = event.new_ticket();
        if let Some(log) = self.device.recorder() {
            log.record(
                &self.name,
                "event-record",
                psdns_analyze::OpKind::EventRecord {
                    event: event.id(),
                    ticket,
                },
                Vec::new(),
            );
        }
        let evt = event.clone();
        self.enqueue(
            "event-record".to_string(),
            SpanKind::Marker,
            Box::new(move || evt.complete(ticket)),
        );
    }

    /// Make this stream wait for the most recent record of `event` as of
    /// this call (`cudaStreamWaitEvent`). The *host* does not block.
    pub fn wait_event(&self, event: &Event) {
        let ticket = event.current_ticket();
        if let Some(log) = self.device.recorder() {
            log.record(
                &self.name,
                "event-wait",
                psdns_analyze::OpKind::EventWait {
                    event: event.id(),
                    ticket,
                },
                Vec::new(),
            );
        }
        let evt = event.clone();
        self.enqueue(
            "event-wait".to_string(),
            SpanKind::Sync,
            Box::new(move || evt.wait_for(ticket)),
        );
    }

    /// Block the host until everything enqueued so far has executed
    /// (`cudaStreamSynchronize`).
    pub fn synchronize(&self) {
        if let Some(log) = self.device.recorder() {
            log.record(
                psdns_analyze::HOST_TRACK,
                "stream-synchronize",
                psdns_analyze::OpKind::HostJoinStream {
                    stream: self.name.clone(),
                },
                Vec::new(),
            );
        }
        let (ack_tx, ack_rx) = unbounded();
        self.tx
            .send(Op::Fence(ack_tx))
            .expect("stream worker alive");
        ack_rx.recv().expect("stream worker alive");
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        let _ = self.tx.send(Op::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_stream() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("fifo");
        let log = Arc::new(psdns_sync::Mutex::new(Vec::new()));
        for i in 0..50 {
            let l = Arc::clone(&log);
            s.launch("step", move || l.lock().push(i));
        }
        s.synchronize();
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn streams_run_concurrently() {
        // Two streams each sleep 50 ms; if they serialized, elapsed would be
        // ~100 ms. Allow generous margins for CI noise.
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let a = dev.create_stream("a");
        let b = dev.create_stream("b");
        let t0 = Instant::now();
        a.launch("sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(50))
        });
        b.launch("sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(50))
        });
        a.synchronize();
        b.synchronize();
        let elapsed = t0.elapsed();
        assert!(
            elapsed.as_millis() < 95,
            "streams appear serialized: {elapsed:?}"
        );
    }

    #[test]
    fn host_does_not_block_on_enqueue() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("bg");
        let t0 = Instant::now();
        s.launch("slow", || {
            std::thread::sleep(std::time::Duration::from_millis(80))
        });
        assert!(t0.elapsed().as_millis() < 40, "launch blocked the host");
        s.synchronize();
        assert!(t0.elapsed().as_millis() >= 80);
    }

    #[test]
    fn timeline_records_spans() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("traced");
        s.launch("work", || {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        s.synchronize();
        let spans = dev.timeline().snapshot();
        let work: Vec<_> = spans.iter().filter(|sp| sp.name == "work").collect();
        assert_eq!(work.len(), 1);
        assert!(work[0].duration_us() >= 4000.0);
        assert_eq!(work[0].stream_name, "traced");
    }

    #[test]
    fn kernel_launch_counter() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("count");
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..7 {
            let c = Arc::clone(&c);
            s.launch("inc", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        s.synchronize();
        assert_eq!(c.load(Ordering::Relaxed), 7);
        let (_, _, _, launches) = dev.stats().snapshot();
        assert_eq!(launches, 7);
    }
}
