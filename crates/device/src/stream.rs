//! Streams: FIFO work queues over a backend [`ExecQueue`].
//!
//! The enqueue calls all return immediately ("copy operations in the
//! transfer stream are performed asynchronously, i.e., the CPU can move
//! forward to other tasks", paper §3.4); ordering *within* a stream is
//! strictly FIFO, ordering *across* streams only via [`Event`]s.
//!
//! Everything schedule-shaped happens here, host-side, at enqueue time —
//! ordering-log records, chaos fault gates, stats and tracer byte counters —
//! so it is byte-identical on every backend; the backend only decides where
//! the closures run. A stream holds its device only weakly: async ops on a
//! stream that outlived its device silently no-op (CUDA-style), and
//! [`synchronize`](Stream::synchronize) reports a typed
//! [`DeviceError::BackendShutDown`] instead of panicking.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backend::{DeviceBackend, ExecQueue, FenceWait, QueueOp};
use crate::device::{Device, WeakDevice};
use crate::error::DeviceError;
use crate::event::Event;
use crate::health::{HealthCause, HealthState};
use crate::timeline::SpanKind;

/// Handle to one stream. Dropping the last handle to a simulated stream
/// drains its queue and joins the worker (like `cudaStreamDestroy` after a
/// synchronize).
pub struct Stream {
    device: WeakDevice,
    backend: Arc<dyn DeviceBackend>,
    queue: Arc<dyn ExecQueue>,
    id: u64,
    name: String,
    /// An injected [`psdns_chaos::FaultKind::DeviceHang`] wedged this
    /// stream: fences report timeouts until the health layer condemns the
    /// device.
    hang_armed: AtomicBool,
}

impl Stream {
    pub(crate) fn new(
        device: WeakDevice,
        backend: Arc<dyn DeviceBackend>,
        queue: Arc<dyn ExecQueue>,
        id: u64,
        name: String,
    ) -> Self {
        Self {
            device,
            backend,
            queue,
            id,
            name,
            hang_armed: AtomicBool::new(false),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning device, if it is still alive.
    pub fn device(&self) -> Option<Device> {
        self.device.upgrade()
    }

    /// Mirror an executing op with its declared accesses into the attached
    /// schedule recorder, if any. Called by the copy engine right before
    /// enqueueing the transfer.
    pub(crate) fn record_exec(&self, name: &str, accesses: Vec<psdns_analyze::Access>) {
        if let Some(log) = self.backend.recorder() {
            log.record(&self.name, name, psdns_analyze::OpKind::Exec, accesses);
        }
    }

    pub(crate) fn has_recorder(&self) -> bool {
        self.backend.recorder().is_some()
    }

    pub(crate) fn enqueue(&self, name: String, kind: SpanKind, f: Box<dyn FnOnce() + Send>) {
        // Async semantics: a dead backend swallows the op; the next
        // synchronize surfaces BackendShutDown.
        let _ = self.queue.submit(QueueOp {
            name,
            kind,
            exec: f,
        });
    }

    /// Injected stream stall: wedge this stream's FIFO for a while by
    /// enqueueing a sleep. The host does not block (asynchronous semantics
    /// preserved); subsequent ops on this stream drain late.
    fn chaos_stall_gate(&self) {
        let Some(dev) = self.device() else {
            return;
        };
        let Some(ch) = dev.chaos() else {
            return;
        };
        let rank = dev.trace_rank();
        if ch.check(
            rank,
            &format!("stall:{}", self.name),
            psdns_chaos::FaultKind::StreamStall,
        ) {
            let d = ch.stream_stall_duration();
            self.enqueue(
                "chaos-stall".to_string(),
                SpanKind::Marker,
                Box::new(move || std::thread::sleep(d)),
            );
        }
    }

    /// Injected device-level faults, evaluated at enqueue time like every
    /// other gate so the fault schedule is backend-identical.
    ///
    /// * [`psdns_chaos::FaultKind::DeviceHang`] (site `hang:{stream}`) arms
    ///   [`Self::hang_armed`]; on a concurrent backend it also enqueues an op
    ///   blocking on the health release latch, so the queue is *genuinely*
    ///   wedged until condemnation drains it. Eager backends run ops on the
    ///   submitting thread, where a blocking op would wedge the watchdog
    ///   itself — there the armed flag alone drives the (identical)
    ///   detection sequence.
    /// * [`psdns_chaos::FaultKind::DeviceLost`] (site `lost:{stream}`) marks
    ///   the backend lost-injected: the next synchronize goes suspect, the
    ///   canary probe fails, and the device is condemned.
    fn chaos_health_gate(&self) {
        let Some(dev) = self.device() else {
            return;
        };
        let Some(ch) = dev.chaos() else {
            return;
        };
        let rank = dev.trace_rank();
        let health = self.backend.health();
        if ch.check(
            rank,
            &format!("hang:{}", self.name),
            psdns_chaos::FaultKind::DeviceHang,
        ) && !health.is_lost()
        {
            self.hang_armed.store(true, Ordering::SeqCst);
            if self.backend.concurrent() {
                let b = Arc::clone(&self.backend);
                self.enqueue(
                    "chaos-hang".to_string(),
                    SpanKind::Marker,
                    Box::new(move || b.health().block_until_released()),
                );
            }
        }
        if ch.check(
            rank,
            &format!("lost:{}", self.name),
            psdns_chaos::FaultKind::DeviceLost,
        ) {
            health.inject_lost();
        }
    }

    /// Transient copy-engine fault with bounded retry: returns `true` when
    /// the transfer may proceed. After exhausting the retry budget the
    /// transfer is abandoned and a sticky [`DeviceError::CopyFailed`] is
    /// recorded on the device (visible via [`Device::take_error`]) — the
    /// caller's next error check surfaces it as a typed failure.
    pub(crate) fn chaos_copy_gate(&self) -> bool {
        self.chaos_health_gate();
        let Some(dev) = self.device() else {
            return true;
        };
        let Some(ch) = dev.chaos() else {
            return true;
        };
        let rank = dev.trace_rank();
        let site = format!("copy:{}", self.name);
        let policy = ch.retry();
        let salt = psdns_chaos::site_salt(&site);
        for attempt in 0..=policy.max_retries {
            if !ch.check(rank, &site, psdns_chaos::FaultKind::CopyFault) {
                return true;
            }
            if attempt < policy.max_retries {
                std::thread::sleep(policy.backoff_for(attempt, salt));
            }
        }
        dev.set_error(DeviceError::CopyFailed {
            stream: self.name.clone(),
            attempts: policy.max_retries + 1,
        });
        false
    }

    /// Enqueue an arbitrary "kernel" — a closure executed by the backend in
    /// FIFO order. The solver submits FFT batches and pointwise physics
    /// kernels through this.
    ///
    /// A plain launch declares no buffer accesses, so the hazard analyzer
    /// cannot see what it touches; use [`launch_traced`](Self::launch_traced)
    /// on paths covered by schedule analysis.
    pub fn launch<F: FnOnce() + Send + 'static>(&self, name: &str, f: F) {
        self.launch_traced(name, Vec::new(), f);
    }

    /// [`launch`](Self::launch) with declared buffer accesses: when a
    /// schedule recorder is attached to the device, the kernel is logged as
    /// an executing op touching `accesses`, making it visible to the
    /// happens-before hazard analysis in `psdns-analyze`.
    pub fn launch_traced<F: FnOnce() + Send + 'static>(
        &self,
        name: &str,
        accesses: Vec<psdns_analyze::Access>,
        f: F,
    ) {
        self.chaos_stall_gate();
        self.chaos_health_gate();
        if let Some(dev) = self.device() {
            dev.stats().kernel_launches.fetch_add(1, Ordering::Relaxed);
            dev.trace_incr_kernel();
        }
        self.record_exec(name, accesses);
        self.enqueue(name.to_string(), SpanKind::Kernel, Box::new(f));
    }

    /// Record `event` at the current tail of this stream
    /// (`cudaEventRecord`).
    pub fn record(&self, event: &Event) {
        let ticket = event.new_ticket();
        if let Some(log) = self.backend.recorder() {
            log.record(
                &self.name,
                "event-record",
                psdns_analyze::OpKind::EventRecord {
                    event: event.id(),
                    ticket,
                },
                Vec::new(),
            );
        }
        let evt = event.clone();
        self.enqueue(
            "event-record".to_string(),
            SpanKind::Marker,
            Box::new(move || evt.complete(ticket)),
        );
    }

    /// Make this stream wait for the most recent record of `event` as of
    /// this call (`cudaStreamWaitEvent`). The *host* does not block.
    pub fn wait_event(&self, event: &Event) {
        let ticket = event.current_ticket();
        if let Some(log) = self.backend.recorder() {
            log.record(
                &self.name,
                "event-wait",
                psdns_analyze::OpKind::EventWait {
                    event: event.id(),
                    ticket,
                },
                Vec::new(),
            );
        }
        let evt = event.clone();
        self.enqueue(
            "event-wait".to_string(),
            SpanKind::Sync,
            Box::new(move || evt.wait_for(ticket)),
        );
    }

    /// Block the host until everything enqueued so far has executed
    /// (`cudaStreamSynchronize`). Fails with
    /// [`DeviceError::BackendShutDown`] when this stream outlived its
    /// device — the typed replacement for the old worker-channel panic.
    ///
    /// When a fence watchdog is armed on the device (see
    /// [`Device::enable_fence_watchdog`](crate::Device::enable_fence_watchdog))
    /// the fence is bounded by the adaptive deadline and a miss drives the
    /// `Healthy → Suspect → Lost` protocol: the device is probed by a canary
    /// op, retried under the shared [`psdns_chaos::RetryPolicy`], and — only
    /// if it stays wedged — condemned with a typed
    /// [`DeviceError::QueueHung`] / [`DeviceError::DeviceLost`] instead of
    /// blocking forever.
    pub fn synchronize(&self) -> Result<(), DeviceError> {
        if let Some(log) = self.backend.recorder() {
            log.record(
                psdns_analyze::HOST_TRACK,
                "stream-synchronize",
                psdns_analyze::OpKind::HostJoinStream {
                    stream: self.name.clone(),
                },
                Vec::new(),
            );
        }
        self.guarded_fence()
    }

    fn hang_armed(&self) -> bool {
        self.hang_armed.load(Ordering::SeqCst)
    }

    fn device_lost_error(&self) -> DeviceError {
        let device = self
            .device()
            .map(|d| d.config().name.clone())
            .unwrap_or_else(|| self.backend.config().name.clone());
        DeviceError::DeviceLost { device }
    }

    /// One bounded fence attempt. Armed fault flags short-circuit to a
    /// timeout verdict (identically on every backend — an eager backend has
    /// no queue that could really wedge), so the detection sequence, and
    /// with it the health event log, is backend-invariant.
    fn fence_once(&self, deadline: Option<Duration>) -> Result<FenceWait, DeviceError> {
        if self.backend.health().lost_injected() || self.hang_armed() {
            return Ok(FenceWait::TimedOut);
        }
        match deadline {
            Some(d) => self.queue.fence_deadline(d),
            None => self.queue.fence().map(|_| FenceWait::Complete),
        }
    }

    /// Canary probe: does the *device* still respond, independently of this
    /// (possibly wedged) queue? Runs one trivial op on a fresh queue,
    /// bypassing the stream-layer chaos gates so the probe draws no new
    /// faults.
    fn probe_device(&self, deadline: Option<Duration>) -> bool {
        if self.backend.health().lost_injected() {
            return false;
        }
        match self.device() {
            Some(dev) => dev.probe(deadline),
            // Device handle gone: nothing left to salvage.
            None => false,
        }
    }

    /// The health-aware fence (see [`synchronize`](Self::synchronize)).
    fn guarded_fence(&self) -> Result<(), DeviceError> {
        let health = self.backend.health();
        if health.is_lost() {
            return Err(self.device_lost_error());
        }
        let wd = health.watchdog();
        // Cross-rank ordering log: a fence is a local wait whose deadline
        // bit is "is a watchdog armed" — the unbounded form is what
        // `analyze_global` lints.
        let grec = self.device().and_then(|d| d.global_recorder());
        let fence_site = format!("fence:{}", self.name);
        if let Some(rec) = &grec {
            rec.wait_local(&fence_site, wd.is_some());
        }
        // Fast path: no watchdog and no armed fault — the historical
        // unbounded fence, byte-for-byte.
        if wd.is_none() && !health.lost_injected() && !self.hang_armed() {
            let out = self.queue.fence();
            if let (Some(rec), Ok(())) = (&grec, &out) {
                rec.done_local(&fence_site);
            }
            return out;
        }
        let deadline = wd.as_ref().map(|w| w.deadline());
        let policy = self
            .device()
            .and_then(|d| d.chaos())
            .map(|c| c.retry())
            .unwrap_or_default();
        let salt = psdns_chaos::site_salt(&format!("fence:{}", self.name));
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.fence_once(deadline)? {
                FenceWait::Complete => {
                    if health.state() == HealthState::Suspect {
                        health.mark_recovered(self.id);
                        self.trace_health("recovered");
                    }
                    if let Some(w) = &wd {
                        w.observe(t0.elapsed());
                    }
                    if let Some(rec) = &grec {
                        rec.done_local(&fence_site);
                    }
                    return Ok(());
                }
                FenceWait::TimedOut => {
                    let cause = if health.lost_injected() {
                        HealthCause::LostFault
                    } else {
                        HealthCause::FenceTimeout
                    };
                    if health.mark_suspect(self.id, cause) {
                        self.trace_health("suspect");
                    }
                    let ok = self.probe_device(deadline);
                    health.record_probe(ok);
                    if !ok {
                        health.condemn(self.id, HealthCause::ProbeFailed);
                        self.trace_health("condemned");
                        if let Some(rec) = &grec {
                            rec.note(&format!("{fence_site}: condemned (probe failed)"));
                        }
                        let err = self.device_lost_error();
                        if let Some(dev) = self.device() {
                            dev.set_error(err.clone());
                        }
                        return Err(err);
                    }
                    if attempt >= policy.max_retries {
                        // The device answers probes but this queue stayed
                        // wedged through the whole retry budget.
                        health.condemn(self.id, HealthCause::RetriesExhausted);
                        self.trace_health("condemned");
                        if let Some(rec) = &grec {
                            rec.note(&format!("{fence_site}: condemned (retries exhausted)"));
                        }
                        let err = DeviceError::QueueHung {
                            stream: self.name.clone(),
                            deadline: deadline.unwrap_or_default(),
                        };
                        if let Some(dev) = self.device() {
                            dev.set_error(err.clone());
                        }
                        return Err(err);
                    }
                    std::thread::sleep(policy.backoff_for(attempt, salt));
                    attempt += 1;
                }
            }
        }
    }

    /// Mirror the latest health transition into the attached tracer as a
    /// `Fault` span with logical timestamps (the event's sequence number),
    /// exactly like fired chaos faults — byte-identical across same-seed
    /// runs.
    fn trace_health(&self, what: &str) {
        let Some(dev) = self.device() else {
            return;
        };
        let Some(t) = dev.tracer() else {
            return;
        };
        let seq = self
            .backend
            .health()
            .events()
            .last()
            .map(|e| e.seq())
            .unwrap_or(0);
        let h = t.for_rank(dev.trace_rank());
        h.record(
            psdns_trace::SpanKind::Fault,
            &format!("health:{}", self.name),
            &format!("{what}#{seq}"),
            seq,
            seq + 1,
        );
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        // If a hang fault wedged this stream and nobody condemned the device
        // (e.g. the owner bailed before synchronizing), open the release
        // latch so the backend's worker can drain — otherwise joining it in
        // the queue's drop would deadlock. Teardown cancelling outstanding
        // work mirrors a driver destroying a wedged context.
        if self.hang_armed.load(Ordering::SeqCst) {
            self.backend.health().release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    #[test]
    fn fifo_order_within_stream() -> Result<(), DeviceError> {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("fifo");
        let log = Arc::new(psdns_sync::Mutex::new(Vec::new()));
        for i in 0..50 {
            let l = Arc::clone(&log);
            s.launch("step", move || l.lock().push(i));
        }
        s.synchronize()?;
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
        Ok(())
    }

    #[test]
    fn streams_run_concurrently() -> Result<(), DeviceError> {
        // Two streams each sleep 50 ms; if they serialized, elapsed would be
        // ~100 ms. Allow generous margins for CI noise.
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let a = dev.create_stream("a");
        let b = dev.create_stream("b");
        let t0 = Instant::now();
        a.launch("sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(50))
        });
        b.launch("sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(50))
        });
        a.synchronize()?;
        b.synchronize()?;
        let elapsed = t0.elapsed();
        assert!(
            elapsed.as_millis() < 95,
            "streams appear serialized: {elapsed:?}"
        );
        Ok(())
    }

    #[test]
    fn host_does_not_block_on_enqueue() -> Result<(), DeviceError> {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("bg");
        let t0 = Instant::now();
        s.launch("slow", || {
            std::thread::sleep(std::time::Duration::from_millis(80))
        });
        assert!(t0.elapsed().as_millis() < 40, "launch blocked the host");
        s.synchronize()?;
        assert!(t0.elapsed().as_millis() >= 80);
        Ok(())
    }

    #[test]
    fn timeline_records_spans() -> Result<(), DeviceError> {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("traced");
        s.launch("work", || {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        s.synchronize()?;
        let spans = dev.timeline().snapshot();
        let work: Vec<_> = spans.iter().filter(|sp| sp.name == "work").collect();
        assert_eq!(work.len(), 1);
        assert!(work[0].duration_us() >= 4000.0);
        assert_eq!(work[0].stream_name, "traced");
        Ok(())
    }

    #[test]
    fn kernel_launch_counter() -> Result<(), DeviceError> {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("count");
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..7 {
            let c = Arc::clone(&c);
            s.launch("inc", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        s.synchronize()?;
        assert_eq!(c.load(Ordering::Relaxed), 7);
        let (_, _, _, launches) = dev.stats().snapshot();
        assert_eq!(launches, 7);
        Ok(())
    }

    #[test]
    fn stream_outliving_device_reports_shutdown() -> Result<(), DeviceError> {
        // The drop-order footgun: previously this panicked in the worker
        // channel; now async ops no-op and synchronize is a typed error.
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("orphan");
        s.launch("before-drop", || {});
        s.synchronize()?;
        drop(dev);
        s.launch("after-drop", || {}); // must not panic
        let evt = Event::new();
        s.record(&evt);
        s.wait_event(&evt);
        match s.synchronize() {
            Err(DeviceError::BackendShutDown { stream }) => assert_eq!(stream, "orphan"),
            other => panic!("expected BackendShutDown, got {other:?}"),
        }
        Ok(())
    }

    #[cfg(feature = "host-backend")]
    #[test]
    fn host_backend_stream_outliving_device_reports_shutdown() -> Result<(), DeviceError> {
        let dev = Device::host(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("orphan-host");
        s.synchronize()?;
        drop(dev);
        s.launch("after-drop", || {});
        assert!(matches!(
            s.synchronize(),
            Err(DeviceError::BackendShutDown { .. })
        ));
        Ok(())
    }
}
