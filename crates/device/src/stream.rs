//! Streams: FIFO work queues over a backend [`ExecQueue`].
//!
//! The enqueue calls all return immediately ("copy operations in the
//! transfer stream are performed asynchronously, i.e., the CPU can move
//! forward to other tasks", paper §3.4); ordering *within* a stream is
//! strictly FIFO, ordering *across* streams only via [`Event`]s.
//!
//! Everything schedule-shaped happens here, host-side, at enqueue time —
//! ordering-log records, chaos fault gates, stats and tracer byte counters —
//! so it is byte-identical on every backend; the backend only decides where
//! the closures run. A stream holds its device only weakly: async ops on a
//! stream that outlived its device silently no-op (CUDA-style), and
//! [`synchronize`](Stream::synchronize) reports a typed
//! [`DeviceError::BackendShutDown`] instead of panicking.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::backend::{DeviceBackend, ExecQueue, QueueOp};
use crate::device::{Device, WeakDevice};
use crate::error::DeviceError;
use crate::event::Event;
use crate::timeline::SpanKind;

/// Handle to one stream. Dropping the last handle to a simulated stream
/// drains its queue and joins the worker (like `cudaStreamDestroy` after a
/// synchronize).
pub struct Stream {
    device: WeakDevice,
    backend: Arc<dyn DeviceBackend>,
    queue: Arc<dyn ExecQueue>,
    id: u64,
    name: String,
}

impl Stream {
    pub(crate) fn new(
        device: WeakDevice,
        backend: Arc<dyn DeviceBackend>,
        queue: Arc<dyn ExecQueue>,
        id: u64,
        name: String,
    ) -> Self {
        Self {
            device,
            backend,
            queue,
            id,
            name,
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning device, if it is still alive.
    pub fn device(&self) -> Option<Device> {
        self.device.upgrade()
    }

    /// Mirror an executing op with its declared accesses into the attached
    /// schedule recorder, if any. Called by the copy engine right before
    /// enqueueing the transfer.
    pub(crate) fn record_exec(&self, name: &str, accesses: Vec<psdns_analyze::Access>) {
        if let Some(log) = self.backend.recorder() {
            log.record(&self.name, name, psdns_analyze::OpKind::Exec, accesses);
        }
    }

    pub(crate) fn has_recorder(&self) -> bool {
        self.backend.recorder().is_some()
    }

    pub(crate) fn enqueue(&self, name: String, kind: SpanKind, f: Box<dyn FnOnce() + Send>) {
        // Async semantics: a dead backend swallows the op; the next
        // synchronize surfaces BackendShutDown.
        let _ = self.queue.submit(QueueOp {
            name,
            kind,
            exec: f,
        });
    }

    /// Injected stream stall: wedge this stream's FIFO for a while by
    /// enqueueing a sleep. The host does not block (asynchronous semantics
    /// preserved); subsequent ops on this stream drain late.
    fn chaos_stall_gate(&self) {
        let Some(dev) = self.device() else {
            return;
        };
        let Some(ch) = dev.chaos() else {
            return;
        };
        let rank = dev.trace_rank();
        if ch.check(
            rank,
            &format!("stall:{}", self.name),
            psdns_chaos::FaultKind::StreamStall,
        ) {
            let d = ch.stream_stall_duration();
            self.enqueue(
                "chaos-stall".to_string(),
                SpanKind::Marker,
                Box::new(move || std::thread::sleep(d)),
            );
        }
    }

    /// Transient copy-engine fault with bounded retry: returns `true` when
    /// the transfer may proceed. After exhausting the retry budget the
    /// transfer is abandoned and a sticky [`DeviceError::CopyFailed`] is
    /// recorded on the device (visible via [`Device::take_error`]) — the
    /// caller's next error check surfaces it as a typed failure.
    pub(crate) fn chaos_copy_gate(&self) -> bool {
        let Some(dev) = self.device() else {
            return true;
        };
        let Some(ch) = dev.chaos() else {
            return true;
        };
        let rank = dev.trace_rank();
        let site = format!("copy:{}", self.name);
        let policy = ch.retry();
        let salt = psdns_chaos::site_salt(&site);
        for attempt in 0..=policy.max_retries {
            if !ch.check(rank, &site, psdns_chaos::FaultKind::CopyFault) {
                return true;
            }
            if attempt < policy.max_retries {
                std::thread::sleep(policy.backoff_for(attempt, salt));
            }
        }
        dev.set_error(DeviceError::CopyFailed {
            stream: self.name.clone(),
            attempts: policy.max_retries + 1,
        });
        false
    }

    /// Enqueue an arbitrary "kernel" — a closure executed by the backend in
    /// FIFO order. The solver submits FFT batches and pointwise physics
    /// kernels through this.
    ///
    /// A plain launch declares no buffer accesses, so the hazard analyzer
    /// cannot see what it touches; use [`launch_traced`](Self::launch_traced)
    /// on paths covered by schedule analysis.
    pub fn launch<F: FnOnce() + Send + 'static>(&self, name: &str, f: F) {
        self.launch_traced(name, Vec::new(), f);
    }

    /// [`launch`](Self::launch) with declared buffer accesses: when a
    /// schedule recorder is attached to the device, the kernel is logged as
    /// an executing op touching `accesses`, making it visible to the
    /// happens-before hazard analysis in `psdns-analyze`.
    pub fn launch_traced<F: FnOnce() + Send + 'static>(
        &self,
        name: &str,
        accesses: Vec<psdns_analyze::Access>,
        f: F,
    ) {
        self.chaos_stall_gate();
        if let Some(dev) = self.device() {
            dev.stats().kernel_launches.fetch_add(1, Ordering::Relaxed);
            dev.trace_incr_kernel();
        }
        self.record_exec(name, accesses);
        self.enqueue(name.to_string(), SpanKind::Kernel, Box::new(f));
    }

    /// Record `event` at the current tail of this stream
    /// (`cudaEventRecord`).
    pub fn record(&self, event: &Event) {
        let ticket = event.new_ticket();
        if let Some(log) = self.backend.recorder() {
            log.record(
                &self.name,
                "event-record",
                psdns_analyze::OpKind::EventRecord {
                    event: event.id(),
                    ticket,
                },
                Vec::new(),
            );
        }
        let evt = event.clone();
        self.enqueue(
            "event-record".to_string(),
            SpanKind::Marker,
            Box::new(move || evt.complete(ticket)),
        );
    }

    /// Make this stream wait for the most recent record of `event` as of
    /// this call (`cudaStreamWaitEvent`). The *host* does not block.
    pub fn wait_event(&self, event: &Event) {
        let ticket = event.current_ticket();
        if let Some(log) = self.backend.recorder() {
            log.record(
                &self.name,
                "event-wait",
                psdns_analyze::OpKind::EventWait {
                    event: event.id(),
                    ticket,
                },
                Vec::new(),
            );
        }
        let evt = event.clone();
        self.enqueue(
            "event-wait".to_string(),
            SpanKind::Sync,
            Box::new(move || evt.wait_for(ticket)),
        );
    }

    /// Block the host until everything enqueued so far has executed
    /// (`cudaStreamSynchronize`). Fails with
    /// [`DeviceError::BackendShutDown`] when this stream outlived its
    /// device — the typed replacement for the old worker-channel panic.
    pub fn synchronize(&self) -> Result<(), DeviceError> {
        if let Some(log) = self.backend.recorder() {
            log.record(
                psdns_analyze::HOST_TRACK,
                "stream-synchronize",
                psdns_analyze::OpKind::HostJoinStream {
                    stream: self.name.clone(),
                },
                Vec::new(),
            );
        }
        self.queue.fence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    #[test]
    fn fifo_order_within_stream() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("fifo");
        let log = Arc::new(psdns_sync::Mutex::new(Vec::new()));
        for i in 0..50 {
            let l = Arc::clone(&log);
            s.launch("step", move || l.lock().push(i));
        }
        s.synchronize().unwrap();
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn streams_run_concurrently() {
        // Two streams each sleep 50 ms; if they serialized, elapsed would be
        // ~100 ms. Allow generous margins for CI noise.
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let a = dev.create_stream("a");
        let b = dev.create_stream("b");
        let t0 = Instant::now();
        a.launch("sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(50))
        });
        b.launch("sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(50))
        });
        a.synchronize().unwrap();
        b.synchronize().unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed.as_millis() < 95,
            "streams appear serialized: {elapsed:?}"
        );
    }

    #[test]
    fn host_does_not_block_on_enqueue() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("bg");
        let t0 = Instant::now();
        s.launch("slow", || {
            std::thread::sleep(std::time::Duration::from_millis(80))
        });
        assert!(t0.elapsed().as_millis() < 40, "launch blocked the host");
        s.synchronize().unwrap();
        assert!(t0.elapsed().as_millis() >= 80);
    }

    #[test]
    fn timeline_records_spans() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("traced");
        s.launch("work", || {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        s.synchronize().unwrap();
        let spans = dev.timeline().snapshot();
        let work: Vec<_> = spans.iter().filter(|sp| sp.name == "work").collect();
        assert_eq!(work.len(), 1);
        assert!(work[0].duration_us() >= 4000.0);
        assert_eq!(work[0].stream_name, "traced");
    }

    #[test]
    fn kernel_launch_counter() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("count");
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..7 {
            let c = Arc::clone(&c);
            s.launch("inc", move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        s.synchronize().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 7);
        let (_, _, _, launches) = dev.stats().snapshot();
        assert_eq!(launches, 7);
    }

    #[test]
    fn stream_outliving_device_reports_shutdown() {
        // The drop-order footgun: previously this panicked in the worker
        // channel; now async ops no-op and synchronize is a typed error.
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("orphan");
        s.launch("before-drop", || {});
        s.synchronize().unwrap();
        drop(dev);
        s.launch("after-drop", || {}); // must not panic
        let evt = Event::new();
        s.record(&evt);
        s.wait_event(&evt);
        match s.synchronize() {
            Err(DeviceError::BackendShutDown { stream }) => assert_eq!(stream, "orphan"),
            other => panic!("expected BackendShutDown, got {other:?}"),
        }
    }

    #[cfg(feature = "host-backend")]
    #[test]
    fn host_backend_stream_outliving_device_reports_shutdown() {
        let dev = Device::host(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("orphan-host");
        s.synchronize().unwrap();
        drop(dev);
        s.launch("after-drop", || {});
        assert!(matches!(
            s.synchronize(),
            Err(DeviceError::BackendShutDown { .. })
        ));
    }
}
