//! CUDA-style events: the cross-stream synchronization primitive the paper's
//! asynchronous algorithm is built on ("CUDA Events are used to enforce
//! synchronization between operations in different streams", §3.4).
//!
//! Semantics follow CUDA:
//! * `Stream::record(&event)` marks completion of all work enqueued on that
//!   stream so far;
//! * `Stream::wait_event(&event)` makes the *stream* (not the host) wait for
//!   the most recent record as of the call;
//! * waiting on an event that was never recorded is a no-op;
//! * events may be re-recorded and re-waited any number of times.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psdns_sync::{Condvar, Mutex};

/// Process-wide event id source for ordering-log records.
static NEXT_EVENT_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct EventInner {
    /// Process-wide id (clones share it), used by the schedule recorder.
    id: u64,
    /// Number of record() calls issued (host side).
    recorded: AtomicU64,
    /// Highest record ticket whose stream position has been reached.
    completed: Mutex<u64>,
    cv: Condvar,
}

/// A reusable synchronization event. Clones share state.
#[derive(Clone)]
pub struct Event {
    pub(crate) inner: Arc<EventInner>,
}

impl Event {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(EventInner {
                id: NEXT_EVENT_ID.fetch_add(1, Ordering::Relaxed),
                recorded: AtomicU64::new(0),
                completed: Mutex::new(0),
                cv: Condvar::new(),
            }),
        }
    }

    /// Process-wide id of this event (clones share it), used by the
    /// schedule recorder to name `record`/`wait_event` edges.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Allocate the ticket for a new record() call.
    pub(crate) fn new_ticket(&self) -> u64 {
        self.inner.recorded.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Ticket of the most recent record as of now (0 = never recorded).
    /// Public so host-side joins (`Event::synchronize` before reading
    /// staging buffers) can be mirrored into an ordering log.
    pub fn current_ticket(&self) -> u64 {
        self.inner.recorded.load(Ordering::SeqCst)
    }

    /// Mark `ticket` reached (runs on the recording stream's worker).
    pub(crate) fn complete(&self, ticket: u64) {
        let mut done = self.inner.completed.lock();
        if ticket > *done {
            *done = ticket;
        }
        self.inner.cv.notify_all();
    }

    /// Block until `ticket` has completed (runs on a waiting stream's worker
    /// or on the host for `synchronize`).
    pub(crate) fn wait_for(&self, ticket: u64) {
        if ticket == 0 {
            return; // never recorded: CUDA treats this as already complete
        }
        let mut done = self.inner.completed.lock();
        while *done < ticket {
            self.inner.cv.wait(&mut done);
        }
    }

    /// Host-side blocking wait for the most recent record
    /// (`cudaEventSynchronize`).
    pub fn synchronize(&self) {
        self.wait_for(self.current_ticket());
    }

    /// Deadline-bounded [`synchronize`](Self::synchronize): waits at most
    /// `limit` for the most recent record to complete. Returns `true` when
    /// it completed, `false` on timeout — the host-join analogue of
    /// [`crate::ExecQueue::fence_deadline`], used by watchdog-armed
    /// pipelines so a staging-event join on a hung stream cannot block the
    /// host forever.
    pub fn synchronize_deadline(&self, limit: std::time::Duration) -> bool {
        let ticket = self.current_ticket();
        if ticket == 0 {
            return true;
        }
        let deadline = std::time::Instant::now() + limit;
        let mut done = self.inner.completed.lock();
        while *done < ticket {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.cv.wait_timeout(&mut done, deadline - now);
        }
        true
    }

    /// Non-blocking completion check (`cudaEventQuery`).
    pub fn query(&self) -> bool {
        let ticket = self.current_ticket();
        ticket == 0 || *self.inner.completed.lock() >= ticket
    }
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn unrecorded_event_is_complete() {
        let e = Event::new();
        assert!(e.query());
        e.synchronize(); // must not hang
    }

    #[test]
    fn cross_stream_ordering() -> Result<(), crate::DeviceError> {
        // Stream B must not run its kernel until stream A records the event,
        // even though A's kernel is slow.
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let a = dev.create_stream("a");
        let b = dev.create_stream("b");
        let evt = Event::new();
        let counter = Arc::new(AtomicUsize::new(0));

        let c1 = Arc::clone(&counter);
        a.launch("slow-producer", move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            c1.store(1, Ordering::SeqCst);
        });
        a.record(&evt);

        b.wait_event(&evt);
        let c2 = Arc::clone(&counter);
        let observed = Arc::new(AtomicUsize::new(99));
        let obs = Arc::clone(&observed);
        b.launch("consumer", move || {
            obs.store(c2.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        b.synchronize()?;
        assert_eq!(observed.load(Ordering::SeqCst), 1);
        a.synchronize()
    }

    #[test]
    fn re_record_is_supported() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("s");
        let evt = Event::new();
        for _ in 0..5 {
            s.launch("nop", || {});
            s.record(&evt);
            evt.synchronize();
            assert!(evt.query());
        }
    }

    #[test]
    fn wait_captures_record_at_call_time() -> Result<(), crate::DeviceError> {
        // A wait posted before any record is a no-op even if a record
        // happens later (CUDA captures the event state at the wait call).
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let s = dev.create_stream("s");
        let evt = Event::new();
        s.wait_event(&evt); // no record yet: must not block the stream
        s.launch("nop", || {});
        s.synchronize()
    }
}
