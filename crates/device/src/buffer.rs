//! Device and pinned-host memory buffers.
//!
//! Both buffer types are handles (`Arc`) to shared storage, mirroring how
//! CUDA device pointers and pinned host pointers are plain addresses shared
//! between the host and any stream. Rust safety is preserved by an `RwLock`
//! around the storage; stream workers take the lock only for the duration of
//! one operation, so the FIFO ordering of a stream serializes access the way
//! the CUDA programming model does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psdns_sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::backend::DeviceBackend;

/// Runtime-wide buffer id source, shared by device and pinned allocations so
/// ordering-log records can name any buffer unambiguously (the analyzer
/// additionally tags each access with its memory space).
static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_buffer_id() -> u64 {
    NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed)
}

struct DeviceStorage<T> {
    /// Held on the backend, not the `Device` handle: a buffer must be able
    /// to return its capacity to the ledger even after every device handle
    /// is gone.
    backend: Arc<dyn DeviceBackend>,
    id: u64,
    data: RwLock<Vec<T>>,
    bytes: usize,
}

impl<T> Drop for DeviceStorage<T> {
    fn drop(&mut self) {
        self.backend.free(self.id, self.bytes);
    }
}

/// A device-memory allocation. Clones alias the same memory (like copies of
/// a device pointer); the capacity is returned when the last clone drops.
pub struct DeviceBuffer<T> {
    storage: Arc<DeviceStorage<T>>,
}

impl<T> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            storage: Arc::clone(&self.storage),
        }
    }
}

impl<T> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeviceBuffer({} B)", self.storage.bytes)
    }
}

impl<T: Copy + Send + Sync + Default + 'static> DeviceBuffer<T> {
    /// `id` is pre-allocated by [`crate::Device::alloc`] so the ledger entry
    /// and the recorder's buffer id always agree.
    pub(crate) fn new(backend: Arc<dyn DeviceBackend>, id: u64, len: usize) -> Self {
        let bytes = len * std::mem::size_of::<T>();
        Self {
            storage: Arc::new(DeviceStorage {
                backend,
                id,
                data: RwLock::new(vec![T::default(); len]),
                bytes,
            }),
        }
    }

    /// Runtime-wide id of this allocation (clones share it), used by the
    /// schedule recorder to attribute accesses.
    pub fn id(&self) -> u64 {
        self.storage.id
    }

    pub fn len(&self) -> usize {
        self.storage.data.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn size_bytes(&self) -> usize {
        self.storage.bytes
    }

    /// Lock for reading (used inside kernels and copy ops).
    pub fn lock(&self) -> RwLockReadGuard<'_, Vec<T>> {
        self.storage.data.read()
    }

    /// Lock for writing (used inside kernels and copy ops).
    pub fn lock_mut(&self) -> RwLockWriteGuard<'_, Vec<T>> {
        self.storage.data.write()
    }

    /// Synchronous debug read of the whole buffer (bypasses streams, like
    /// `cudaMemcpy` on the null stream after a device sync).
    pub fn snapshot(&self) -> Vec<T> {
        self.storage.data.read().clone()
    }
}

struct PinnedStorage<T> {
    id: u64,
    data: RwLock<Vec<T>>,
}

/// Page-locked ("pinned") host memory, accessible both from host code and —
/// through zero-copy kernels — from the device (paper §4.2:
/// `cudaHostGetDevicePointer`). All async copies in this crate require
/// pinned buffers on the host side, matching CUDA's requirement for true
/// asynchronous transfers.
pub struct PinnedBuffer<T> {
    storage: Arc<PinnedStorage<T>>,
}

impl<T> Clone for PinnedBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            storage: Arc::clone(&self.storage),
        }
    }
}

impl<T: Copy + Send + Sync + Default + 'static> PinnedBuffer<T> {
    pub fn new(len: usize) -> Self {
        Self::from_vec(vec![T::default(); len])
    }

    pub fn from_vec(v: Vec<T>) -> Self {
        Self {
            storage: Arc::new(PinnedStorage {
                id: next_buffer_id(),
                data: RwLock::new(v),
            }),
        }
    }

    /// Runtime-wide id of this allocation (clones share it), used by the
    /// schedule recorder to attribute accesses.
    pub fn id(&self) -> u64 {
        self.storage.id
    }

    pub fn len(&self) -> usize {
        self.storage.data.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn lock(&self) -> RwLockReadGuard<'_, Vec<T>> {
        self.storage.data.read()
    }

    pub fn lock_mut(&self) -> RwLockWriteGuard<'_, Vec<T>> {
        self.storage.data.write()
    }

    /// Copy the current contents out (host-side, synchronous).
    pub fn snapshot(&self) -> Vec<T> {
        self.storage.data.read().clone()
    }

    /// Overwrite contents from a slice (host-side, synchronous).
    pub fn write_from(&self, src: &[T]) {
        let mut d = self.storage.data.write();
        assert_eq!(d.len(), src.len(), "pinned buffer size mismatch");
        d.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceConfig};

    #[test]
    fn pinned_host_access() {
        let p = PinnedBuffer::from_vec(vec![1u32, 2, 3]);
        assert_eq!(p.len(), 3);
        p.write_from(&[4, 5, 6]);
        assert_eq!(p.snapshot(), vec![4, 5, 6]);
        let alias = p.clone();
        alias.lock_mut()[0] = 9;
        assert_eq!(p.snapshot(), vec![9, 5, 6]);
    }

    #[test]
    fn device_buffer_zero_initialized() {
        let dev = Device::new(DeviceConfig::tiny(1 << 20));
        let b = dev.alloc::<f32>(100).unwrap();
        assert_eq!(b.len(), 100);
        assert!(b.snapshot().iter().all(|&x| x == 0.0));
        assert_eq!(b.size_bytes(), 400);
    }
}
