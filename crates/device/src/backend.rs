//! The [`DeviceBackend`] trait: one certified schedule, many executors.
//!
//! The paper's asynchronism wins come from a carefully ordered stream/event
//! schedule — not from any one accelerator — so the *schedule* is the
//! portable artifact. Everything schedule-shaped (host enqueue order, FIFO
//! streams, event tickets, ordering-log records, chaos fault gates, byte
//! accounting) lives in the shared [`Device`]/[`Stream`] layer above this
//! trait; a backend only supplies the *executor*: where and when the already
//! ordered closures actually run.
//!
//! Conformance contract (what `GpuSlabFft::analyze_schedule` certification
//! relies on — see DESIGN.md "Device backends"):
//!
//! 1. **FIFO per queue.** Ops submitted to one [`ExecQueue`] execute in
//!    submission order. Cross-queue ordering is the schedule's job (events),
//!    never the backend's.
//! 2. **`fence` is a completion barrier.** When [`ExecQueue::fence`] returns
//!    `Ok(())`, every previously submitted op has finished executing.
//! 3. **Run every closure exactly once** (or report [`DeviceError`] from
//!    `submit`). Ops are real work — FFT batches, copies, event tickets —
//!    dropping one corrupts the simulation, reordering one breaks the
//!    certified schedule.
//! 4. **Memory is a ledger.** `alloc`/`free` only account capacity; storage
//!    itself is host RAM in every current backend (the simulated device
//!    models HBM capacity, not address spaces).
//!
//! Because the ordering log is recorded at host *enqueue* time in the shared
//! layer, two backends driven by the same program produce structurally
//! identical logs — which is exactly why a schedule certified once (on the
//! cheap eager [`crate::HostBackend`], say) is valid for every conforming
//! executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::device::{DeviceConfig, WeakDevice};
use crate::error::DeviceError;
use crate::health::HealthMonitor;
use crate::timeline::{Span, SpanKind};

/// Which executor a [`crate::Device`] handle is backed by.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The discrete-event simulated accelerator: one worker thread per
    /// stream, real concurrency, real blocking events ([`crate::SimBackend`]).
    Simulated,
    /// Eager host-CPU execution on the submitting thread; kernels still fan
    /// out over the PR-5 `WorkerPool` ([`crate::HostBackend`]).
    Host,
    /// The feature-gated `wgpu`/Vulkan-style skeleton (queues and command
    /// buffers; `--features wgpu-backend`).
    Wgpu,
}

impl BackendKind {
    /// Short stable label used in traces and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Simulated => "sim",
            BackendKind::Host => "host",
            BackendKind::Wgpu => "wgpu",
        }
    }
}

/// One unit of work bound for a backend queue: a named closure plus the
/// timeline kind it should be attributed as. Built by the shared
/// [`crate::Stream`] layer — backends never construct these.
pub struct QueueOp {
    pub name: String,
    pub kind: SpanKind,
    pub exec: Box<dyn FnOnce() + Send>,
}

/// Outcome of a deadline-bounded fence wait ([`ExecQueue::fence_deadline`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FenceWait {
    /// Everything previously submitted has executed.
    Complete,
    /// The deadline expired with work still outstanding. Not an error by
    /// itself — the health layer decides whether the queue is slow or hung.
    TimedOut,
}

/// A backend's execution queue for one stream: FIFO submission plus a
/// host-blocking completion fence. The shared [`crate::Stream`] wrapper owns
/// everything else (recording, chaos gates, stats, health accounting).
pub trait ExecQueue: Send + Sync {
    /// Submit one op. Must preserve FIFO order relative to prior submits on
    /// this queue. Returns [`DeviceError::BackendShutDown`] once the backend
    /// has shut down (the op is dropped).
    fn submit(&self, op: QueueOp) -> Result<(), DeviceError>;

    /// Block the calling (host) thread until everything previously submitted
    /// has executed (`cudaStreamSynchronize`).
    fn fence(&self) -> Result<(), DeviceError>;

    /// [`fence`](Self::fence) bounded by `deadline`. Backends whose fences
    /// cannot outlast submission (eager execution) or that cannot interrupt
    /// a wait keep this default, which ignores the deadline; the simulated
    /// backend implements a real timed wait on its worker channel.
    fn fence_deadline(&self, deadline: std::time::Duration) -> Result<FenceWait, DeviceError> {
        let _ = deadline;
        self.fence().map(|_| FenceWait::Complete)
    }
}

/// Capacity ledger + recorder slot shared by all backends, so every executor
/// enforces the same HBM budget (the constraint that forces the paper's
/// pencil batching, §3.5) and exposes the same schedule-recording hook.
pub struct BackendCommon {
    config: DeviceConfig,
    allocated: AtomicUsize,
    recorder: psdns_sync::Mutex<Option<psdns_analyze::OrderingLog>>,
    /// `Healthy → Suspect → Lost` verdict shared by every stream and device
    /// clone of this backend (see the `health` module docs).
    health: HealthMonitor,
}

impl BackendCommon {
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            allocated: AtomicUsize::new(0),
            recorder: psdns_sync::Mutex::new(None),
            health: HealthMonitor::new(),
        }
    }

    /// The per-backend health state machine.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    pub fn allocated_bytes(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` against the capacity ledger. Optimistic `fetch_add`
    /// with rollback — allocations may race between host threads driving
    /// different streams.
    pub fn reserve(&self, bytes: usize) -> Result<(), DeviceError> {
        let prev = self.allocated.fetch_add(bytes, Ordering::SeqCst);
        if prev + bytes > self.config.memory_bytes {
            self.allocated.fetch_sub(bytes, Ordering::SeqCst);
            return Err(DeviceError::OutOfMemory {
                requested_bytes: bytes,
                free_bytes: self.config.memory_bytes - prev,
                capacity_bytes: self.config.memory_bytes,
            });
        }
        Ok(())
    }

    /// Return `bytes` to the ledger (buffer drop).
    pub fn release(&self, bytes: usize) {
        self.allocated.fetch_sub(bytes, Ordering::SeqCst);
    }
}

/// An executor for the certified stream/event schedule. See the module docs
/// for the conformance contract; the provided methods give every backend the
/// same capacity ledger and recorder slot via [`BackendCommon`].
pub trait DeviceBackend: Send + Sync {
    fn kind(&self) -> BackendKind;

    /// The shared ledger/recorder state (storage for the provided methods).
    fn common(&self) -> &BackendCommon;

    /// Create the execution queue for one stream. `device` is a weak handle:
    /// queue workers must not keep the device alive, and must tolerate it
    /// being gone (run the op, skip the timeline — see [`run_op`]).
    fn create_queue(
        &self,
        device: WeakDevice,
        stream_id: u64,
        stream_name: &str,
    ) -> Arc<dyn ExecQueue>;

    /// Irreversibly shut the backend down: subsequent `submit`/`fence` calls
    /// on its queues return [`DeviceError::BackendShutDown`]. Called from the
    /// device handle's final drop; must not block on queue workers (pending
    /// ops drain FIFO before the shutdown marker).
    fn shutdown(&self) {}

    /// Whether ops execute concurrently with the submitting thread (worker
    /// threads / real hardware) rather than eagerly on it. Decides how an
    /// injected [`psdns_chaos::FaultKind::DeviceHang`] manifests: concurrent
    /// backends get a genuinely wedged queue (an op blocked on the health
    /// release latch), eager ones a flag the next fence observes — blocking
    /// the submitting thread would wedge the watchdog itself.
    fn concurrent(&self) -> bool {
        false
    }

    // ---- provided: identical across backends --------------------------------

    /// The per-backend health state machine (shared storage on
    /// [`BackendCommon`]).
    fn health(&self) -> &HealthMonitor {
        self.common().health()
    }

    fn config(&self) -> &DeviceConfig {
        self.common().config()
    }

    fn allocated_bytes(&self) -> usize {
        self.common().allocated_bytes()
    }

    fn capacity_bytes(&self) -> usize {
        self.common().config().memory_bytes
    }

    /// Account a new allocation (`buffer` is the runtime-wide buffer id;
    /// current backends store data in host RAM and only track capacity).
    fn alloc(&self, _buffer: u64, bytes: usize) -> Result<(), DeviceError> {
        self.common().reserve(bytes)
    }

    /// Account an allocation's release.
    fn free(&self, _buffer: u64, bytes: usize) {
        self.common().release(bytes);
    }

    /// Attach a schedule recorder: every subsequently enqueued stream op,
    /// `record`/`wait_event` edge and copy access range is mirrored into
    /// `log`. Lives on the backend so certification survives `Device` handle
    /// churn and follows the trait object to any executor.
    fn attach_recorder(&self, log: &psdns_analyze::OrderingLog) {
        *self.common().recorder.lock() = Some(log.clone());
    }

    /// The attached schedule recorder, if any.
    fn recorder(&self) -> Option<psdns_analyze::OrderingLog> {
        self.common().recorder.lock().clone()
    }
}

/// Map a device-timeline span onto the shared tracer's typed kinds. Kernels
/// are split by name: pack/unpack and zero-copy gather/scatter launches move
/// data, everything else is FFT/pointwise compute.
fn bridge_kind(kind: SpanKind, name: &str) -> psdns_trace::SpanKind {
    match kind {
        SpanKind::CopyH2D => psdns_trace::SpanKind::H2d,
        SpanKind::CopyD2H => psdns_trace::SpanKind::D2h,
        SpanKind::Kernel => {
            if name.starts_with("pack")
                || name.starts_with("unpack")
                || name.starts_with("zero-copy")
            {
                psdns_trace::SpanKind::PackUnpack
            } else {
                psdns_trace::SpanKind::FftCompute
            }
        }
        SpanKind::Sync | SpanKind::Marker => psdns_trace::SpanKind::Other,
    }
}

/// Execute one op with the full observability harness every backend shares:
/// epoch-relative timing into the device [`crate::Timeline`], and mirroring
/// into the attached tracer. When the device handle is already gone the op
/// still runs (work must never be dropped) but is no longer observable.
///
/// Backends call this from wherever their execution happens — a dedicated
/// worker thread (simulated), the submitting thread (host), or a command
/// buffer replay (wgpu) — so timelines stay comparable across executors.
pub fn run_op(device: &WeakDevice, stream_id: u64, stream_name: &str, op: QueueOp) {
    let QueueOp { name, kind, exec } = op;
    let Some(dev) = device.upgrade() else {
        exec();
        return;
    };
    let epoch: Instant = dev.inner.epoch;
    let tracer = dev.tracer();
    let t0 = epoch.elapsed().as_secs_f64() * 1e6;
    let trace_t0 = tracer.as_ref().map(|t| t.now_ns());
    exec();
    let t1 = epoch.elapsed().as_secs_f64() * 1e6;
    if let (Some(t), Some(start)) = (&tracer, trace_t0) {
        t.record(
            bridge_kind(kind, &name),
            stream_name,
            &name,
            start,
            t.now_ns(),
        );
    }
    dev.inner.timeline.push(Span {
        stream_id,
        stream_name: stream_name.to_string(),
        name,
        kind,
        start_us: t0,
        end_us: t1,
    });
}
