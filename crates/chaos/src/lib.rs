//! psdns-chaos: seeded, deterministic fault injection for the DNS runtime.
//!
//! The paper's production campaigns run thousands of time steps on thousands
//! of nodes, where slow ranks, late all-to-all messages, and device-memory
//! pressure are routine. This crate makes those failure modes an *injectable,
//! reproducible* dimension of the reproduction: every fault decision is drawn
//! from a caller-supplied seed via a counter-based splitmix64 stream, so the
//! same seed produces the same failure schedule regardless of thread
//! interleaving, and every fired fault is recorded both in an in-memory log
//! and as a [`psdns_trace::SpanKind::Fault`] span with *logical* timestamps
//! (the per-site sequence number), making exported traces byte-identical
//! across same-seed runs.
//!
//! # Determinism contract
//!
//! Each injection site is identified by a string key that includes everything
//! that distinguishes it from concurrently running peers (rank, edge, stream
//! name). Each `(site, fault-kind)` pair owns a monotonic counter `k`; a
//! fault fires at occurrence `k` iff
//!
//! ```text
//! k ∈ [plan.from, plan.until)  &&  unit_f64(splitmix64(seed ^ h(site, kind) ^ k)) < plan.prob
//! ```
//!
//! Because every site is only ever advanced from one thread in program order
//! (sends from the sending rank, copies from the enqueueing host thread), the
//! schedule is a pure function of `(seed, per-site call sequence)` and is
//! immune to cross-thread races.
//!
//! Consumers: `psdns-comm` (message delay/reorder/duplicate/drop, rank
//! stall/crash at collective boundaries), `psdns-device` (transient copy
//! failure with bounded retry, injected allocation OOM, stream stall) and
//! `psdns-core` (checkpoint write failure / corruption / truncation).
//!
//! # Backend-generic device sites
//!
//! The device-layer gates (`alloc:r{rank}`, `copy:{stream}`,
//! `stall:{stream}`) live in the shared `Device`/`Stream` layer *above* the
//! `DeviceBackend` trait, at enqueue time on the host thread — not inside
//! any particular executor. The same seeded fault schedule therefore fires
//! identically whether a stream is backed by the simulated accelerator, the
//! eager host-CPU backend, or a future GPU backend; site strings are part
//! of the stable contract and do not vary by backend.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use psdns_sync::Mutex;
use psdns_trace::{SpanKind, Tracer};

/// splitmix64: tiny, high-quality 64-bit mixer (public-domain algorithm).
/// Same function the comm layer uses for deterministic field initialisation.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash an injection-site name into the deterministic decision/jitter
/// streams. Public so retry loops outside this crate can salt
/// [`RetryPolicy::backoff_for`] with their site key.
pub fn site_salt(site: &str) -> u64 {
    fnv1a(site.as_bytes())
}

/// FNV-1a over a byte string; used to hash site keys into the seed stream.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Map a u64 to [0, 1) with 53 bits of precision.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The taxonomy of injectable faults. Each kind maps to a failure mode of the
/// paper's production environment (see DESIGN.md §"Fault model & recovery").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Network congestion: a point-to-point message is delivered late.
    Delay,
    /// Adaptive routing: two messages on the same edge swap arrival order.
    Reorder,
    /// Retransmission artifact: a message arrives twice.
    Duplicate,
    /// Lossy fabric: a send attempt is lost (retried with backoff).
    Drop,
    /// A slow/overloaded rank stalls at a collective boundary.
    Stall,
    /// A rank dies mid-campaign (node failure / batch-allocation kill).
    Crash,
    /// Transient H2D/D2H copy-engine failure (retryable).
    CopyFault,
    /// Device memory pressure: an allocation that would fit fails anyway.
    AllocFault,
    /// A device stream wedges for a while before draining.
    StreamStall,
    /// A device queue hangs *indefinitely*: the wedged op never completes on
    /// its own and only drains once the health layer condemns the device.
    /// One-shot (`FaultPlan::at`) or intermittent (`with_prob`/`window`) over
    /// the per-stream enqueue counter.
    DeviceHang,
    /// The device falls off the bus (`cudaErrorDeviceLost`-style): enqueues
    /// become no-ops and every subsequent synchronize/probe fails. One-shot
    /// or intermittent like [`FaultKind::DeviceHang`].
    DeviceLost,
    /// Parallel-filesystem write failure while saving a checkpoint.
    WriteFault,
    /// Bit-rot / partial write: checkpoint bytes are corrupted on disk.
    CorruptCheckpoint,
    /// Interrupted write: checkpoint file is truncated.
    TruncateCheckpoint,
    /// Silent data corruption: one bit of a data payload flips in transit
    /// or in a staging buffer (collective payloads, device copies). The
    /// flipped bit is chosen deterministically via [`ChaosEngine::draw`].
    /// One-shot (`FaultPlan::at`) or intermittent, per-site counters like
    /// [`FaultKind::DeviceHang`].
    BitFlip,
    /// Silent compute corruption: a kernel writes one wrong output value
    /// (an SEU in an ALU / register file). Distinct from [`FaultKind::BitFlip`]
    /// so campaigns can arm transport and compute corruption independently.
    ComputeCorrupt,
}

impl FaultKind {
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Drop => "drop",
            FaultKind::Stall => "stall",
            FaultKind::Crash => "crash",
            FaultKind::CopyFault => "copy-fault",
            FaultKind::AllocFault => "alloc-fault",
            FaultKind::StreamStall => "stream-stall",
            FaultKind::DeviceHang => "device-hang",
            FaultKind::DeviceLost => "device-lost",
            FaultKind::WriteFault => "write-fault",
            FaultKind::CorruptCheckpoint => "corrupt-checkpoint",
            FaultKind::TruncateCheckpoint => "truncate-checkpoint",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::ComputeCorrupt => "compute-corrupt",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// When and how often one fault kind fires at a site.
///
/// `prob` is evaluated per occurrence; `[from, until)` is a window over the
/// per-`(site, kind)` occurrence counter, letting tests say "fail exactly the
/// third allocation" (`FaultPlan::at(2)`) or "drop 10% of sends after warmup"
/// (`FaultPlan::window(0.1, 100, u64::MAX)`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    pub prob: f64,
    pub from: u64,
    pub until: u64,
}

impl FaultPlan {
    pub const OFF: FaultPlan = FaultPlan {
        prob: 0.0,
        from: 0,
        until: 0,
    };

    /// Fire with probability `p` at every occurrence.
    pub fn with_prob(p: f64) -> Self {
        FaultPlan {
            prob: p,
            from: 0,
            until: u64::MAX,
        }
    }

    /// Fire with probability `p` inside the occurrence window `[from, until)`.
    pub fn window(p: f64, from: u64, until: u64) -> Self {
        FaultPlan {
            prob: p,
            from,
            until,
        }
    }

    /// Fire deterministically at exactly occurrence `k`.
    pub fn at(k: u64) -> Self {
        FaultPlan {
            prob: 1.0,
            from: k,
            until: k + 1,
        }
    }

    pub fn is_off(&self) -> bool {
        self.prob <= 0.0 || self.from >= self.until
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::OFF
    }
}

/// Bounded retry-with-backoff policy for retryable faults (message drop,
/// transient copy failure, checkpoint writes). One policy serves every
/// retry loop in the stack — comm sends, device copies and checkpoint I/O
/// all compute their sleep through [`RetryPolicy::backoff_for`], so retry
/// behavior is tuned in exactly one place.
///
/// Backoff grows exponentially (attempt `i` waits `backoff · 2^i`) and is
/// spread by *deterministic* jitter: a `±jitter_pct`% perturbation drawn
/// from `splitmix64(jitter_seed ^ site ^ attempt)`. Same seed, same site,
/// same attempt ⇒ the same sleep, so retry schedules are as reproducible as
/// the fault schedule itself. `jitter_pct == 0` disables jitter;
/// `exponential == false` falls back to the legacy linear ramp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    pub max_retries: u32,
    /// Base delay of the ramp (first retry waits about this long).
    pub backoff: Duration,
    /// Exponential doubling (default) or the legacy linear `i · backoff`.
    pub exponential: bool,
    /// Jitter amplitude in percent of the computed delay, `0..=100`.
    pub jitter_pct: u32,
    /// Root of the deterministic jitter stream; [`ChaosEngine::retry`]
    /// seeds it from the campaign seed.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_micros(200),
            exponential: true,
            jitter_pct: 20,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based) at the injection
    /// site hashed into `site_salt`. Pure function of the policy and its
    /// arguments — two same-seed runs back off identically.
    pub fn backoff_for(&self, attempt: u32, site_salt: u64) -> Duration {
        let base = if self.exponential {
            // Saturate the shift so absurd retry budgets cannot overflow.
            self.backoff * 2u32.saturating_pow(attempt.min(16))
        } else {
            self.backoff * (attempt + 1)
        };
        if self.jitter_pct == 0 || base.is_zero() {
            return base;
        }
        let draw = splitmix64(self.jitter_seed ^ site_salt ^ attempt as u64);
        let pct = self.jitter_pct.min(100) as i64;
        // Map the draw to [-pct, +pct] percent of the base delay.
        let signed = (draw % (2 * pct as u64 + 1)) as i64 - pct;
        let nanos = base.as_nanos() as i64;
        let jittered = nanos + nanos * signed / 100;
        Duration::from_nanos(jittered.max(0) as u64)
    }
}

/// Observations kept by an [`AdaptiveWatchdog`]'s rolling window.
const ADAPTIVE_WINDOW_CAP: usize = 64;

/// One watchdog configuration shared by every deadline in the stack: the a2a
/// watchdog in `psdns-comm` and the fence/queue watchdogs in `psdns-device`
/// both derive their deadlines from a `WatchdogPolicy` via
/// [`AdaptiveWatchdog`], so "how long before we suspect a hang" is tuned in
/// exactly one place (the watchdog-floor analogue of [`RetryPolicy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Minimum deadline; also the cold-start deadline while the rolling
    /// window is empty.
    pub floor: Duration,
    /// Deadline multiplier over the rolling p99 latency.
    pub factor: u32,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            floor: Duration::from_secs(2),
            factor: 8,
        }
    }
}

/// Adaptive watchdog: the deadline tracks observed latency instead of being
/// a fixed guess. Deadline = `max(floor, factor × p99)` over a rolling
/// window of recent successful waits, so a slow-but-healthy machine does not
/// trip the watchdog while a genuinely hung wait still surfaces quickly. The
/// fixed `floor` guards the cold-start case (empty window) and bounds how
/// tight the deadline can get. Used by the comm layer for all-to-all waits
/// and by the device layer for queue fences.
#[derive(Clone, Debug)]
pub struct AdaptiveWatchdog {
    floor: Duration,
    factor: u32,
    window: Arc<Mutex<std::collections::VecDeque<u64>>>,
}

impl AdaptiveWatchdog {
    pub fn new(floor: Duration, factor: u32) -> Self {
        assert!(factor > 0, "watchdog factor must be positive");
        Self {
            floor,
            factor,
            window: Arc::new(Mutex::new(std::collections::VecDeque::new())),
        }
    }

    pub fn with_policy(policy: WatchdogPolicy) -> Self {
        Self::new(policy.floor, policy.factor)
    }

    /// The (floor, factor) pair this watchdog was built from.
    pub fn policy(&self) -> WatchdogPolicy {
        WatchdogPolicy {
            floor: self.floor,
            factor: self.factor,
        }
    }

    /// Same policy, fresh (empty) window. Used when the watched resource
    /// changes shape (communicator split/shrink, device swap): latencies
    /// measured on the old topology do not transfer.
    pub fn fresh(&self) -> Self {
        Self::new(self.floor, self.factor)
    }

    /// Record the latency of a successfully completed wait.
    pub fn observe(&self, elapsed: Duration) {
        let mut w = self.window.lock();
        if w.len() == ADAPTIVE_WINDOW_CAP {
            w.pop_front();
        }
        w.push_back(elapsed.as_nanos() as u64);
    }

    /// Current deadline: `max(floor, factor × p99(window))`; just `floor`
    /// while the window is empty.
    pub fn deadline(&self) -> Duration {
        let w = self.window.lock();
        if w.is_empty() {
            return self.floor;
        }
        let mut v: Vec<u64> = w.iter().copied().collect();
        v.sort_unstable();
        let idx = (v.len() * 99).div_ceil(100).saturating_sub(1);
        let p99 = v[idx.min(v.len() - 1)];
        self.floor
            .max(Duration::from_nanos(p99.saturating_mul(self.factor as u64)))
    }

    /// Number of latency observations currently in the window.
    pub fn observations(&self) -> usize {
        self.window.lock().len()
    }
}

/// Full chaos campaign description. Everything defaults to "off": a default
/// config injects nothing and an engine built from it is a no-op.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Root of the deterministic decision stream.
    pub seed: u64,
    // -- point-to-point message faults (per directed edge, per send) --------
    pub delay: FaultPlan,
    pub delay_duration: Duration,
    pub reorder: FaultPlan,
    pub duplicate: FaultPlan,
    pub drop: FaultPlan,
    // -- whole-rank faults at collective boundaries -------------------------
    /// Restrict stall injection to one rank (None = any rank may stall).
    pub stall_rank: Option<usize>,
    /// Window is indexed by the rank's a2a call number.
    pub stall: FaultPlan,
    pub stall_duration: Duration,
    /// Restrict crash injection to one rank (None = any rank may crash).
    pub crash_rank: Option<usize>,
    /// Window is indexed by the rank's collective call number.
    pub crash: FaultPlan,
    /// Additional per-rank crash plans, evaluated against the *same*
    /// occurrence counter as `crash` — lets one campaign kill rank 1 at
    /// collective 8 and rank 2 at collective 30 (e.g. a second failure
    /// during or after recovery).
    pub extra_crashes: Vec<(usize, FaultPlan)>,
    // -- device faults ------------------------------------------------------
    pub copy_fault: FaultPlan,
    pub alloc_fault: FaultPlan,
    pub stream_stall: FaultPlan,
    pub stream_stall_duration: Duration,
    /// Indefinite queue hang (cleared only by health-layer condemnation).
    pub device_hang: FaultPlan,
    /// Device loss (sticky; the device never comes back).
    pub device_lost: FaultPlan,
    // -- checkpoint I/O faults ----------------------------------------------
    pub write_fault: FaultPlan,
    pub corrupt_checkpoint: FaultPlan,
    pub truncate_checkpoint: FaultPlan,
    // -- silent data corruption ---------------------------------------------
    /// Single-bit payload corruption (messages, staging buffers, copies).
    pub bit_flip: FaultPlan,
    /// Restrict bit flips to sites with this prefix (None = every BitFlip
    /// site). Lets one campaign target exactly one site class — e.g.
    /// `"flip:"` for in-transit messages, `"buf:"` for staging buffers —
    /// without perturbing the other classes' occurrence counters (mirrors
    /// `crash_rank`: non-matching sites are filtered before the counter).
    pub bit_flip_site: Option<String>,
    /// Single wrong kernel output value (compute SEU).
    pub compute_corrupt: FaultPlan,
    /// Site-prefix filter for compute corruption, like `bit_flip_site`.
    pub compute_corrupt_site: Option<String>,
    // -- recovery knobs -----------------------------------------------------
    pub retry: RetryPolicy,
}

impl ChaosConfig {
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay: FaultPlan::OFF,
            delay_duration: Duration::from_micros(500),
            reorder: FaultPlan::OFF,
            duplicate: FaultPlan::OFF,
            drop: FaultPlan::OFF,
            stall_rank: None,
            stall: FaultPlan::OFF,
            stall_duration: Duration::from_millis(50),
            crash_rank: None,
            crash: FaultPlan::OFF,
            extra_crashes: Vec::new(),
            copy_fault: FaultPlan::OFF,
            alloc_fault: FaultPlan::OFF,
            stream_stall: FaultPlan::OFF,
            stream_stall_duration: Duration::from_micros(500),
            device_hang: FaultPlan::OFF,
            device_lost: FaultPlan::OFF,
            write_fault: FaultPlan::OFF,
            corrupt_checkpoint: FaultPlan::OFF,
            truncate_checkpoint: FaultPlan::OFF,
            bit_flip: FaultPlan::OFF,
            bit_flip_site: None,
            compute_corrupt: FaultPlan::OFF,
            compute_corrupt_site: None,
            retry: RetryPolicy::default(),
        }
    }

    fn plan_for(&self, kind: FaultKind) -> FaultPlan {
        match kind {
            FaultKind::Delay => self.delay,
            FaultKind::Reorder => self.reorder,
            FaultKind::Duplicate => self.duplicate,
            FaultKind::Drop => self.drop,
            FaultKind::Stall => self.stall,
            FaultKind::Crash => self.crash,
            FaultKind::CopyFault => self.copy_fault,
            FaultKind::AllocFault => self.alloc_fault,
            FaultKind::StreamStall => self.stream_stall,
            FaultKind::DeviceHang => self.device_hang,
            FaultKind::DeviceLost => self.device_lost,
            FaultKind::WriteFault => self.write_fault,
            FaultKind::CorruptCheckpoint => self.corrupt_checkpoint,
            FaultKind::TruncateCheckpoint => self.truncate_checkpoint,
            FaultKind::BitFlip => self.bit_flip,
            FaultKind::ComputeCorrupt => self.compute_corrupt,
        }
    }

    /// Site-prefix filter for `kind`, if the campaign restricts it.
    fn site_filter(&self, kind: FaultKind) -> Option<&str> {
        match kind {
            FaultKind::BitFlip => self.bit_flip_site.as_deref(),
            FaultKind::ComputeCorrupt => self.compute_corrupt_site.as_deref(),
            _ => None,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::new(0)
    }
}

/// One fired fault: which rank saw it, at which site, which kind, and the
/// per-`(site, kind)` occurrence number at which it fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    pub rank: usize,
    pub site: String,
    pub kind: FaultKind,
    pub seq: u64,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{} {}@{}#{}", self.rank, self.kind, self.site, self.seq)
    }
}

struct EngineInner {
    config: ChaosConfig,
    /// Per-(site, kind) occurrence counters, keyed by the site/kind hash.
    counters: Mutex<HashMap<u64, u64>>,
    log: Mutex<Vec<FaultRecord>>,
    tracer: Mutex<Option<Tracer>>,
}

/// Cloneable handle to a chaos campaign. All clones share the decision
/// counters, fault log, and (optional) tracer.
#[derive(Clone)]
pub struct ChaosEngine {
    inner: Arc<EngineInner>,
}

impl ChaosEngine {
    pub fn new(config: ChaosConfig) -> Self {
        ChaosEngine {
            inner: Arc::new(EngineInner {
                config,
                counters: Mutex::new(HashMap::new()),
                log: Mutex::new(Vec::new()),
                tracer: Mutex::new(None),
            }),
        }
    }

    /// Convenience: an engine that injects nothing (all plans off).
    pub fn disabled() -> Self {
        ChaosEngine::new(ChaosConfig::default())
    }

    pub fn config(&self) -> &ChaosConfig {
        &self.inner.config
    }

    /// The retry policy, with its jitter stream rooted in the campaign seed
    /// (unless the config pinned an explicit `jitter_seed`).
    pub fn retry(&self) -> RetryPolicy {
        let mut p = self.inner.config.retry;
        if p.jitter_seed == 0 {
            p.jitter_seed = splitmix64(self.inner.config.seed ^ 0x7265_7472_795f_6a74);
        }
        p
    }

    pub fn delay_duration(&self) -> Duration {
        self.inner.config.delay_duration
    }

    pub fn stall_duration(&self) -> Duration {
        self.inner.config.stall_duration
    }

    pub fn stream_stall_duration(&self) -> Duration {
        self.inner.config.stream_stall_duration
    }

    /// Attach a tracer; every subsequently fired fault is emitted as a
    /// `SpanKind::Fault` span on track `chaos:{site}` with logical
    /// timestamps `[seq, seq+1)`.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        *self.inner.tracer.lock() = Some(tracer.clone());
    }

    /// Evaluate one occurrence of `kind` at `site` for `rank`; returns true
    /// (and records the fault) iff the fault fires. Advances the
    /// per-`(site, kind)` counter even when the plan windows it out, so
    /// occurrence numbering is stable across config changes.
    pub fn check(&self, rank: usize, site: &str, kind: FaultKind) -> bool {
        self.check_seq(rank, site, kind).is_some()
    }

    /// Like [`check`](Self::check), but returns the per-`(site, kind)`
    /// occurrence index at which the fault fired. Corruption sites feed the
    /// index into [`draw`](Self::draw) to choose *which* bit/value to damage
    /// from a stream decorrelated from the fire/no-fire decision.
    pub fn check_seq(&self, rank: usize, site: &str, kind: FaultKind) -> Option<u64> {
        let plan = self.inner.config.plan_for(kind);
        if plan.is_off() {
            return None;
        }
        if let Some(prefix) = self.inner.config.site_filter(kind) {
            if !site.starts_with(prefix) {
                return None;
            }
        }
        self.check_plans(rank, site, kind, &[plan])
    }

    /// Evaluate one occurrence against several plans sharing one counter:
    /// the per-`(site, kind)` counter advances exactly once, and each plan
    /// is judged against the same occurrence index `k` (and the same random
    /// draw). Callers must pass only non-off plans. Returns the occurrence
    /// index when any plan fired.
    fn check_plans(
        &self,
        rank: usize,
        site: &str,
        kind: FaultKind,
        plans: &[FaultPlan],
    ) -> Option<u64> {
        let site_hash = fnv1a(site.as_bytes()) ^ fnv1a(kind.label().as_bytes()).rotate_left(17);
        let k = {
            let mut counters = self.inner.counters.lock();
            let c = counters.entry(site_hash).or_insert(0);
            let k = *c;
            *c += 1;
            k
        };
        let fired = plans.iter().any(|plan| {
            k >= plan.from
                && k < plan.until
                && (plan.prob >= 1.0
                    || unit_f64(splitmix64(self.inner.config.seed ^ site_hash ^ k)) < plan.prob)
        });
        if fired {
            self.record(rank, site, kind, k);
            Some(k)
        } else {
            None
        }
    }

    /// Deterministic payload-selection draw for a fired corruption fault:
    /// a pure function of `(seed, site, kind, occurrence)`, mixed with a
    /// distinct salt so it is decorrelated from the fire/no-fire stream.
    /// Same-seed runs corrupt the same bit of the same element.
    pub fn draw(&self, site: &str, kind: FaultKind, k: u64) -> u64 {
        let site_hash = fnv1a(site.as_bytes()) ^ fnv1a(kind.label().as_bytes()).rotate_left(17);
        splitmix64(self.inner.config.seed ^ site_hash.rotate_left(31) ^ k ^ 0x5344_435f_6472_7721)
    }

    /// Rank-crash probe; callers invoke this once per collective call.
    /// Returns true when the calling rank should die now. The primary
    /// `crash` plan (gated by `crash_rank`) and any matching
    /// `extra_crashes` entries are judged against one shared per-rank
    /// occurrence counter, so "rank 1 dies at collective 8, rank 2 at
    /// collective 30" composes without perturbing either schedule.
    pub fn rank_crash(&self, rank: usize) -> bool {
        let cfg = &self.inner.config;
        let mut plans: Vec<FaultPlan> = Vec::new();
        if cfg.crash_rank.is_none_or(|r| r == rank) {
            plans.push(cfg.crash);
        }
        plans.extend(
            cfg.extra_crashes
                .iter()
                .filter(|&&(r, _)| r == rank)
                .map(|&(_, p)| p),
        );
        plans.retain(|p| !p.is_off());
        if plans.is_empty() {
            return false;
        }
        self.check_plans(rank, &format!("coll:r{rank}"), FaultKind::Crash, &plans)
            .is_some()
    }

    /// Rank-stall probe; callers invoke this once per a2a call. Returns the
    /// stall duration when the calling rank should go quiet for a while.
    pub fn rank_stall(&self, rank: usize) -> Option<Duration> {
        if let Some(r) = self.inner.config.stall_rank {
            if r != rank {
                return None;
            }
        }
        if self.check(rank, &format!("a2a:r{rank}"), FaultKind::Stall) {
            Some(self.inner.config.stall_duration)
        } else {
            None
        }
    }

    /// Record a fired fault (also used by recovery code to log degradation
    /// events like a CPU fallback, which are decisions, not random draws).
    pub fn record(&self, rank: usize, site: &str, kind: FaultKind, seq: u64) {
        self.inner.log.lock().push(FaultRecord {
            rank,
            site: site.to_string(),
            kind,
            seq,
        });
        if let Some(t) = self.inner.tracer.lock().as_ref() {
            let h = t.for_rank(rank);
            h.record(
                SpanKind::Fault,
                &format!("chaos:{site}"),
                &format!("{}#{}", kind.label(), seq),
                seq,
                seq + 1,
            );
            h.incr_faults();
        }
    }

    /// Snapshot of every fault fired so far, in firing order.
    pub fn log(&self) -> Vec<FaultRecord> {
        self.inner.log.lock().clone()
    }

    /// Order-independent digest of the fault schedule: suitable for asserting
    /// that two same-seed runs injected exactly the same faults even though
    /// threads interleaved differently.
    pub fn schedule_digest(&self) -> u64 {
        let log = self.inner.log.lock();
        let mut acc = 0u64;
        for r in log.iter() {
            let mut h = fnv1a(r.site.as_bytes());
            h = splitmix64(h ^ fnv1a(r.kind.label().as_bytes()) ^ r.seq ^ (r.rank as u64) << 48);
            acc ^= h;
        }
        acc
    }

    /// Sorted, human-readable schedule (rank, site, kind, seq) — the
    /// canonical form compared across same-seed runs.
    pub fn schedule(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .log
            .lock()
            .iter()
            .map(|r| r.to_string())
            .collect();
        v.sort();
        v
    }
}

impl fmt::Debug for ChaosEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosEngine")
            .field("seed", &self.inner.config.seed)
            .field("faults_fired", &self.inner.log.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_injects_nothing() {
        let e = ChaosEngine::disabled();
        for _ in 0..100 {
            assert!(!e.check(0, "msg:0->1", FaultKind::Drop));
        }
        assert!(e.log().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            let mut cfg = ChaosConfig::new(42);
            cfg.drop = FaultPlan::with_prob(0.3);
            cfg.delay = FaultPlan::with_prob(0.2);
            let e = ChaosEngine::new(cfg);
            for k in 0..200 {
                let site = format!("msg:{}->{}", k % 3, (k + 1) % 3);
                e.check(k % 3, &site, FaultKind::Drop);
                e.check(k % 3, &site, FaultKind::Delay);
            }
            e
        };
        let a = mk();
        let b = mk();
        assert!(!a.log().is_empty(), "expected some faults at p=0.3");
        assert_eq!(a.log(), b.log());
        assert_eq!(a.schedule_digest(), b.schedule_digest());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut cfg = ChaosConfig::new(seed);
            cfg.drop = FaultPlan::with_prob(0.5);
            let e = ChaosEngine::new(cfg);
            for k in 0..100 {
                e.check(0, "msg:0->1", FaultKind::Drop);
                let _ = k;
            }
            e.schedule()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn window_gates_occurrences() {
        let mut cfg = ChaosConfig::new(7);
        cfg.alloc_fault = FaultPlan::at(2);
        let e = ChaosEngine::new(cfg);
        let fired: Vec<bool> = (0..5)
            .map(|_| e.check(0, "alloc:r0", FaultKind::AllocFault))
            .collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(e.log().len(), 1);
        assert_eq!(e.log()[0].seq, 2);
    }

    #[test]
    fn crash_rank_filter_applies() {
        let mut cfg = ChaosConfig::new(9);
        cfg.crash = FaultPlan::at(0);
        cfg.crash_rank = Some(1);
        let e = ChaosEngine::new(cfg);
        assert!(!e.rank_crash(0));
        assert!(e.rank_crash(1));
    }

    #[test]
    fn extra_crash_plans_share_one_counter() {
        let mut cfg = ChaosConfig::new(9);
        cfg.crash_rank = Some(1);
        cfg.crash = FaultPlan::at(2);
        cfg.extra_crashes = vec![(2, FaultPlan::at(4))];
        let e = ChaosEngine::new(cfg);
        // Rank 1 dies at its 3rd probe, rank 2 at its 5th, rank 0 never.
        let fired1: Vec<bool> = (0..5).map(|_| e.rank_crash(1)).collect();
        let fired2: Vec<bool> = (0..6).map(|_| e.rank_crash(2)).collect();
        assert!((0..6).all(|_| !e.rank_crash(0)));
        assert_eq!(fired1, vec![false, false, true, false, false]);
        assert_eq!(fired2, vec![false, false, false, false, true, false]);
        let log = e.log();
        assert_eq!(log.len(), 2);
        assert_eq!((log[0].rank, log[0].seq), (1, 2));
        assert_eq!((log[1].rank, log[1].seq), (2, 4));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff: Duration::from_micros(100),
            exponential: true,
            jitter_pct: 20,
            jitter_seed: 7,
        };
        let salt = site_salt("ckpt:r0");
        for attempt in 0..5u32 {
            let a = p.backoff_for(attempt, salt);
            let b = p.backoff_for(attempt, salt);
            assert_eq!(a, b, "same (policy, site, attempt) must back off equally");
            let base = Duration::from_micros(100) * 2u32.pow(attempt);
            let lo = base.as_nanos() as f64 * 0.8;
            let hi = base.as_nanos() as f64 * 1.2;
            let got = a.as_nanos() as f64;
            assert!(
                got >= lo - 1.0 && got <= hi + 1.0,
                "attempt {attempt}: {got}"
            );
        }
        // Different sites decorrelate; zero jitter is exact.
        assert_ne!(
            p.backoff_for(3, site_salt("a")),
            p.backoff_for(3, site_salt("b"))
        );
        let exact = RetryPolicy { jitter_pct: 0, ..p };
        assert_eq!(exact.backoff_for(2, salt), Duration::from_micros(400));
        let linear = RetryPolicy {
            exponential: false,
            jitter_pct: 0,
            ..p
        };
        assert_eq!(linear.backoff_for(2, salt), Duration::from_micros(300));
    }

    #[test]
    fn engine_seeds_retry_jitter_stream() {
        let e = ChaosEngine::new(ChaosConfig::new(123));
        assert_ne!(e.retry().jitter_seed, 0);
        let mut cfg = ChaosConfig::new(123);
        cfg.retry.jitter_seed = 55;
        assert_eq!(ChaosEngine::new(cfg).retry().jitter_seed, 55);
    }

    #[test]
    fn bit_flip_site_prefix_filters_without_advancing() {
        let mut cfg = ChaosConfig::new(5);
        cfg.bit_flip = FaultPlan::at(0);
        cfg.bit_flip_site = Some("buf:".to_string());
        let e = ChaosEngine::new(cfg);
        // Non-matching site class never fires and never advances a counter.
        assert_eq!(e.check_seq(0, "flip:0->1", FaultKind::BitFlip), None);
        assert_eq!(e.check_seq(0, "flip:0->1", FaultKind::BitFlip), None);
        // The matching class still sees its occurrence 0.
        assert_eq!(e.check_seq(0, "buf:a2a:r0", FaultKind::BitFlip), Some(0));
        assert_eq!(e.check_seq(0, "buf:a2a:r0", FaultKind::BitFlip), None);
    }

    #[test]
    fn draw_is_deterministic_and_decorrelated() {
        let e = ChaosEngine::new(ChaosConfig::new(77));
        let a = e.draw("flip:0->1", FaultKind::BitFlip, 3);
        assert_eq!(a, e.draw("flip:0->1", FaultKind::BitFlip, 3));
        assert_ne!(a, e.draw("flip:0->1", FaultKind::BitFlip, 4));
        assert_ne!(a, e.draw("flip:1->0", FaultKind::BitFlip, 3));
        assert_ne!(a, e.draw("flip:0->1", FaultKind::ComputeCorrupt, 3));
        let f = ChaosEngine::new(ChaosConfig::new(78));
        assert_ne!(a, f.draw("flip:0->1", FaultKind::BitFlip, 3));
    }

    #[test]
    fn compute_corrupt_one_shot_fires_once_per_site() {
        let mut cfg = ChaosConfig::new(2);
        cfg.compute_corrupt = FaultPlan::at(1);
        let e = ChaosEngine::new(cfg);
        let fired: Vec<Option<u64>> = (0..4)
            .map(|_| e.check_seq(0, "kernel:cross:r0", FaultKind::ComputeCorrupt))
            .collect();
        assert_eq!(fired, vec![None, Some(1), None, None]);
        assert_eq!(e.log().len(), 1);
        assert_eq!(e.log()[0].kind, FaultKind::ComputeCorrupt);
    }

    #[test]
    fn faults_emit_trace_spans() {
        let tracer = Tracer::new();
        let mut cfg = ChaosConfig::new(3);
        cfg.drop = FaultPlan::at(0);
        let e = ChaosEngine::new(cfg);
        e.attach_tracer(&tracer);
        assert!(e.check(1, "msg:1->0", FaultKind::Drop));
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::Fault);
        assert_eq!(spans[0].track, "chaos:msg:1->0");
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[0].end_ns, 1);
        assert_eq!(tracer.total_counters().faults, 1);
    }
}
