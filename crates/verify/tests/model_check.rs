//! Model-check regression suite — the `model-check` CI stage.
//!
//! Each test either proves a shipped protocol clean under exhaustive
//! bounded exploration, or proves the checker still catches a seeded
//! reintroduction of a known bug class. Budget: the whole file must run in
//! well under 60s in CI (see ci.sh stage timings).

use psdns_verify::models::{
    buddy::{check_buddy_buffered, check_buddy_rendezvous},
    health::{check_condemn_without_release, check_health_race},
    pool::{check_pool, PoolVariant},
    queue::{check_queue, QueueScenario},
};
use psdns_verify::{explore, shim, Config, ViolationKind};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Scheduler self-tests: prove the explorer itself finds what it claims to.
// ---------------------------------------------------------------------------

#[test]
fn explorer_sees_both_orders_of_two_writers() {
    // A two-writer mutex program has exactly two serializations; the
    // explorer must visit more than one schedule to have seen both.
    let report = explore(&Config::with_bound(2), || {
        let v = Arc::new(shim::Mutex::named("v", 0usize));
        let v2 = Arc::clone(&v);
        let h = shim::thread::spawn(move || *v2.lock() = 1);
        *v.lock() = 2;
        h.join();
        let got = *v.lock();
        assert!(got == 1 || got == 2);
    });
    report.assert_clean("two-writer mutex");
    assert!(report.complete, "exploration should exhaust the space");
    assert!(
        report.iterations >= 2,
        "expected both serializations, saw {} schedule(s)",
        report.iterations
    );
}

#[test]
fn explorer_flags_unsynchronized_plain_access() {
    // The canonical missing-edge bug: a plain cell written by a spawned
    // thread and read by the parent with no ordering between them.
    let report = explore(&Config::with_bound(2), || {
        let c = Arc::new(shim::RaceCell::named("c", 0usize));
        let c2 = Arc::clone(&c);
        let h = shim::thread::spawn(move || c2.set(1));
        let _ = c.get();
        h.join();
    });
    let v = report.expect_violation("parent/child plain-cell race");
    assert!(
        matches!(v.kind, ViolationKind::DataRace { .. }),
        "expected a data race, got: {v}"
    );
}

#[test]
fn explorer_flags_lost_wakeup_deadlock() {
    // Signal-before-wait with no predicate re-check: if the notify lands
    // first, the waiter sleeps forever. The checker must find that schedule.
    let report = explore(&Config::with_bound(2), || {
        let m = Arc::new(shim::Mutex::named("m", ()));
        let cv = Arc::new(shim::Condvar::named("cv"));
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = shim::thread::spawn(move || {
            let _g = m2.lock();
            cv2.notify_one();
        });
        {
            let mut g = m.lock();
            // Deliberately no predicate: waits unconditionally.
            cv.wait(&mut g);
        }
        h.join();
    });
    let v = report.expect_violation("lost wakeup");
    assert!(
        matches!(v.kind, ViolationKind::Deadlock { .. }),
        "expected a deadlock, got: {v}"
    );
}

#[test]
fn release_acquire_edge_suppresses_race() {
    // Same shape as the race test, but the handoff is published through a
    // Release store and consumed behind an Acquire load — clean.
    let report = explore(&Config::with_bound(2), || {
        use std::sync::atomic::Ordering;
        let c = Arc::new(shim::RaceCell::named("c", 0usize));
        let flag = Arc::new(shim::AtomicBool::named("flag", false));
        let (c2, f2) = (Arc::clone(&c), Arc::clone(&flag));
        let h = shim::thread::spawn(move || {
            c2.set(1);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(c.get(), 1);
        }
        h.join();
    });
    report.assert_clean("release/acquire publication");
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// WorkerPool job/cursor protocol (ISSUE 8 satellite 1 regression).
// ---------------------------------------------------------------------------

#[test]
fn pool_shipped_two_job_reuse_is_clean() {
    let report = check_pool(PoolVariant::Shipped, &Config::with_bound(2));
    report.assert_clean("pool shipped protocol, 2 workers x 2 jobs");
    assert!(
        report.complete,
        "pool exploration must exhaust the bounded space"
    );
    assert!(
        report.iterations >= 50,
        "suspiciously few schedules ({}) — scheduler regression?",
        report.iterations
    );
}

#[test]
fn pool_relaxed_cursor_bug_is_caught() {
    // Seeded reintroduction of the pre-PR-8 all-Relaxed cursor: no
    // release/acquire edge between a worker's slot write and the caller's
    // cursor probe, so the fast-path read races.
    let report = check_pool(PoolVariant::RelaxedCursorFastPath, &Config::with_bound(2));
    let v = report.expect_violation("relaxed-cursor fast path");
    assert!(
        matches!(v.kind, ViolationKind::DataRace { .. }),
        "expected a data race, got: {v}"
    );
}

#[test]
fn pool_claim_counter_as_completion_is_caught() {
    // Even with correct orderings, the cursor counts *claims*: a claimed
    // slot may still be mid-write when cursor >= total. Protocol bug, and
    // the reason the shipped pool keeps the mutex handshake.
    let report = check_pool(PoolVariant::AcquireCursorFastPath, &Config::with_bound(2));
    let v = report.expect_violation("claim-counter-as-completion fast path");
    assert!(
        matches!(v.kind, ViolationKind::DataRace { .. }),
        "expected a data race, got: {v}"
    );
}

// ---------------------------------------------------------------------------
// ExecQueue fence vs condemn.
// ---------------------------------------------------------------------------

#[test]
fn queue_condemn_drains_and_preserves_fifo() {
    let report = check_queue(QueueScenario::CondemnDrains, &Config::with_bound(2));
    report.assert_clean("queue condemn-drains scenario");
    assert!(report.complete);
}

#[test]
fn queue_spurious_deadline_recovers() {
    let report = check_queue(QueueScenario::RecoverOnCompletion, &Config::with_bound(2));
    report.assert_clean("queue recover-on-completion scenario");
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// HealthMonitor suspect/recover/condemn.
// ---------------------------------------------------------------------------

#[test]
fn health_condemn_is_sticky_and_releases() {
    let report = check_health_race(&Config::with_bound(2));
    report.assert_clean("health suspect/recover vs condemn race");
    assert!(report.complete);
}

#[test]
fn health_condemn_without_release_deadlocks() {
    let report = check_condemn_without_release(&Config::with_bound(2));
    let v = report.expect_violation("condemn without latch release");
    match &v.kind {
        ViolationKind::Deadlock { waiting } => {
            assert!(
                waiting.iter().any(|w| w.contains("health.waiter")),
                "deadlock report must name the latch waiter: {waiting:?}"
            );
        }
        other => panic!("expected a deadlock, got: {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// BuddyStore replication exchange.
// ---------------------------------------------------------------------------

#[test]
fn buddy_buffered_exchange_is_clean() {
    let report = check_buddy_buffered(&Config::with_bound(2));
    report.assert_clean("buddy buffered exchange");
    assert!(report.complete);
}

#[test]
fn buddy_rendezvous_exchange_deadlocks_all_ranks() {
    let report = check_buddy_rendezvous(&Config::with_bound(2));
    let v = report.expect_violation("buddy rendezvous exchange");
    match &v.kind {
        ViolationKind::Deadlock { waiting } => {
            for r in 0..3 {
                assert!(
                    waiting.iter().any(|w| w.contains(&format!("buddy.r{r}"))),
                    "deadlock report must name rank {r}: {waiting:?}"
                );
            }
        }
        other => panic!("expected a deadlock, got: {other:?}"),
    }
}
