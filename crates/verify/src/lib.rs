//! `psdns-verify`: an in-tree, loom-style bounded model checker for the
//! runtime's small concurrent cores.
//!
//! The paper's asynchronous design concentrates its correctness into a few
//! small protocols — the `psdns-sync` WorkerPool job/cursor handoff, the
//! `psdns-device` ExecQueue submit/fence FIFO, the HealthMonitor
//! `Healthy → Suspect → Lost` machine with its release latch, and the
//! BuddyStore replication exchange. Unit tests run each under *one*
//! interleaving per execution; this crate runs them under **all**
//! interleavings within a preemption bound:
//!
//! * [`shim`] — `Mutex`/`Condvar`/atomic/plain-cell stand-ins whose every
//!   operation is a schedule point, with vector-clock happens-before
//!   tracking (`Release`/`Acquire` edges only — `Relaxed` contributes
//!   none, which is how missing-ordering bugs surface as data races).
//! * [`explore`] — a DFS over schedule choices with CHESS-style preemption
//!   bounding and sleep-set ("DPOR-lite") pruning; deadlocks, data races
//!   and assertion failures are returned as a [`Violation`] carrying the
//!   offending schedule.
//! * [`models`] — the checked protocol models, each documented with the
//!   production code it mirrors, plus *seeded-bug* variants that the
//!   checker must flag (the CI regression that keeps the checker honest).
//!
//! Quick start:
//!
//! ```
//! use psdns_verify::{explore, shim, Config};
//! use std::sync::Arc;
//!
//! let report = explore(&Config::default(), || {
//!     let flag = Arc::new(shim::Mutex::named("flag", false));
//!     let f2 = Arc::clone(&flag);
//!     let h = shim::thread::spawn(move || *f2.lock() = true);
//!     let _ = *flag.lock(); // both orders explored
//!     h.join();
//! });
//! report.assert_clean("doc");
//! ```

mod sched;
pub mod shim;

pub mod models;

pub use sched::{explore, Config, Report, Tid, Violation, ViolationKind};
