//! Shimmed synchronization primitives for model code.
//!
//! Drop-in lookalikes of `psdns_sync::{Mutex, Condvar}` and
//! `std::sync::atomic::*` whose every operation is a schedule point of the
//! [`crate::sched`] controller, plus [`RaceCell`] — a plain (non-atomic)
//! cell whose accesses are race-checked with vector clocks. Model code must
//! use these exclusively for inter-thread communication; each object is
//! bound to the iteration that created it and panics if reused across
//! [`crate::explore`] iterations.

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::sched::{with_current, BranchAbort, ExecState, Execution, ObjState, Op, Tid};

fn check_exec(exec: &Execution, exec_id: u64) {
    assert_eq!(
        exec.id, exec_id,
        "psdns-verify shim object reused across explore() iterations \
         (construct all model state inside the model closure)"
    );
}

fn raise_and_abort(
    exec: &Execution,
    mut st: std::sync::MutexGuard<'_, ExecState>,
    kind: crate::sched::ViolationKind,
) -> ! {
    exec.raise(&mut st, kind);
    drop(st);
    std::panic::panic_any(BranchAbort)
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// A model mutex with the same non-poisoning surface as `psdns_sync::Mutex`.
pub struct Mutex<T> {
    exec_id: u64,
    id: usize,
    value: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and the
// lock discipline (enabledness of `MutexLock`) guarantees mutually
// exclusive access to `value`; every handoff between threads synchronizes
// through the controller's own `std::sync::Mutex`.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only exposes `value` through `lock()`,
// which the scheduler serializes.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self::named("mutex", value)
    }

    pub fn named(name: &str, value: T) -> Self {
        with_current(|exec, _| Self {
            exec_id: exec.id,
            id: exec.register_object(ObjState::new_mutex(name)),
            value: UnsafeCell::new(value),
        })
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(tid, Op::MutexLock { m: self.id });
            st.mutex_lock_effect(tid, self.id);
        });
        MutexGuard { mutex: self }
    }
}

pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: this thread holds the model lock (guard invariant), so the
        // scheduler admits no other accessor until the guard unlocks.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive access for the critical section.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        with_current(|exec, tid| {
            if std::thread::panicking() {
                // Branch teardown (or a model assertion unwinding): release
                // directly, with no schedule point — panicking here would
                // abort the process.
                exec.force_release(tid, self.mutex.id);
            } else {
                let mut st = exec.acquire(tid, Op::MutexUnlock { m: self.mutex.id });
                st.mutex_unlock_effect(tid, self.mutex.id);
            }
        });
    }
}

/// A model condvar mirroring `psdns_sync::Condvar`. `wait_timeout` is
/// nondeterministic: the scheduler explores both the notified and the
/// timed-out wakeup.
pub struct Condvar {
    exec_id: u64,
    id: usize,
}

impl Condvar {
    pub fn new() -> Self {
        Self::named("condvar")
    }

    pub fn named(name: &str) -> Self {
        with_current(|exec, _| Self {
            exec_id: exec.id,
            id: exec.register_object(ObjState::new_cond(name)),
        })
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let m = guard.mutex.id;
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            {
                let mut st = exec.acquire(tid, Op::CondEnqueue { cv: self.id, m });
                st.cond_enqueue_effect(tid, self.id, m);
            }
            let mut st = exec.acquire(
                tid,
                Op::CondReacquire {
                    cv: self.id,
                    m,
                    timed: false,
                },
            );
            st.cond_reacquire_effect(tid, self.id, m);
        });
    }

    /// Returns `true` if the wakeup was a timeout (the duration itself is
    /// ignored — model time is schedule order).
    pub fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, _limit: Duration) -> bool {
        let m = guard.mutex.id;
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            {
                let mut st = exec.acquire(tid, Op::CondEnqueue { cv: self.id, m });
                st.cond_enqueue_effect(tid, self.id, m);
            }
            let mut st = exec.acquire(
                tid,
                Op::CondReacquire {
                    cv: self.id,
                    m,
                    timed: true,
                },
            );
            !st.cond_reacquire_effect(tid, self.id, m)
        })
    }

    pub fn notify_one(&self) {
        self.notify(false);
    }

    pub fn notify_all(&self) {
        self.notify(true);
    }

    fn notify(&self, all: bool) {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(tid, Op::Notify { cv: self.id, all });
            st.notify_effect(self.id, all);
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

struct AtomicInner {
    exec_id: u64,
    id: usize,
}

impl AtomicInner {
    fn new(name: &str, init: u64) -> Self {
        with_current(|exec, _| Self {
            exec_id: exec.id,
            id: exec.register_object(ObjState::new_atomic(name, init)),
        })
    }

    fn load(&self, ord: Ordering) -> u64 {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(tid, Op::AtomicLoad { a: self.id, ord });
            st.atomic_load_effect(tid, self.id, ord)
        })
    }

    fn store(&self, v: u64, ord: Ordering) {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(tid, Op::AtomicStore { a: self.id, ord });
            st.atomic_store_effect(tid, self.id, ord, v);
        });
    }

    fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(tid, Op::AtomicRmw { a: self.id, ord });
            st.atomic_rmw_effect(tid, self.id, ord, f)
        })
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(
                tid,
                Op::AtomicRmw {
                    a: self.id,
                    ord: success,
                },
            );
            st.atomic_cas_effect(tid, self.id, current, new, success, failure)
        })
    }
}

macro_rules! shim_atomic {
    ($name:ident, $ty:ty) => {
        /// Model atomic: sequentially consistent in *value*; orderings only
        /// control which happens-before edges the access contributes.
        pub struct $name(AtomicInner);

        impl $name {
            pub fn new(v: $ty) -> Self {
                Self::named(stringify!($name), v)
            }

            pub fn named(name: &str, v: $ty) -> Self {
                Self(AtomicInner::new(name, v as u64))
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                self.0.load(ord) as $ty
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                self.0.store(v as u64, ord);
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.rmw(ord, |_| v as u64) as $ty
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.rmw(ord, |old| old.wrapping_add(v as u64)) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                self.0.rmw(ord, |old| old.wrapping_sub(v as u64)) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.0
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }
        }
    };
}

shim_atomic!(AtomicUsize, usize);
shim_atomic!(AtomicU64, u64);
shim_atomic!(AtomicU8, u8);

/// Model `AtomicBool` (stored as 0/1).
pub struct AtomicBool(AtomicInner);

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        Self::named("AtomicBool", v)
    }

    pub fn named(name: &str, v: bool) -> Self {
        Self(AtomicInner::new(name, u64::from(v)))
    }

    pub fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        self.0.store(u64::from(v), ord);
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.0.rmw(ord, |_| u64::from(v)) != 0
    }
}

// ---------------------------------------------------------------------------
// RaceCell
// ---------------------------------------------------------------------------

/// Plain (non-atomic) shared data. Conflicting accesses with no
/// happens-before edge are reported as a [`crate::ViolationKind::DataRace`]
/// — this is the model-world stand-in for the raw buffers the real code
/// hands to worker threads.
pub struct RaceCell<T> {
    exec_id: u64,
    id: usize,
    value: UnsafeCell<T>,
}

// SAFETY: every access goes through a scheduler grant (`get`/`set`), and the
// scheduler runs one model thread at a time with controller-mutex
// synchronization between steps, so accesses are exclusive in real time even
// when they race in model time.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    pub fn new(v: T) -> Self {
        Self::named("cell", v)
    }

    pub fn named(name: &str, v: T) -> Self {
        with_current(|exec, _| Self {
            exec_id: exec.id,
            id: exec.register_object(ObjState::new_cell(name)),
            value: UnsafeCell::new(v),
        })
    }

    pub fn get(&self) -> T {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(tid, Op::CellRead { c: self.id });
            match st.cell_access_effect(tid, self.id, false) {
                // SAFETY: one model thread executes at a time; the read is
                // exclusive in real time (the race, if any, is in *model*
                // time and was just reported).
                Ok(()) => unsafe { *self.value.get() },
                Err(kind) => raise_and_abort(exec, st, kind),
            }
        })
    }

    pub fn set(&self, v: T) {
        with_current(|exec, tid| {
            check_exec(exec, self.exec_id);
            let mut st = exec.acquire(tid, Op::CellWrite { c: self.id });
            match st.cell_access_effect(tid, self.id, true) {
                // SAFETY: as in `get` — real-time exclusive access.
                Ok(()) => unsafe { *self.value.get() = v },
                Err(kind) => raise_and_abort(exec, st, kind),
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Model threads: spawned under the scheduler, joined in model time.
pub mod thread {
    use super::*;

    pub struct JoinHandle {
        pub(crate) exec: Arc<Execution>,
        pub(crate) tid: Tid,
    }

    impl JoinHandle {
        pub fn join(self) {
            with_current(|exec, me| {
                check_exec(exec, self.exec.id);
                exec.join_thread(me, self.tid);
            });
            if let Some(h) = self.exec.take_os_handle(self.tid) {
                let _ = h.join();
            }
        }
    }

    pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
        spawn_named("worker", f)
    }

    pub fn spawn_named<F: FnOnce() + Send + 'static>(name: &str, f: F) -> JoinHandle {
        with_current(|exec, tid| {
            let child = exec.spawn_thread(tid, name, Box::new(f));
            JoinHandle {
                exec: Arc::clone(exec),
                tid: child,
            }
        })
    }
}
