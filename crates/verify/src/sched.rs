//! The bounded deterministic scheduler behind [`explore`].
//!
//! Model code runs on real OS threads, but only **one thread executes at a
//! time**: every shimmed synchronization operation (see [`crate::shim`]) is
//! a *schedule point* where the running thread declares its next operation
//! and hands control to the scheduler, which picks the next runnable thread
//! from the set of *enabled* ones (a thread blocked on a held mutex, an
//! un-notified condvar or an unfinished join is not enabled). Replaying the
//! same sequence of choices replays the same execution, so the explorer can
//! walk the whole schedule tree:
//!
//! * **DFS over choice prefixes** — each iteration re-runs the model with a
//!   forced choice prefix, records the frontier decisions it makes past the
//!   prefix, and backtracks to the deepest node with an untried alternative.
//! * **Preemption bounding** (CHESS-style iterative context bounding) — a
//!   context switch away from a still-enabled thread costs one preemption;
//!   schedules exceeding [`Config::preemption_bound`] are pruned. Most
//!   concurrency bugs need very few preemptions, so a small bound buys an
//!   exhaustive-in-practice search at polynomial cost.
//! * **Sleep sets** (the "DPOR-lite" reduction) — after fully exploring
//!   choice `t` at a node, `t` is put to sleep for the sibling branches and
//!   only woken when a dependent operation executes, so commuting
//!   interleavings are explored once.
//!
//! Detected violations ([`Violation`]):
//!
//! * **Deadlock** — some threads are unfinished and none are enabled.
//! * **Data race** — a [`crate::shim::RaceCell`] access with no
//!   happens-before edge to a conflicting prior access. Happens-before is
//!   tracked with vector clocks: mutex unlock→lock, `Release`
//!   store→`Acquire` load (RMWs continue release sequences), spawn and join
//!   create edges; `Relaxed` operations create none.
//! * **Panic** — any model assertion failure, reported with the schedule.
//!
//! What is *not* modeled: weak-memory stale reads (atomics are
//! sequentially consistent in value; the vector clocks only decide which
//! *plain* accesses race) and spurious condvar wakeups. `wait_timeout` is
//! modeled nondeterministically — the timeout may fire at any schedule
//! point where the mutex is free — so both the timed-out and the notified
//! path are explored.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, OnceLock};

/// Thread id inside one model execution (0 is the model's main thread).
pub type Tid = usize;

/// Panic payload used to tear down a branch that the explorer abandoned
/// (prune, violation elsewhere). Never escapes [`explore`].
pub(crate) struct BranchAbort;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Unique id per [`Execution`] so shim objects can detect being reused
/// across iterations (a model bug: state would leak between schedules).
static EXEC_IDS: AtomicU64 = AtomicU64::new(1);

fn install_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Branch teardown and in-model assertion failures are expected
            // control flow here (they become Violations); keep stderr quiet.
            if info.payload().is::<BranchAbort>() || IN_MODEL.with(|f| f.get()) {
                return;
            }
            prev(info);
        }));
    });
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Execution>, Tid) -> R) -> R {
    CURRENT.with(|c| {
        let slot = c.borrow();
        let (exec, tid) = slot
            .as_ref()
            .expect("psdns-verify shim primitive used outside explore()");
        f(exec, *tid)
    })
}

// ---------------------------------------------------------------------------
// Operations, objects, threads
// ---------------------------------------------------------------------------

/// The operation a thread has declared at its current schedule point. Only
/// metadata — effects are applied by the shim layer once the thread is
/// granted the step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    Start,
    Finish,
    Spawn { child: Tid },
    Join { target: Tid },
    MutexLock { m: usize },
    MutexUnlock { m: usize },
    CondEnqueue { cv: usize, m: usize },
    CondReacquire { cv: usize, m: usize, timed: bool },
    Notify { cv: usize, all: bool },
    AtomicLoad { a: usize, ord: Ordering },
    AtomicStore { a: usize, ord: Ordering },
    AtomicRmw { a: usize, ord: Ordering },
    CellRead { c: usize },
    CellWrite { c: usize },
}

impl Op {
    /// Object ids this op touches (for the dependence relation).
    fn objs(&self) -> (Option<usize>, Option<usize>) {
        match *self {
            Op::MutexLock { m } | Op::MutexUnlock { m } => (Some(m), None),
            Op::CondEnqueue { cv, m } | Op::CondReacquire { cv, m, .. } => (Some(cv), Some(m)),
            Op::Notify { cv, .. } => (Some(cv), None),
            Op::AtomicLoad { a, .. } | Op::AtomicStore { a, .. } | Op::AtomicRmw { a, .. } => {
                (Some(a), None)
            }
            Op::CellRead { c } | Op::CellWrite { c } => (Some(c), None),
            _ => (None, None),
        }
    }
}

/// Two declared ops are *dependent* when their order can matter. Used only
/// to wake sleeping threads, so being conservatively `true` is sound (it
/// just prunes less).
fn dependent(a: &Op, b: &Op) -> bool {
    match (a, b) {
        (Op::AtomicLoad { .. }, Op::AtomicLoad { .. }) => false,
        (Op::CellRead { .. }, Op::CellRead { .. }) => false,
        _ => {
            let (a0, a1) = a.objs();
            let (b0, b1) = b.objs();
            let (av, bv) = ([a0, a1], [b0, b1]);
            let shares = av
                .iter()
                .flatten()
                .any(|x| bv.iter().flatten().any(|y| x == y));
            // Ops with no object footprint (spawn/join/finish) are treated
            // as dependent with everything.
            shares || av.iter().all(|o| o.is_none()) || bv.iter().all(|o| o.is_none())
        }
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

type VClock = Vec<u64>;

fn vc_join(a: &mut VClock, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &x) in b.iter().enumerate() {
        if a[i] < x {
            a[i] = x;
        }
    }
}

fn vc_get(a: &[u64], i: usize) -> u64 {
    a.get(i).copied().unwrap_or(0)
}

pub(crate) enum ObjState {
    Mutex {
        owner: Option<Tid>,
        vc: VClock,
        name: String,
    },
    Cond {
        waiters: Vec<Tid>,
        name: String,
    },
    Atomic {
        val: u64,
        /// Release-sequence clock: set by `Release` stores, accumulated by
        /// release RMWs, kept (not extended) by relaxed RMWs, cleared by
        /// relaxed stores. Acquire loads join it into the reader's clock.
        sync_vc: VClock,
        name: String,
    },
    Cell {
        write: Option<(Tid, u64)>,
        reads: Vec<u64>,
        name: String,
    },
}

impl ObjState {
    pub(crate) fn new_mutex(name: &str) -> Self {
        ObjState::Mutex {
            owner: None,
            vc: Vec::new(),
            name: name.into(),
        }
    }

    pub(crate) fn new_cond(name: &str) -> Self {
        ObjState::Cond {
            waiters: Vec::new(),
            name: name.into(),
        }
    }

    pub(crate) fn new_atomic(name: &str, val: u64) -> Self {
        ObjState::Atomic {
            val,
            sync_vc: Vec::new(),
            name: name.into(),
        }
    }

    pub(crate) fn new_cell(name: &str) -> Self {
        ObjState::Cell {
            write: None,
            reads: Vec::new(),
            name: name.into(),
        }
    }

    fn name(&self) -> &str {
        match self {
            ObjState::Mutex { name, .. }
            | ObjState::Cond { name, .. }
            | ObjState::Atomic { name, .. }
            | ObjState::Cell { name, .. } => name,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Registered by `spawn`, runnable once the parent's Spawn op executes.
    NotStarted,
    Ready,
    Finished,
}

struct ThreadInfo {
    name: String,
    status: Status,
    pending: Option<Op>,
    /// Set by the scheduler when this thread is given the step; consumed by
    /// the thread when it executes its pending op. Distinguishes "I am the
    /// running thread declaring my next op" from "I was already granted a
    /// step I have not consumed yet" (a freshly spawned thread can observe
    /// the latter).
    granted: bool,
    /// For condvar waiters: set by a Notify op, consumed by CondReacquire.
    notified: bool,
    vc: VClock,
}

// ---------------------------------------------------------------------------
// Violations & reports
// ---------------------------------------------------------------------------

/// A property violation found on some schedule, with the schedule itself.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Executed schedule, one line per step (`t1(worker) lock(state)`).
    pub trace: Vec<String>,
}

#[derive(Clone, Debug)]
pub enum ViolationKind {
    /// Unfinished threads exist but none is enabled.
    Deadlock { waiting: Vec<String> },
    /// Conflicting plain accesses with no happens-before edge.
    DataRace {
        object: String,
        access: String,
        prior: String,
    },
    /// A model thread panicked (assertion failure).
    Panic { thread: String, message: String },
    /// The execution exceeded [`Config::max_steps`] (livelock or an
    /// unbounded spin loop — models must not poll).
    StepLimit,
    /// A replayed prefix diverged: the model is not deterministic.
    Nondeterminism,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::Deadlock { waiting } => {
                writeln!(f, "deadlock: no enabled thread; waiting:")?;
                for w in waiting {
                    writeln!(f, "  {w}")?;
                }
            }
            ViolationKind::DataRace {
                object,
                access,
                prior,
            } => {
                writeln!(
                    f,
                    "data race on `{object}`: {access} unordered with {prior}"
                )?;
            }
            ViolationKind::Panic { thread, message } => {
                writeln!(f, "panic in {thread}: {message}")?;
            }
            ViolationKind::StepLimit => writeln!(f, "step limit exceeded (livelock?)")?,
            ViolationKind::Nondeterminism => {
                writeln!(f, "schedule replay diverged: model is nondeterministic")?
            }
        }
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        let skip = self.trace.len().saturating_sub(60);
        if skip > 0 {
            writeln!(f, "  ... {skip} earlier steps elided ...")?;
        }
        for line in &self.trace[skip..] {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Exploration knobs. The defaults fit the in-tree protocol models.
#[derive(Clone, Debug)]
pub struct Config {
    /// Max preemptive context switches per schedule (`None` = unbounded).
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; exceeding it leaves
    /// [`Report::complete`] false.
    pub max_iterations: u64,
    /// Hard cap on steps per schedule (catches accidental spin loops).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: Some(2),
            max_iterations: 200_000,
            max_steps: 20_000,
        }
    }
}

impl Config {
    pub fn with_bound(bound: usize) -> Self {
        Self {
            preemption_bound: Some(bound),
            ..Self::default()
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed (including pruned ones).
    pub iterations: u64,
    /// Branches abandoned by sleep-set / preemption-bound pruning.
    pub pruned: u64,
    /// The DFS drained the whole bounded schedule tree.
    pub complete: bool,
    /// Deepest schedule (steps) seen.
    pub max_depth: usize,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
}

impl Report {
    /// Panic (with the offending schedule) unless the exploration completed
    /// with no violation.
    pub fn assert_clean(&self, what: &str) {
        if let Some(v) = &self.violation {
            panic!(
                "model `{what}`: violation after {} schedules:\n{v}",
                self.iterations
            );
        }
        assert!(
            self.complete,
            "model `{what}`: exploration did not complete within the iteration budget \
             ({} schedules run)",
            self.iterations
        );
    }

    /// Panic unless a violation was found; returns it otherwise.
    pub fn expect_violation(&self, what: &str) -> &Violation {
        self.violation.as_ref().unwrap_or_else(|| {
            panic!(
                "model `{what}`: expected a violation, but {} schedules were clean (complete: {})",
                self.iterations, self.complete
            )
        })
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct PrefixStep {
    chosen: Tid,
    /// Exhausted sibling choices put to sleep for this branch.
    sleep_add: Vec<Tid>,
}

/// A frontier decision recorded during one run.
struct NodeSnapshot {
    enabled: Vec<Tid>,
    sleep: BTreeSet<Tid>,
    running_before: Option<Tid>,
    preemptions_before: usize,
    chosen: Tid,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadInfo>,
    objects: Vec<ObjState>,
    running: Option<Tid>,
    last_running: Option<Tid>,
    prefix: Vec<PrefixStep>,
    new_nodes: Vec<NodeSnapshot>,
    schedule_len: usize,
    /// Multi-choice steps taken so far (indexes into `prefix`); steps with a
    /// single enabled thread are not decision points and are not recorded.
    decisions: usize,
    sleep: BTreeSet<Tid>,
    preemptions: usize,
    trace: Vec<String>,
    violation: Option<Violation>,
    abort: bool,
    pruned: bool,
    all_done: bool,
    live_threads: usize,
    /// OS threads (not counting the driver) that have not yet exited.
    os_live: usize,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    bound: Option<usize>,
    max_steps: usize,
}

impl ExecState {
    fn is_enabled(&self, t: Tid) -> bool {
        let th = &self.threads[t];
        if th.status != Status::Ready {
            return false;
        }
        let Some(op) = &th.pending else { return false };
        match *op {
            Op::MutexLock { m } => self.mutex_free(m),
            Op::CondReacquire { m, timed, .. } => (th.notified || timed) && self.mutex_free(m),
            Op::Join { target } => self.threads[target].status == Status::Finished,
            _ => true,
        }
    }

    fn mutex_free(&self, m: usize) -> bool {
        matches!(&self.objects[m], ObjState::Mutex { owner: None, .. })
    }

    fn thread_label(&self, t: Tid) -> String {
        format!("t{t}({})", self.threads[t].name)
    }

    fn op_desc(&self, op: &Op) -> String {
        let on = |i: usize| self.objects[i].name().to_string();
        match *op {
            Op::Start => "start".into(),
            Op::Finish => "finish".into(),
            Op::Spawn { child } => format!("spawn(t{child})"),
            Op::Join { target } => format!("join(t{target})"),
            Op::MutexLock { m } => format!("lock({})", on(m)),
            Op::MutexUnlock { m } => format!("unlock({})", on(m)),
            Op::CondEnqueue { cv, .. } => format!("wait-enqueue({})", on(cv)),
            Op::CondReacquire { cv, timed, .. } => {
                if timed {
                    format!("wait-wake-timed({})", on(cv))
                } else {
                    format!("wait-wake({})", on(cv))
                }
            }
            Op::Notify { cv, all } => {
                if all {
                    format!("notify_all({})", on(cv))
                } else {
                    format!("notify_one({})", on(cv))
                }
            }
            Op::AtomicLoad { a, ord } => format!("load({}, {ord:?})", on(a)),
            Op::AtomicStore { a, ord } => format!("store({}, {ord:?})", on(a)),
            Op::AtomicRmw { a, ord } => format!("rmw({}, {ord:?})", on(a)),
            Op::CellRead { c } => format!("read({})", on(c)),
            Op::CellWrite { c } => format!("write({})", on(c)),
        }
    }

    fn register_thread(&mut self, name: &str, status: Status, pending: Option<Op>) -> Tid {
        let tid = self.threads.len();
        assert!(tid < 16, "model spawned too many threads");
        self.threads.push(ThreadInfo {
            name: name.to_string(),
            status,
            pending,
            granted: false,
            notified: false,
            vc: vec![0; tid + 1],
        });
        self.os_handles.push(None);
        tid
    }

    fn register_object(&mut self, obj: ObjState) -> usize {
        self.objects.push(obj);
        self.objects.len() - 1
    }

    fn tick(&mut self, t: Tid) {
        let vc = &mut self.threads[t].vc;
        if vc.len() <= t {
            vc.resize(t + 1, 0);
        }
        vc[t] += 1;
    }

    // -- effect helpers (called by the shim while holding the state lock) --

    pub(crate) fn mutex_lock_effect(&mut self, t: Tid, m: usize) {
        let mvc = match &mut self.objects[m] {
            ObjState::Mutex { owner, vc, .. } => {
                debug_assert!(owner.is_none());
                *owner = Some(t);
                vc.clone()
            }
            _ => unreachable!("not a mutex"),
        };
        vc_join(&mut self.threads[t].vc, &mvc);
    }

    pub(crate) fn mutex_unlock_effect(&mut self, t: Tid, m: usize) {
        let tvc = self.threads[t].vc.clone();
        match &mut self.objects[m] {
            ObjState::Mutex { owner, vc, .. } => {
                debug_assert_eq!(*owner, Some(t));
                *owner = None;
                vc_join(vc, &tvc);
            }
            _ => unreachable!("not a mutex"),
        }
    }

    /// Direct release with no schedule point — used by guard drops during
    /// branch teardown (panic unwinding).
    pub(crate) fn mutex_force_release(&mut self, t: Tid, m: usize) {
        if let ObjState::Mutex { owner, .. } = &mut self.objects[m] {
            if *owner == Some(t) {
                *owner = None;
            }
        }
    }

    pub(crate) fn cond_enqueue_effect(&mut self, t: Tid, cv: usize, m: usize) {
        self.threads[t].notified = false;
        match &mut self.objects[cv] {
            ObjState::Cond { waiters, .. } => waiters.push(t),
            _ => unreachable!("not a condvar"),
        }
        self.mutex_unlock_effect(t, m);
    }

    /// Returns `true` if the wakeup was a notification (vs a timeout).
    pub(crate) fn cond_reacquire_effect(&mut self, t: Tid, cv: usize, m: usize) -> bool {
        let was_notified = self.threads[t].notified;
        self.threads[t].notified = false;
        if !was_notified {
            // Timed out: leave the wait queue ourselves.
            if let ObjState::Cond { waiters, .. } = &mut self.objects[cv] {
                waiters.retain(|&w| w != t);
            }
        }
        self.mutex_lock_effect(t, m);
        was_notified
    }

    pub(crate) fn notify_effect(&mut self, cv: usize, all: bool) {
        let woken: Vec<Tid> = match &mut self.objects[cv] {
            ObjState::Cond { waiters, .. } => {
                if all {
                    std::mem::take(waiters)
                } else if waiters.is_empty() {
                    Vec::new()
                } else {
                    vec![waiters.remove(0)]
                }
            }
            _ => unreachable!("not a condvar"),
        };
        for w in woken {
            self.threads[w].notified = true;
        }
    }

    pub(crate) fn atomic_load_effect(&mut self, t: Tid, a: usize, ord: Ordering) -> u64 {
        let (val, svc) = match &self.objects[a] {
            ObjState::Atomic { val, sync_vc, .. } => (*val, sync_vc.clone()),
            _ => unreachable!("not an atomic"),
        };
        if is_acquire(ord) {
            vc_join(&mut self.threads[t].vc, &svc);
        }
        val
    }

    pub(crate) fn atomic_store_effect(&mut self, t: Tid, a: usize, ord: Ordering, v: u64) {
        let tvc = self.threads[t].vc.clone();
        match &mut self.objects[a] {
            ObjState::Atomic { val, sync_vc, .. } => {
                *val = v;
                if is_release(ord) {
                    *sync_vc = tvc;
                } else {
                    // A plain relaxed store heads a new release sequence
                    // with no release edge.
                    sync_vc.clear();
                }
            }
            _ => unreachable!("not an atomic"),
        }
    }

    pub(crate) fn atomic_rmw_effect(
        &mut self,
        t: Tid,
        a: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let svc = match &self.objects[a] {
            ObjState::Atomic { sync_vc, .. } => sync_vc.clone(),
            _ => unreachable!("not an atomic"),
        };
        if is_acquire(ord) {
            vc_join(&mut self.threads[t].vc, &svc);
        }
        let tvc = self.threads[t].vc.clone();
        match &mut self.objects[a] {
            ObjState::Atomic { val, sync_vc, .. } => {
                let old = *val;
                *val = f(old);
                if is_release(ord) {
                    // RMWs extend the release sequence: accumulate.
                    vc_join(sync_vc, &tvc);
                }
                old
            }
            _ => unreachable!("not an atomic"),
        }
    }

    /// Compare-exchange; returns `Ok(old)` on success, `Err(old)` otherwise.
    pub(crate) fn atomic_cas_effect(
        &mut self,
        t: Tid,
        a: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let (old, _svc) = match &self.objects[a] {
            ObjState::Atomic { val, sync_vc, .. } => (*val, sync_vc.clone()),
            _ => unreachable!("not an atomic"),
        };
        if old == current {
            self.atomic_rmw_effect(t, a, success, |_| new);
            Ok(old)
        } else {
            if is_acquire(failure) {
                let svc = match &self.objects[a] {
                    ObjState::Atomic { sync_vc, .. } => sync_vc.clone(),
                    _ => unreachable!(),
                };
                vc_join(&mut self.threads[t].vc, &svc);
            }
            Err(old)
        }
    }

    /// Race-check a plain-cell access. `Err` carries the violation to raise.
    pub(crate) fn cell_access_effect(
        &mut self,
        t: Tid,
        c: usize,
        is_write: bool,
    ) -> Result<(), ViolationKind> {
        let tvc = self.threads[t].vc.clone();
        let me = self.thread_label(t);
        let (name, write, reads) = match &mut self.objects[c] {
            ObjState::Cell {
                name, write, reads, ..
            } => (name.clone(), write, reads),
            _ => unreachable!("not a race cell"),
        };
        if let Some((wt, we)) = *write {
            if wt != t && vc_get(&tvc, wt) < we {
                return Err(ViolationKind::DataRace {
                    object: name,
                    access: format!("{} by {me}", if is_write { "write" } else { "read" }),
                    prior: format!("write by t{wt}"),
                });
            }
        }
        if is_write {
            for (rt, &re) in reads.iter().enumerate() {
                if re > 0 && rt != t && vc_get(&tvc, rt) < re {
                    return Err(ViolationKind::DataRace {
                        object: name,
                        access: format!("write by {me}"),
                        prior: format!("read by t{rt}"),
                    });
                }
            }
            *write = Some((t, vc_get(&tvc, t)));
            reads.clear();
        } else {
            if reads.len() <= t {
                reads.resize(t + 1, 0);
            }
            reads[t] = vc_get(&tvc, t);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Execution (the per-iteration controller)
// ---------------------------------------------------------------------------

pub(crate) struct Execution {
    pub(crate) id: u64,
    state: OsMutex<ExecState>,
    cv: OsCondvar,
}

impl Execution {
    fn new(prefix: Vec<PrefixStep>, bound: Option<usize>, max_steps: usize) -> Self {
        Self {
            id: EXEC_IDS.fetch_add(1, Ordering::Relaxed),
            state: OsMutex::new(ExecState {
                threads: Vec::new(),
                objects: Vec::new(),
                running: None,
                last_running: None,
                prefix,
                new_nodes: Vec::new(),
                schedule_len: 0,
                decisions: 0,
                sleep: BTreeSet::new(),
                preemptions: 0,
                trace: Vec::new(),
                violation: None,
                abort: false,
                pruned: false,
                all_done: false,
                live_threads: 0,
                os_live: 0,
                os_handles: Vec::new(),
                bound,
                max_steps,
            }),
            cv: OsCondvar::new(),
        }
    }

    fn lock(&self) -> OsGuard<'_, ExecState> {
        // The inner mutex is never poisoned observably: branch teardown
        // releases it before unwinding past lock scopes.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register_object(&self, obj: ObjState) -> usize {
        self.lock().register_object(obj)
    }

    /// Record a violation and tear the branch down.
    pub(crate) fn raise(&self, st: &mut ExecState, kind: ViolationKind) {
        if st.violation.is_none() && !st.pruned {
            st.violation = Some(Violation {
                kind,
                trace: st.trace.clone(),
            });
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Declare `op` for `tid`, yield to the scheduler, and return the state
    /// lock once the step is granted. The caller applies the op's effects
    /// under the returned guard and then continues running model code.
    pub(crate) fn acquire(&self, tid: Tid, op: Op) -> OsGuard<'_, ExecState> {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(BranchAbort);
        }
        st.threads[tid].pending = Some(op);
        if st.running == Some(tid) && !st.threads[tid].granted {
            // We are the running thread yielding at a schedule point.
            self.pick_next(&mut st);
        }
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(BranchAbort);
            }
            if st.running == Some(tid) && st.threads[tid].granted {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        // Granted: consume the pending op, record it, advance the clock and
        // wake dependent sleepers.
        st.threads[tid].granted = false;
        let op = st.threads[tid].pending.take().expect("granted without op");
        st.tick(tid);
        let line = format!("{} {}", st.thread_label(tid), st.op_desc(&op));
        st.trace.push(line);
        let sleepers: Vec<Tid> = st.sleep.iter().copied().collect();
        for u in sleepers {
            let dep = match &st.threads[u].pending {
                Some(p) => dependent(&op, p),
                None => true,
            };
            if dep {
                st.sleep.remove(&u);
            }
        }
        st
    }

    /// The scheduling decision: called with the state locked, by the thread
    /// that is giving up the step.
    fn pick_next(&self, st: &mut ExecState) {
        st.running = None;
        if st.abort {
            self.cv.notify_all();
            return;
        }
        let enabled: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| st.is_enabled(t))
            .collect();
        if enabled.is_empty() {
            if st.live_threads == 0 {
                st.all_done = true;
            } else {
                let waiting = (0..st.threads.len())
                    .filter(|&t| st.threads[t].status != Status::Finished)
                    .map(|t| {
                        let opd = st.threads[t]
                            .pending
                            .as_ref()
                            .map(|o| st.op_desc(o))
                            .unwrap_or_else(|| "<no pending op>".into());
                        format!("{} blocked at {opd}", st.thread_label(t))
                    })
                    .collect();
                self.raise(st, ViolationKind::Deadlock { waiting });
                return;
            }
            self.cv.notify_all();
            return;
        }
        if st.schedule_len >= st.max_steps {
            self.raise(st, ViolationKind::StepLimit);
            return;
        }
        let cands: Vec<Tid> = enabled
            .iter()
            .copied()
            .filter(|t| !st.sleep.contains(t))
            .collect();
        if cands.is_empty() {
            // Every enabled thread is asleep: this branch only replays
            // already-covered interleavings — abandon it.
            st.pruned = true;
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        let choice = if enabled.len() == 1 {
            // Not a decision point: exactly one thread can move.
            enabled[0]
        } else if st.decisions < st.prefix.len() {
            let ps = st.prefix[st.decisions].clone();
            st.decisions += 1;
            for s in ps.sleep_add {
                st.sleep.insert(s);
            }
            if !enabled.contains(&ps.chosen) {
                self.raise(st, ViolationKind::Nondeterminism);
                return;
            }
            ps.chosen
        } else {
            st.decisions += 1;
            let last_enabled = st.last_running.is_some_and(|l| enabled.contains(&l));
            let pick = if let Some(l) = st.last_running.filter(|l| cands.contains(l)) {
                Some(l)
            } else {
                let cost = usize::from(last_enabled);
                if st.bound.is_none_or(|b| st.preemptions + cost <= b) {
                    cands.first().copied()
                } else {
                    None
                }
            };
            let Some(c) = pick else {
                // Bound-blocked: every fresh candidate would exceed the
                // preemption budget — abandon the branch.
                st.pruned = true;
                st.abort = true;
                self.cv.notify_all();
                return;
            };
            st.new_nodes.push(NodeSnapshot {
                enabled: enabled.clone(),
                sleep: st.sleep.clone(),
                running_before: st.last_running,
                preemptions_before: st.preemptions,
                chosen: c,
            });
            c
        };
        if let Some(l) = st.last_running {
            if l != choice && enabled.contains(&l) {
                st.preemptions += 1;
            }
        }
        st.schedule_len += 1;
        st.sleep.remove(&choice);
        st.threads[choice].granted = true;
        st.running = Some(choice);
        st.last_running = Some(choice);
        self.cv.notify_all();
    }

    /// Thread body wrapper for spawned model threads.
    fn thread_main(self: Arc<Self>, tid: Tid, f: Box<dyn FnOnce() + Send>) {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&self), tid)));
        IN_MODEL.with(|m| m.set(true));
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Consume the Start grant through the normal acquire path before
            // any model code runs. Without this, a grant issued for the
            // always-enabled Start placeholder would be stolen by the
            // closure's first real op — which may be disabled (e.g. a lock on
            // a held mutex), breaking the scheduler's enabledness invariant.
            drop(self.acquire(tid, Op::Start));
            f();
        }));
        match result {
            Ok(()) => {
                let _ = catch_unwind(AssertUnwindSafe(|| self.retire(tid)));
            }
            Err(payload) => self.handle_panic(tid, payload),
        }
        CURRENT.with(|c| *c.borrow_mut() = None);
        IN_MODEL.with(|m| m.set(false));
        let mut st = self.lock();
        st.os_live -= 1;
        self.cv.notify_all();
    }

    /// Declare and execute the Finish op, then hand the step off without
    /// waiting for another grant (this thread is done).
    fn retire(&self, tid: Tid) {
        let mut st = self.acquire(tid, Op::Finish);
        st.threads[tid].status = Status::Finished;
        st.live_threads -= 1;
        self.pick_next(&mut st);
    }

    fn handle_panic(&self, tid: Tid, payload: Box<dyn std::any::Any + Send>) {
        if payload.is::<BranchAbort>() {
            // Teardown of an abandoned branch: account the thread as gone so
            // deadlock detection on other (still live) paths stays accurate.
            let mut st = self.lock();
            if st.threads[tid].status != Status::Finished {
                st.threads[tid].status = Status::Finished;
                st.live_threads -= 1;
            }
            self.cv.notify_all();
            return;
        }
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".into());
        let mut st = self.lock();
        let thread = st.thread_label(tid);
        if st.threads[tid].status != Status::Finished {
            st.threads[tid].status = Status::Finished;
            st.live_threads -= 1;
        }
        self.raise(&mut st, ViolationKind::Panic { thread, message });
    }

    /// Called by the shim `spawn`: allocate the child, schedule the Spawn
    /// op, then start the OS thread.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        parent: Tid,
        name: &str,
        f: Box<dyn FnOnce() + Send>,
    ) -> Tid {
        let child = {
            let mut st = self.lock();
            let child = st.register_thread(name, Status::NotStarted, Some(Op::Start));
            st.live_threads += 1;
            child
        };
        {
            let mut st = self.acquire(parent, Op::Spawn { child });
            // Child inherits the parent's clock (spawn edge) and becomes
            // schedulable; its first granted op is the no-op Start.
            let pvc = st.threads[parent].vc.clone();
            vc_join(&mut st.threads[child].vc, &pvc);
            st.threads[child].status = Status::Ready;
            st.os_live += 1;
        }
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("model-{name}"))
            .spawn(move || exec.thread_main(child, f))
            .expect("spawn model thread");
        self.lock().os_handles[child] = Some(handle);
        child
    }

    /// Scheduler half of `JoinHandle::join`: blocks (in model time) until
    /// the target finished, then creates the join edge.
    pub(crate) fn join_thread(&self, me: Tid, target: Tid) {
        let mut st = self.acquire(me, Op::Join { target });
        let cvc = st.threads[target].vc.clone();
        vc_join(&mut st.threads[me].vc, &cvc);
    }

    pub(crate) fn take_os_handle(&self, target: Tid) -> Option<std::thread::JoinHandle<()>> {
        self.lock().os_handles[target].take()
    }

    /// Release a mutex without a schedule point — guard drops during branch
    /// teardown (unwinding) must not panic again.
    pub(crate) fn force_release(&self, tid: Tid, m: usize) {
        self.lock().mutex_force_release(tid, m);
    }

    /// Wait until every spawned OS thread has exited (normally or via
    /// branch teardown).
    fn wait_quiescent(&self) {
        let mut st = self.lock();
        while st.os_live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

struct StackNode {
    enabled: Vec<Tid>,
    sleep: BTreeSet<Tid>,
    running_before: Option<Tid>,
    preemptions_before: usize,
    chosen: Tid,
    tried: BTreeSet<Tid>,
}

fn next_candidate(n: &StackNode, bound: Option<usize>) -> Option<Tid> {
    let mut order: Vec<Tid> = Vec::with_capacity(n.enabled.len());
    if let Some(l) = n.running_before {
        if n.enabled.contains(&l) {
            order.push(l);
        }
    }
    for &t in &n.enabled {
        if Some(t) != n.running_before {
            order.push(t);
        }
    }
    for c in order {
        if n.tried.contains(&c) || n.sleep.contains(&c) {
            continue;
        }
        let cost = match n.running_before {
            Some(l) if l != c && n.enabled.contains(&l) => 1,
            _ => 0,
        };
        if bound.is_none_or(|b| n.preemptions_before + cost <= b) {
            return Some(c);
        }
    }
    None
}

/// Exhaustively explore the model's thread interleavings within
/// [`Config::preemption_bound`], stopping at the first violation.
///
/// The closure is run once per schedule and must be deterministic apart
/// from scheduling: all inter-thread communication must go through the
/// [`crate::shim`] primitives, and it must not spin-poll (use condvars).
pub fn explore<F: Fn()>(cfg: &Config, model: F) -> Report {
    install_panic_hook();
    let mut stack: Vec<StackNode> = Vec::new();
    let mut report = Report {
        iterations: 0,
        pruned: 0,
        complete: false,
        max_depth: 0,
        violation: None,
    };
    loop {
        if report.iterations >= cfg.max_iterations {
            break;
        }
        report.iterations += 1;
        let prefix: Vec<PrefixStep> = stack
            .iter()
            .map(|n| PrefixStep {
                chosen: n.chosen,
                sleep_add: n.tried.iter().copied().filter(|&c| c != n.chosen).collect(),
            })
            .collect();
        let exec = Arc::new(Execution::new(prefix, cfg.preemption_bound, cfg.max_steps));
        {
            let mut st = exec.lock();
            st.register_thread("main", Status::Ready, None);
            st.live_threads = 1;
            st.running = Some(0);
            st.last_running = Some(0);
        }
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
        IN_MODEL.with(|m| m.set(true));
        let result = catch_unwind(AssertUnwindSafe(&model));
        match result {
            Ok(()) => {
                let _ = catch_unwind(AssertUnwindSafe(|| exec.retire(0)));
            }
            Err(payload) => exec.handle_panic(0, payload),
        }
        CURRENT.with(|c| *c.borrow_mut() = None);
        IN_MODEL.with(|m| m.set(false));
        exec.wait_quiescent();
        // Reap any OS threads the model did not join.
        let handles: Vec<_> = {
            let mut st = exec.lock();
            st.os_handles.iter_mut().filter_map(|h| h.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let (violation, pruned, new_nodes, depth) = {
            let mut st = exec.lock();
            (
                st.violation.take(),
                st.pruned,
                std::mem::take(&mut st.new_nodes),
                st.schedule_len,
            )
        };
        report.max_depth = report.max_depth.max(depth);
        if let Some(v) = violation {
            report.violation = Some(v);
            break;
        }
        if pruned {
            report.pruned += 1;
        }
        for n in new_nodes {
            let mut tried = BTreeSet::new();
            tried.insert(n.chosen);
            stack.push(StackNode {
                enabled: n.enabled,
                sleep: n.sleep,
                running_before: n.running_before,
                preemptions_before: n.preemptions_before,
                chosen: n.chosen,
                tried,
            });
        }
        // Backtrack to the deepest node with an untried, in-budget sibling.
        let advanced = loop {
            let Some(top) = stack.last_mut() else {
                break false;
            };
            if let Some(c) = next_candidate(top, cfg.preemption_bound) {
                top.tried.insert(c);
                top.chosen = c;
                break true;
            }
            stack.pop();
        };
        if !advanced {
            report.complete = true;
            break;
        }
    }
    report
}
