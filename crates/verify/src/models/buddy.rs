//! BuddyStore replication-exchange model.
//!
//! Mirrors `crates/core/src/recovery.rs::BuddyStore::protect_checkpoint`:
//! every rank sends its checkpoint to its cyclic successor and receives its
//! predecessor's, all in the same protection round. The real transport uses
//! *buffered* sends (`send_system` copies into the peer's mailbox and
//! returns) — that buffering is exactly what makes the symmetric exchange
//! deadlock-free, and `BuddyStore`'s docs promise it only by convention.
//!
//! [`check_buddy_buffered`] transcribes the buffered protocol over three
//! rank threads and proves every schedule terminates with each rank holding
//! its own blob plus its predecessor's.
//!
//! [`check_buddy_rendezvous`] swaps in rendezvous (synchronous) sends that
//! block until the receiver consumes — the classic symmetric-exchange
//! cycle. The checker must report all three ranks deadlocked, naming them.

use std::sync::Arc;

use crate::shim::{thread, Condvar, Mutex};
use crate::{explore, Config, Report};

const RANKS: usize = 3;

/// One rank's mailbox: (from, payload) pairs, buffered.
struct Mailbox {
    inbox: Mutex<Vec<(usize, usize)>>,
    cv: Condvar,
    /// Rendezvous mode only: count of deposits not yet consumed; senders
    /// wait for their deposit to be taken.
    pending: Mutex<usize>,
    pending_cv: Condvar,
}

impl Mailbox {
    fn new(rank: usize) -> Self {
        Self {
            inbox: Mutex::named(&format!("buddy.inbox[{rank}]"), Vec::new()),
            cv: Condvar::named(&format!("buddy.inbox_cv[{rank}]")),
            pending: Mutex::named(&format!("buddy.pending[{rank}]"), 0),
            pending_cv: Condvar::named(&format!("buddy.pending_cv[{rank}]")),
        }
    }

    /// Buffered send: deposit and return (recovery.rs `send_system`).
    fn send_buffered(&self, from: usize, payload: usize) {
        let mut inbox = self.inbox.lock();
        inbox.push((from, payload));
        self.cv.notify_all();
    }

    /// Rendezvous send: deposit, then block until the receiver consumes.
    fn send_rendezvous(&self, from: usize, payload: usize) {
        {
            let mut n = self.pending.lock();
            *n += 1;
        }
        self.send_buffered(from, payload);
        let mut n = self.pending.lock();
        while *n > 0 {
            self.pending_cv.wait(&mut n);
        }
    }

    /// Receive the message sent by `from`, blocking until it arrives.
    fn recv_from(&self, from: usize, rendezvous: bool) -> usize {
        let payload = {
            let mut inbox = self.inbox.lock();
            loop {
                if let Some(pos) = inbox.iter().position(|&(f, _)| f == from) {
                    break inbox.remove(pos).1;
                }
                self.cv.wait(&mut inbox);
            }
        };
        if rendezvous {
            let mut n = self.pending.lock();
            *n -= 1;
            self.pending_cv.notify_all();
        }
        payload
    }
}

fn run(rendezvous: bool, cfg: &Config) -> Report {
    explore(cfg, move || {
        let boxes: Arc<Vec<Mailbox>> = Arc::new((0..RANKS).map(Mailbox::new).collect());

        let mut handles = Vec::new();
        for r in 0..RANKS {
            let boxes = Arc::clone(&boxes);
            handles.push(thread::spawn_named(&format!("buddy.r{r}"), move || {
                // protect_checkpoint, K = 1: send to (r + 1) % N, then
                // receive the blob of (r + N - 1) % N.
                let succ = (r + 1) % RANKS;
                let pred = (r + RANKS - 1) % RANKS;
                if rendezvous {
                    boxes[succ].send_rendezvous(r, r);
                } else {
                    boxes[succ].send_buffered(r, r);
                }
                let got = boxes[r].recv_from(pred, rendezvous);
                assert_eq!(got, pred, "rank {r} received the wrong buddy blob");
            }));
        }
        for h in handles {
            h.join();
        }
    })
}

/// Buffered exchange (the shipped protocol): deadlock-free, every rank ends
/// holding `{own, predecessor}` — exhaustively checked.
pub fn check_buddy_buffered(cfg: &Config) -> Report {
    run(false, cfg)
}

/// Rendezvous exchange (the seeded bug): all ranks block in-send waiting on
/// each other — the checker must report the cycle.
pub fn check_buddy_rendezvous(cfg: &Config) -> Report {
    run(true, cfg)
}
