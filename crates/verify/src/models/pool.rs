//! WorkerPool job/cursor protocol model.
//!
//! Mirrors `crates/sync/src/pool.rs`: a caller publishes a job under the
//! state mutex (epoch bump + `work` notify), workers claim chunk indices
//! from a shared atomic `cursor` via `fetch_add`, write their output slots,
//! then decrement `active` under the mutex and signal `done`; the caller
//! resets `cursor` to 0 between jobs. The output slots are [`RaceCell`]s:
//! if any schedule lets the caller read a slot without a happens-before
//! edge from the worker's write — or lets job *N+1*'s writes overlap job
//! *N*'s reads — the checker reports a data race.
//!
//! Variants:
//! * [`PoolVariant::Shipped`] — the post-fix protocol (cursor reset
//!   `Release`, claims `AcqRel`, caller waits `active == 0` under the
//!   mutex). Two workers × two jobs, exhaustively clean: this is the
//!   "two-job reuse" schedule ISSUE 8 requires covered.
//! * [`PoolVariant::RelaxedCursorFastPath`] — seeded reintroduction of the
//!   all-`Relaxed` cursor bug: the caller treats `cursor.load(Relaxed) >=
//!   total` as job completion and skips the mutex handshake. `Relaxed`
//!   carries no edge, so reading the output slots races with the worker's
//!   writes.
//! * [`PoolVariant::AcquireCursorFastPath`] — the subtler protocol bug that
//!   survives even correct orderings: the cursor counts *claims*, not
//!   *completions*, so `cursor >= total` can be true while a claimed slot
//!   is still being written. The checker flags the write-after-read race
//!   against the caller's early slot read.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::shim::{thread, AtomicUsize, Condvar, Mutex, RaceCell};
use crate::{explore, Config, Report};

/// Which cursor protocol to model-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolVariant {
    /// Post-fix protocol: `Release` reset / `AcqRel` claim / mutex handshake.
    Shipped,
    /// Seeded bug: all-`Relaxed` cursor + completion inferred from the cursor.
    RelaxedCursorFastPath,
    /// Seeded bug: correct orderings, but completion still inferred from the
    /// claim cursor.
    AcquireCursorFastPath,
}

struct PoolState {
    epoch: usize,
    job_total: usize,
    active: usize,
    shutdown: bool,
}

/// Explore the pool protocol under `cfg`. `Shipped` runs 2 workers × 2 jobs
/// (the job-reuse schedule); the fast-path variants run 1 worker × 1 job —
/// the smallest configuration whose race witness fits the preemption bound.
pub fn check_pool(variant: PoolVariant, cfg: &Config) -> Report {
    let (workers, jobs, total) = match variant {
        PoolVariant::Shipped => (2usize, 2usize, 2usize),
        _ => (1, 1, 2),
    };
    let (reset_ord, claim_ord, probe_ord) = match variant {
        PoolVariant::RelaxedCursorFastPath => {
            (Ordering::Relaxed, Ordering::Relaxed, Ordering::Relaxed)
        }
        _ => (Ordering::Release, Ordering::AcqRel, Ordering::Acquire),
    };

    explore(cfg, move || {
        let state = Arc::new(Mutex::named(
            "pool.state",
            PoolState {
                epoch: 0,
                job_total: 0,
                active: 0,
                shutdown: false,
            },
        ));
        let work = Arc::new(Condvar::named("pool.work"));
        let done = Arc::new(Condvar::named("pool.done"));
        let cursor = Arc::new(AtomicUsize::named("pool.cursor", 0));
        let out: Arc<Vec<RaceCell<usize>>> = Arc::new(
            (0..total)
                .map(|i| RaceCell::named(&format!("pool.out[{i}]"), 0))
                .collect(),
        );

        let mut handles = Vec::new();
        for w in 0..workers {
            let state = Arc::clone(&state);
            let work = Arc::clone(&work);
            let done = Arc::clone(&done);
            let cursor = Arc::clone(&cursor);
            let out = Arc::clone(&out);
            handles.push(thread::spawn_named(&format!("pool.w{w}"), move || {
                let mut seen_epoch = 0;
                loop {
                    // Mirrors pool.rs worker_loop: sleep until a new epoch
                    // or shutdown is published.
                    let job_total;
                    {
                        let mut st = state.lock();
                        while !st.shutdown && st.epoch == seen_epoch {
                            work.wait(&mut st);
                        }
                        if st.shutdown {
                            return;
                        }
                        seen_epoch = st.epoch;
                        job_total = st.job_total;
                    }
                    // Claim-and-run: chunk size 1.
                    loop {
                        let i = cursor.fetch_add(1, claim_ord);
                        if i >= job_total {
                            break;
                        }
                        out[i].set(seen_epoch);
                    }
                    let mut st = state.lock();
                    st.active -= 1;
                    if st.active == 0 {
                        done.notify_all();
                    }
                }
            }));
        }

        for job in 1..=jobs {
            // Job publish: reset the cursor, then advertise the new epoch
            // under the mutex (pool.rs run()).
            cursor.store(0, reset_ord);
            {
                let mut st = state.lock();
                st.epoch = job;
                st.job_total = total;
                st.active = workers;
                work.notify_all();
            }

            match variant {
                PoolVariant::Shipped => {
                    let mut st = state.lock();
                    while st.active > 0 {
                        done.wait(&mut st);
                    }
                }
                PoolVariant::RelaxedCursorFastPath | PoolVariant::AcquireCursorFastPath => {
                    // Seeded bug: "everything claimed" read straight off the
                    // cursor, taken as "everything completed".
                    if cursor.load(probe_ord) < total {
                        let mut st = state.lock();
                        while st.active > 0 {
                            done.wait(&mut st);
                        }
                    }
                }
            }

            for slot in out.iter() {
                let v = slot.get();
                if variant == PoolVariant::Shipped {
                    assert_eq!(v, job, "pool output slot missed job epoch {job}");
                }
            }
        }

        {
            let mut st = state.lock();
            st.shutdown = true;
            work.notify_all();
        }
        for h in handles {
            h.join();
        }
    })
}
