//! Checked protocol models of the runtime's concurrency cores.
//!
//! Each model is a faithful, shrunken transcription of one production
//! protocol into [`crate::shim`] primitives, small enough for exhaustive
//! bounded exploration yet keeping every ordering edge the real code relies
//! on. Each module documents the file it mirrors; seeded-bug variants
//! (`*FastPath`, `CondemnWithoutRelease`, rendezvous buddy sends) exist so
//! CI can prove the checker still *catches* the bug class, not just that
//! the shipped protocol passes.

pub mod buddy;
pub mod health;
pub mod pool;
pub mod queue;
