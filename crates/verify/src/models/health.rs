//! HealthMonitor state-machine model.
//!
//! Mirrors `crates/device/src/health.rs`: an `AtomicU8` driven purely by
//! CAS transitions (`mark_suspect`: Healthy→Suspect, `mark_recovered`:
//! Suspect→Healthy, `condemn`: unconditional swap to Lost) plus the
//! release latch (`Mutex<bool>` + `Condvar`) that `condemn` must open so
//! threads parked in `block_until_released` can proceed.
//!
//! [`check_health_race`] races a watchdog flapping suspect/recover against
//! a condemner and a latch waiter and asserts, under every schedule, that
//! `Lost` is sticky (no recover CAS can resurrect a condemned device) and
//! that the waiter always gets out (checker-level deadlock detection).
//!
//! [`check_condemn_without_release`] is the seeded bug: condemn forgets to
//! open the latch. The checker must report the waiter (and the joiner
//! behind it) as deadlocked — the invariant PR 7 enforces by convention,
//! now machine-checked.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::shim::{thread, AtomicU8, Condvar, Mutex};
use crate::{explore, Config, Report};

const HEALTHY: u8 = 0;
const SUSPECT: u8 = 1;
const LOST: u8 = 2;

struct Monitor {
    state: AtomicU8,
    released: Mutex<bool>,
    cv: Condvar,
}

impl Monitor {
    fn new() -> Self {
        Self {
            state: AtomicU8::named("health.state", HEALTHY),
            released: Mutex::named("health.latch", false),
            cv: Condvar::named("health.latch_cv"),
        }
    }

    fn mark_suspect(&self) -> bool {
        self.state
            .compare_exchange(HEALTHY, SUSPECT, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn mark_recovered(&self) -> bool {
        self.state
            .compare_exchange(SUSPECT, HEALTHY, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn condemn(&self, release: bool) {
        self.state.swap(LOST, Ordering::SeqCst);
        if release {
            let mut g = self.released.lock();
            *g = true;
            self.cv.notify_all();
        }
    }

    fn block_until_released(&self) {
        let mut g = self.released.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
    }
}

fn run(release_on_condemn: bool, cfg: &Config) -> Report {
    explore(cfg, move || {
        let mon = Arc::new(Monitor::new());

        let flapper = {
            let mon = Arc::clone(&mon);
            thread::spawn_named("health.watchdog", move || {
                // A deadline miss followed by an observed completion.
                mon.mark_suspect();
                mon.mark_recovered();
            })
        };
        let condemner = {
            let mon = Arc::clone(&mon);
            thread::spawn_named("health.condemner", move || {
                mon.condemn(release_on_condemn);
            })
        };
        let waiter = {
            let mon = Arc::clone(&mon);
            thread::spawn_named("health.waiter", move || {
                mon.block_until_released();
            })
        };

        flapper.join();
        condemner.join();
        waiter.join();

        // Sticky Lost: whatever interleaving of the suspect/recover CAS pair
        // ran against the swap, a condemned device can never read back as
        // anything but Lost (recover's CAS expects Suspect, not Lost).
        assert_eq!(
            mon.state.load(Ordering::SeqCst),
            LOST,
            "condemned monitor resurrected"
        );
        assert!(*mon.released.lock(), "condemn left the latch closed");
    })
}

/// Shipped protocol: condemn releases the latch. Must be exhaustively clean.
pub fn check_health_race(cfg: &Config) -> Report {
    run(true, cfg)
}

/// Seeded bug: condemn without the latch release — the waiter deadlocks.
pub fn check_condemn_without_release(cfg: &Config) -> Report {
    run(false, cfg)
}
