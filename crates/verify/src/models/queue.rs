//! ExecQueue submit/fence vs HealthMonitor condemn model.
//!
//! Mirrors `crates/device/src/stream.rs` (`ExecQueue` FIFO worker +
//! `guarded_fence`) and `crates/device/src/health.rs` (deadline-bounded
//! fence waits escalating `Healthy → Suspect → Lost`, with the condemn path
//! releasing the hang latch so a wedged worker can drain and join).
//!
//! Scenarios:
//! * [`QueueScenario::CondemnDrains`] — a `Hang` item wedges the worker on
//!   the latch; the host's fence deadline fires, it marks the queue
//!   suspect, condemns it, and releases the latch. Invariants checked
//!   under every schedule: FIFO order of executed work survives, the final
//!   state is `Lost`, and the worker drains and joins (no schedule leaks a
//!   blocked worker — that would surface as a model deadlock).
//! * [`QueueScenario::RecoverOnCompletion`] — no hang. The fence deadline
//!   may still fire spuriously (model time is schedule order); the host
//!   marks the queue suspect, then on observed completion marks it
//!   recovered. If its bounded retries exhaust first it condemns. Checked:
//!   `completed ⇒ Healthy`, `!completed ⇒ Lost ∧ latch released`, and the
//!   single task always executes exactly once before join.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::shim::{thread, AtomicU8, Condvar, Mutex, RaceCell};
use crate::{explore, Config, Report};

/// Health states, numbered as in `psdns_device::health::HealthState`.
const HEALTHY: u8 = 0;
const SUSPECT: u8 = 1;
const LOST: u8 = 2;

/// Which fence-vs-condemn scenario to model-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueScenario {
    /// Worker wedges on the latch; condemn must release it and preserve FIFO.
    CondemnDrains,
    /// Worker is live; spurious deadline must end in recover (or a clean
    /// condemn if retries exhaust first).
    RecoverOnCompletion,
}

#[derive(Clone, Copy)]
enum Item {
    Task(usize),
    Hang,
    Fence,
}

struct QState {
    fifo: Vec<Item>,
    shutdown: bool,
}

struct Latch {
    released: Mutex<bool>,
    cv: Condvar,
}

pub fn check_queue(scenario: QueueScenario, cfg: &Config) -> Report {
    explore(cfg, move || {
        let q = Arc::new(Mutex::named(
            "queue.fifo",
            QState {
                fifo: Vec::new(),
                shutdown: false,
            },
        ));
        let qcv = Arc::new(Condvar::named("queue.cv"));
        let log = Arc::new(Mutex::named("queue.log", Vec::<usize>::new()));
        let ticket = Arc::new(Mutex::named("fence.ticket", false));
        let tcv = Arc::new(Condvar::named("fence.cv"));
        let state = Arc::new(AtomicU8::named("health.state", HEALTHY));
        let latch = Arc::new(Latch {
            released: Mutex::named("health.latch", false),
            cv: Condvar::named("health.latch_cv"),
        });
        // Plain (non-atomic) flag the host reads after join: catches any
        // schedule where the join edge fails to order the worker's last write.
        let drained = Arc::new(RaceCell::named("queue.drained", false));

        let worker = {
            let q = Arc::clone(&q);
            let qcv = Arc::clone(&qcv);
            let log = Arc::clone(&log);
            let ticket = Arc::clone(&ticket);
            let tcv = Arc::clone(&tcv);
            let latch = Arc::clone(&latch);
            let drained = Arc::clone(&drained);
            thread::spawn_named("queue.worker", move || {
                loop {
                    let item = {
                        let mut st = q.lock();
                        while st.fifo.is_empty() && !st.shutdown {
                            qcv.wait(&mut st);
                        }
                        if st.fifo.is_empty() {
                            drained.set(true);
                            return;
                        }
                        st.fifo.remove(0)
                    };
                    match item {
                        Item::Task(i) => log.lock().push(i),
                        Item::Hang => {
                            // Models a kernel stuck on a device that never
                            // replies: only the health latch frees it.
                            let mut g = latch.released.lock();
                            while !*g {
                                latch.cv.wait(&mut g);
                            }
                        }
                        Item::Fence => {
                            let mut t = ticket.lock();
                            *t = true;
                            tcv.notify_all();
                        }
                    }
                }
            })
        };

        let submit = |item: Item| {
            let mut st = q.lock();
            st.fifo.push(item);
            qcv.notify_all();
        };

        submit(Item::Task(1));
        if scenario == QueueScenario::CondemnDrains {
            submit(Item::Hang);
            submit(Item::Task(2));
        }
        submit(Item::Fence);

        // guarded_fence: deadline-bounded wait with a small retry budget
        // (stream.rs guarded_fence + RetryPolicy).
        let completed = {
            let mut t = ticket.lock();
            let mut attempts = 0usize;
            loop {
                if *t {
                    break true;
                }
                let timed_out = tcv.wait_timeout(&mut t, Duration::from_millis(1));
                if *t {
                    break true;
                }
                if timed_out {
                    // First deadline miss: escalate Healthy -> Suspect.
                    let _ = state.compare_exchange(
                        HEALTHY,
                        SUSPECT,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    attempts += 1;
                    if attempts >= 2 {
                        break false;
                    }
                }
            }
        };

        if completed {
            // Observed completion: un-suspect if the deadline fired spuriously.
            let _ = state.compare_exchange(SUSPECT, HEALTHY, Ordering::SeqCst, Ordering::SeqCst);
        } else {
            // Retries exhausted: condemn (sticky) and open the hang latch so
            // the worker can drain — the exact PR-7 release invariant.
            state.swap(LOST, Ordering::SeqCst);
            let mut g = latch.released.lock();
            *g = true;
            latch.cv.notify_all();
        }

        {
            let mut st = q.lock();
            st.shutdown = true;
            qcv.notify_all();
        }
        worker.join();

        assert!(drained.get(), "worker exited without draining the queue");
        let final_state = state.load(Ordering::SeqCst);
        let executed = log.lock().clone();
        match scenario {
            QueueScenario::CondemnDrains => {
                // The hang item can only ever be passed via the condemn
                // path, so the fence can't have completed in time.
                assert!(!completed, "fence completed past an un-released hang");
                assert_eq!(final_state, LOST, "condemned queue must stay Lost");
                assert_eq!(executed, vec![1, 2], "FIFO order broken across condemn");
                assert!(*latch.released.lock(), "condemn left the latch closed");
            }
            QueueScenario::RecoverOnCompletion => {
                assert_eq!(executed, vec![1], "task must run exactly once");
                if completed {
                    assert_eq!(final_state, HEALTHY, "completed fence must recover");
                } else {
                    assert_eq!(final_state, LOST, "exhausted retries must condemn");
                    assert!(*latch.released.lock(), "condemn left the latch closed");
                }
            }
        }
    })
}
