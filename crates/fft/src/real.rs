//! Real-to-complex and complex-to-real transforms of even length, via the
//! half-length packing trick. The paper's transforms are complex-to-complex
//! in y and z but complex-to-real in x (conjugate symmetry of real fields,
//! §3.3); this module provides that x-direction transform.

use crate::complex::{Complex, Real};
use crate::plan::{Direction, FftPlan};

/// Plan for real transforms of even length `n`.
///
/// * `forward`: `n` reals → `n/2 + 1` complex (half spectrum; the rest is
///   implied by `X[n-k] = conj(X[k])`).
/// * `inverse`: `n/2 + 1` complex → `n` reals, including the `1/n` factor.
pub struct RealFftPlan<T: Real> {
    n: usize,
    h: usize,
    inner: FftPlan<T>,
    /// `exp(-2πi·k/n)` for `k ∈ [0, h]`.
    twiddle: Vec<Complex<T>>,
}

impl<T: Real> RealFftPlan<T> {
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "real FFT length must be even, got {n}"
        );
        let h = n / 2;
        let inner = FftPlan::new(h);
        let twiddle = (0..=h)
            .map(|k| {
                let ang = -2.0 * core::f64::consts::PI * k as f64 / n as f64;
                Complex::from_f64(ang.cos(), ang.sin())
            })
            .collect();
        Self {
            n,
            h,
            inner,
            twiddle,
        }
    }

    /// Logical (real) transform length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex outputs of the forward transform: `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.h + 1
    }

    /// Scratch (complex elements) needed by the allocation-free entry points.
    pub fn scratch_len(&self) -> usize {
        self.h + self.inner.scratch_len()
    }

    /// Forward transform without allocation.
    pub fn forward_with_scratch(
        &self,
        input: &[T],
        output: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.h + 1);
        assert!(scratch.len() >= self.scratch_len());
        let (packed, inner_scratch) = scratch.split_at_mut(self.h);
        for (j, p) in packed.iter_mut().enumerate() {
            *p = Complex::new(input[2 * j], input[2 * j + 1]);
        }
        self.inner
            .execute_with_scratch(packed, inner_scratch, Direction::Forward);
        let half = T::from_f64(0.5);
        for k in 0..=self.h {
            let zk = packed[k % self.h];
            let zr = packed[(self.h - k) % self.h].conj();
            let even = (zk + zr).scale(half);
            // odd = (zk - zr) / (2i) = (zk - zr)·(-i/2)
            let odd = (zk - zr).mul_neg_i().scale(half);
            output[k] = even + self.twiddle[k] * odd;
        }
    }

    /// Forward transform; allocates its own scratch.
    pub fn forward(&self, input: &[T], output: &mut [Complex<T>]) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.forward_with_scratch(input, output, &mut scratch);
    }

    /// Inverse transform (includes `1/n`) without allocation.
    ///
    /// Only the imaginary parts of `input[0]` and `input[h]` are ignored
    /// (they are zero for any spectrum of a real signal).
    pub fn inverse_with_scratch(
        &self,
        input: &[Complex<T>],
        output: &mut [T],
        scratch: &mut [Complex<T>],
    ) {
        assert_eq!(input.len(), self.h + 1);
        assert_eq!(output.len(), self.n);
        assert!(scratch.len() >= self.scratch_len());
        let (packed, inner_scratch) = scratch.split_at_mut(self.h);
        let half = T::from_f64(0.5);
        for k in 0..self.h {
            let xk = input[k];
            let xr = input[self.h - k].conj();
            let even = (xk + xr).scale(half);
            // odd = (xk - xr)/2 · e^{+2πik/n}; the conjugate of twiddle[k].
            let odd = (xk - xr).scale(half) * self.twiddle[k].conj();
            packed[k] = even + odd.mul_i();
        }
        self.inner
            .execute_with_scratch(packed, inner_scratch, Direction::Inverse);
        for (j, p) in packed.iter().enumerate() {
            output[2 * j] = p.re;
            output[2 * j + 1] = p.im;
        }
    }

    /// Inverse transform; allocates its own scratch.
    pub fn inverse(&self, input: &[Complex<T>], output: &mut [T]) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.inverse_with_scratch(input, output, &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::Complex64;

    #[test]
    fn forward_matches_naive_dft_half_spectrum() {
        for n in [2usize, 4, 6, 8, 12, 16, 24, 48, 96, 128] {
            let plan = RealFftPlan::<f64>::new(n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.3).collect();
            let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
            let reference = dft_naive(&xc);
            let mut spec = vec![Complex64::zero(); plan.spectrum_len()];
            plan.forward(&x, &mut spec);
            for k in 0..=n / 2 {
                assert!(
                    (spec[k] - reference[k]).abs() < 1e-9,
                    "n={n} k={k}: {:?} vs {:?}",
                    spec[k],
                    reference[k]
                );
            }
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 32;
        let plan = RealFftPlan::<f64>::new(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 2.0 - 0.1).collect();
        let mut spec = vec![Complex64::zero(); plan.spectrum_len()];
        plan.forward(&x, &mut spec);
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[n / 2].im.abs() < 1e-12);
    }

    #[test]
    fn roundtrip_identity() {
        for n in [2usize, 6, 10, 18, 30, 64, 192] {
            let plan = RealFftPlan::<f64>::new(n);
            let x: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 1.3).sin() * (i as f64))
                .collect();
            let mut spec = vec![Complex64::zero(); plan.spectrum_len()];
            plan.forward(&x, &mut spec);
            let mut back = vec![0.0; n];
            plan.inverse(&spec, &mut back);
            for j in 0..n {
                assert!(
                    (back[j] - x[j]).abs() < 1e-9 * (1.0 + x[j].abs()),
                    "n={n} j={j}"
                );
            }
        }
    }

    #[test]
    fn pure_cosine_lands_in_single_bin() {
        let n = 64;
        let kk = 5;
        let plan = RealFftPlan::<f64>::new(n);
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * kk as f64 * j as f64 / n as f64).cos())
            .collect();
        let mut spec = vec![Complex64::zero(); plan.spectrum_len()];
        plan.forward(&x, &mut spec);
        for (k, sp) in spec.iter().enumerate() {
            let expect = if k == kk { n as f64 / 2.0 } else { 0.0 };
            assert!((sp.re - expect).abs() < 1e-9, "k={k}");
            assert!(sp.im.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        let _ = RealFftPlan::<f64>::new(9);
    }
}
