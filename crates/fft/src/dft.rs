//! Naive O(n²) discrete Fourier transform — the ground truth against which
//! every fast path in this crate is tested.

use crate::complex::{Complex, Real};

/// Forward DFT, unnormalized: `X[k] = Σ_j x[j]·exp(-2πi·jk/n)`.
pub fn dft_naive<T: Real>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    let n = x.len();
    let mut out = vec![Complex::zero(); n];
    if n == 0 {
        return out;
    }
    let base = -2.0 * core::f64::consts::PI / n as f64;
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &v) in x.iter().enumerate() {
            let ang = base * ((j * k) % n) as f64;
            acc += v * Complex::from_f64(ang.cos(), ang.sin());
        }
        *o = acc;
    }
    out
}

/// Inverse DFT with `1/n` normalization: `idft(dft(x)) == x`.
pub fn idft_naive<T: Real>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    let n = x.len();
    let mut out = vec![Complex::zero(); n];
    if n == 0 {
        return out;
    }
    let base = 2.0 * core::f64::consts::PI / n as f64;
    let inv = T::ONE / T::from_usize(n);
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &v) in x.iter().enumerate() {
            let ang = base * ((j * k) % n) as f64;
            acc += v * Complex::from_f64(ang.cos(), ang.sin());
        }
        *o = acc.scale(inv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn dft_of_constant_is_delta() {
        let n = 8;
        let x = vec![Complex64::one(); n];
        let y = dft_naive(&x);
        assert!((y[0].re - n as f64).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Complex64> = (0..7)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let y = idft_naive(&dft_naive(&x));
        for (a, b) in y.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(dft_naive::<f64>(&[]).is_empty());
        assert!(idft_naive::<f64>(&[]).is_empty());
    }
}
