//! Reusable plan-owned scratch buffers.
//!
//! Every transform needs workspace, but allocating it per call puts `malloc`
//! on the hot path of loops that execute thousands of times per step (the
//! paper's pencil pipeline launches one batched FFT per pencil per
//! direction). A [`ScratchPool`] lives inside each plan: callers `take` a
//! buffer, use it, and `give` it back. After warm-up the pool holds one
//! buffer per concurrent user at the plan's scratch size, so steady-state
//! take/give is a mutex-guarded `Vec::pop`/`push` with no heap traffic —
//! this is what makes the zero-allocation guarantee of
//! `ManyPlan::execute_parallel` hold.

use psdns_sync::Mutex;

/// A small stack of reusable buffers, one per concurrent user.
pub struct ScratchPool<U> {
    bufs: Mutex<Vec<Vec<U>>>,
}

impl<U> Default for ScratchPool<U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U> ScratchPool<U> {
    pub const fn new() -> Self {
        Self {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.bufs.lock().len()
    }
}

impl<U: Clone + Default> ScratchPool<U> {
    /// Borrow a buffer of at least `len` elements (zero-filled on growth;
    /// contents are otherwise whatever the previous user left — scratch
    /// semantics). Steady state performs no allocation: the popped buffer
    /// already has the required capacity.
    pub fn take(&self, len: usize) -> Vec<U> {
        let mut buf = self.bufs.lock().pop().unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, U::default());
        }
        buf
    }

    /// Return a buffer for reuse.
    pub fn give(&self, buf: Vec<U>) {
        self.bufs.lock().push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_capacity() {
        let pool = ScratchPool::<f64>::new();
        let a = pool.take(128);
        let cap = a.capacity();
        let ptr = a.as_ptr();
        pool.give(a);
        let b = pool.take(100); // smaller request: same buffer, no realloc
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.capacity(), cap);
        pool.give(b);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_takes_get_distinct_buffers() {
        let pool = ScratchPool::<u8>::new();
        let a = pool.take(16);
        let b = pool.take(16);
        assert_ne!(a.as_ptr(), b.as_ptr());
        pool.give(a);
        pool.give(b);
        assert_eq!(pool.idle(), 2);
    }
}
