//! Reusable plan-owned scratch buffers.
//!
//! Every transform needs workspace, but allocating it per call puts `malloc`
//! on the hot path of loops that execute thousands of times per step (the
//! paper's pencil pipeline launches one batched FFT per pencil per
//! direction). A [`ScratchPool`] lives inside each plan: callers `take` a
//! buffer, use it, and `give` it back. After warm-up the pool holds one
//! buffer per concurrent user at the plan's scratch size, so steady-state
//! take/give is a mutex-guarded `Vec::pop`/`push` with no heap traffic —
//! this is what makes the zero-allocation guarantee of
//! `ManyPlan::execute_parallel` hold.
//!
//! Buffers are [`AlignedVec`]s: every allocation starts on its own
//! [`SCRATCH_ALIGN`]-byte (cache-line) boundary, so when the worker pool
//! hands one slot to each participant, no two threads' scratch ever shares a
//! line — the false-sharing failure mode of `Vec`-based slots, whose
//! allocator-placed headers can pack adjacent buffers into one line.

use psdns_sync::Mutex;
use std::alloc::{alloc, dealloc, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) of every scratch allocation: one x86 cache line / half
/// an Apple-silicon line. Also comfortably covers any vector-lane alignment
/// the autovectorized codelets might profit from.
pub const SCRATCH_ALIGN: usize = 64;

/// A fixed-capacity heap buffer aligned to [`SCRATCH_ALIGN`], dereferencing
/// to `[U]`. Grows only through [`ensure_len`](Self::ensure_len); contents
/// are scratch semantics (unspecified after growth except that every element
/// is initialized).
pub struct AlignedVec<U> {
    ptr: NonNull<U>,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, so it is Send/Sync
// exactly when its element type is.
unsafe impl<U: Send> Send for AlignedVec<U> {}
unsafe impl<U: Sync> Sync for AlignedVec<U> {}

impl<U> AlignedVec<U> {
    pub const fn new() -> Self {
        Self {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(
            cap * std::mem::size_of::<U>(),
            std::mem::align_of::<U>().max(SCRATCH_ALIGN),
        )
        .expect("scratch layout overflow")
    }
}

impl<U> Default for AlignedVec<U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U: Copy + Default> AlignedVec<U> {
    /// A buffer of `len` default-filled elements.
    pub fn with_len(len: usize) -> Self {
        let mut v = Self::new();
        v.ensure_len(len);
        v
    }

    /// Make the buffer at least `len` elements long. Newly exposed elements
    /// are default-filled; existing contents are *not* preserved across a
    /// reallocation (scratch semantics).
    pub fn ensure_len(&mut self, len: usize) {
        if len > self.cap {
            let new_cap = len.max(self.cap * 2);
            // SAFETY: non-zero size (len > cap >= 0 so len > 0), layout from
            // a valid size/align pair; the old block — if any — is freed
            // with the same layout it was allocated with.
            unsafe {
                let new = alloc(Self::layout(new_cap)) as *mut U;
                let new = NonNull::new(new).expect("scratch allocation failed");
                if self.cap > 0 {
                    dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap));
                }
                self.ptr = new;
            }
            self.cap = new_cap;
            self.len = 0; // contents lost; refill below
        }
        if len > self.len {
            // SAFETY: [len, cap) is allocated but uninitialized (or stale);
            // U: Copy means no drop obligations when overwriting.
            unsafe {
                for i in self.len..len {
                    self.ptr.as_ptr().add(i).write(U::default());
                }
            }
        }
        self.len = self.len.max(len);
    }
}

impl<U> Drop for AlignedVec<U> {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: allocated in ensure_len with this exact layout;
            // elements are Copy-constrained at creation so need no drop.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) }
        }
    }
}

impl<U> Deref for AlignedVec<U> {
    type Target = [U];
    fn deref(&self) -> &[U] {
        // SAFETY: [0, len) is initialized (ensure_len) and uniquely owned.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<U> DerefMut for AlignedVec<U> {
    fn deref_mut(&mut self) -> &mut [U] {
        // SAFETY: see Deref; &mut self gives exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

/// A small stack of reusable buffers, one per concurrent user.
pub struct ScratchPool<U> {
    bufs: Mutex<Vec<AlignedVec<U>>>,
}

impl<U> Default for ScratchPool<U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U> ScratchPool<U> {
    pub const fn new() -> Self {
        Self {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.bufs.lock().len()
    }
}

impl<U: Copy + Default> ScratchPool<U> {
    /// Borrow a buffer of at least `len` elements (default-filled on growth;
    /// contents are otherwise whatever the previous user left — scratch
    /// semantics). Steady state performs no allocation: the popped buffer
    /// already has the required capacity.
    pub fn take(&self, len: usize) -> AlignedVec<U> {
        let mut buf = self.bufs.lock().pop().unwrap_or_default();
        buf.ensure_len(len);
        buf
    }

    /// Return a buffer for reuse.
    pub fn give(&self, buf: AlignedVec<U>) {
        self.bufs.lock().push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_capacity() {
        let pool = ScratchPool::<f64>::new();
        let a = pool.take(128);
        let cap = a.capacity();
        let ptr = a.as_ptr();
        pool.give(a);
        let b = pool.take(100); // smaller request: same buffer, no realloc
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.capacity(), cap);
        pool.give(b);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_takes_get_distinct_buffers() {
        let pool = ScratchPool::<u8>::new();
        let a = pool.take(16);
        let b = pool.take(16);
        assert_ne!(a.as_ptr(), b.as_ptr());
        pool.give(a);
        pool.give(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn buffers_are_cache_line_aligned() {
        let pool = ScratchPool::<f64>::new();
        for len in [1usize, 7, 64, 1000] {
            let buf = pool.take(len);
            assert_eq!(buf.as_ptr() as usize % SCRATCH_ALIGN, 0, "len={len}");
            assert_eq!(buf.len(), len);
            pool.give(buf);
        }
    }

    #[test]
    fn growth_default_fills_and_slices_work() {
        let mut v = AlignedVec::<u32>::with_len(4);
        assert_eq!(&v[..], &[0, 0, 0, 0]);
        v[2] = 7;
        v.ensure_len(3); // shrink request: no-op
        assert_eq!(v.len(), 4);
        assert_eq!(v[2], 7);
        v.ensure_len(100);
        assert_eq!(v.len(), 100);
        assert!(v.iter().skip(4).all(|&x| x == 0));
        let (a, b) = v.split_at_mut(10);
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 90);
    }
}
