//! Batched/strided transforms — the moral equivalent of cuFFT's
//! `cufftPlanMany` advanced data layout, which the paper's code uses to
//! transform whole pencils of lines in one call ("Strided FFTs are performed
//! in the y direction to avoid reordering on the GPU", Fig. 6).

use crate::complex::{Complex, Real};
use crate::plan::{Direction, FftPlan};

/// A plan that executes `count` transforms of length `n` over a strided
/// layout: element `i` of batch `b` lives at `data[b·dist + i·stride]`.
pub struct ManyPlan<T: Real> {
    plan: FftPlan<T>,
    n: usize,
    stride: usize,
    dist: usize,
    count: usize,
}

impl<T: Real> ManyPlan<T> {
    pub fn new(n: usize, stride: usize, dist: usize, count: usize) -> Self {
        assert!(n > 0 && stride > 0 && count > 0);
        assert!(
            count == 1 || dist > 0,
            "dist must be positive for count > 1"
        );
        Self {
            plan: FftPlan::new(n),
            n,
            stride,
            dist,
            count,
        }
    }

    /// Contiguous batch layout: line `b` occupies `data[b·n .. (b+1)·n]`.
    pub fn contiguous(n: usize, count: usize) -> Self {
        Self::new(n, 1, n, count)
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    pub fn count(&self) -> usize {
        self.count
    }

    /// Minimum `data.len()` accepted by [`execute`](Self::execute).
    pub fn required_len(&self) -> usize {
        (self.count - 1) * self.dist + (self.n - 1) * self.stride + 1
    }

    /// Scratch requirement (complex elements) for
    /// [`execute_with_scratch`](Self::execute_with_scratch).
    pub fn scratch_len(&self) -> usize {
        if self.stride == 1 {
            self.plan.scratch_len()
        } else {
            self.n + self.plan.scratch_len()
        }
    }

    /// Execute all batches in place, allocating scratch.
    pub fn execute(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.execute_with_scratch(data, &mut scratch, dir);
    }

    /// Execute all batches in place with caller-provided scratch.
    pub fn execute_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        assert!(
            data.len() >= self.required_len(),
            "buffer too small: {} < {}",
            data.len(),
            self.required_len()
        );
        assert!(scratch.len() >= self.scratch_len());
        if self.stride == 1 {
            for b in 0..self.count {
                let start = b * self.dist;
                self.plan
                    .execute_with_scratch(&mut data[start..start + self.n], scratch, dir);
            }
        } else {
            let (line, inner) = scratch.split_at_mut(self.n);
            for b in 0..self.count {
                let base = b * self.dist;
                // Gather the strided line, transform, scatter back. The paper
                // observed strided vs. reordered lines cost about the same on
                // Summit once reordering cost is included (§3.3); we pay the
                // gather here explicitly.
                for i in 0..self.n {
                    line[i] = data[base + i * self.stride];
                }
                self.plan.execute_with_scratch(line, inner, dir);
                for i in 0..self.n {
                    data[base + i * self.stride] = line[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::Complex64;

    #[test]
    fn contiguous_batches_match_individual_ffts() {
        let n = 24;
        let count = 5;
        let many = ManyPlan::<f64>::contiguous(n, count);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        for b in 0..count {
            let reference = dft_naive(&orig[b * n..(b + 1) * n]);
            for k in 0..n {
                assert!((data[b * n + k] - reference[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn strided_layout_transforms_columns() {
        // A (rows=n) x (cols=count) matrix stored row-major: columns have
        // stride = count, dist = 1 — exactly the y-transform layout of a
        // pencil with x fastest.
        let n = 16;
        let count = 6;
        let many = ManyPlan::<f64>::new(n, count, 1, count);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        for c in 0..count {
            let col: Vec<Complex64> = (0..n).map(|r| orig[r * count + c]).collect();
            let reference = dft_naive(&col);
            for r in 0..n {
                assert!((data[r * count + c] - reference[r]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn strided_roundtrip() {
        let n = 12;
        let count = 7;
        let many = ManyPlan::<f64>::new(n, count, 1, count);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i % 13) as f64, (i % 5) as f64))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        many.execute(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn required_len_is_tight() {
        let many = ManyPlan::<f64>::new(4, 3, 1, 3);
        // last touched index: (3-1)*1 + (4-1)*3 = 11 → len 12
        assert_eq!(many.required_len(), 12);
    }
}

/// Raw-pointer wrapper so disjoint batches can be processed from scoped
/// threads (the "OpenMP within an MPI rank" layer of the paper's hybrid
/// parallelism, §3.1/§4.1).
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only used to access disjoint batch index sets,
// partitioned statically among threads before spawning.
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T: Real> ManyPlan<T> {
    /// True when distinct batches touch pairwise-disjoint element sets —
    /// the precondition for [`execute_parallel`](Self::execute_parallel).
    /// Holds for the two layouts the solver uses: contiguous lines
    /// (`stride == 1, dist ≥ n`) and interleaved columns
    /// (`dist == 1, stride ≥ count`).
    pub fn batches_disjoint(&self) -> bool {
        if self.count == 1 {
            return true;
        }
        (self.stride == 1 && self.dist >= self.n)
            || (self.dist == 1 && self.stride >= self.count)
            || self.dist > (self.n - 1) * self.stride
    }

    /// Execute all batches using `threads` worker threads — the hybrid
    /// within-rank parallelism the paper gets from OpenMP. Falls back to
    /// serial execution when batches may overlap or `threads ≤ 1`.
    pub fn execute_parallel(&self, data: &mut [Complex<T>], dir: Direction, threads: usize) {
        if threads <= 1 || self.count < 2 || !self.batches_disjoint() {
            self.execute(data, dir);
            return;
        }
        assert!(data.len() >= self.required_len());
        let nthreads = threads.min(self.count);
        let ptr = SendPtr(data.as_mut_ptr());
        let n = self.n;
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let plan = &self.plan;
                let (stride, dist, count) = (self.stride, self.dist, self.count);
                scope.spawn(move || {
                    let ptr = ptr; // move the Copy wrapper
                    let mut line = vec![Complex::<T>::zero(); n];
                    let mut scratch = vec![Complex::<T>::zero(); plan.scratch_len()];
                    let mut b = t;
                    while b < count {
                        let base = b * dist;
                        // SAFETY: batch b touches exactly the indices
                        // {base + i·stride}, disjoint across b per
                        // `batches_disjoint`, and each index is < data.len()
                        // by the required_len assertion.
                        unsafe {
                            if stride == 1 {
                                let s = std::slice::from_raw_parts_mut(ptr.0.add(base), n);
                                plan.execute_with_scratch(s, &mut scratch, dir);
                            } else {
                                for (i, l) in line.iter_mut().enumerate() {
                                    *l = *ptr.0.add(base + i * stride);
                                }
                                plan.execute_with_scratch(&mut line, &mut scratch, dir);
                                for (i, l) in line.iter().enumerate() {
                                    *ptr.0.add(base + i * stride) = *l;
                                }
                            }
                        }
                        b += nthreads;
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn parallel_matches_serial_contiguous() {
        let n = 48;
        let count = 7;
        let plan = ManyPlan::<f64>::contiguous(n, count);
        let mut a: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut b = a.clone();
        plan.execute(&mut a, Direction::Forward);
        plan.execute_parallel(&mut b, Direction::Forward, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial_strided() {
        let n = 24;
        let count = 9;
        let plan = ManyPlan::<f64>::new(n, count, 1, count);
        let mut a: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut b = a.clone();
        plan.execute(&mut a, Direction::Inverse);
        plan.execute_parallel(&mut b, Direction::Inverse, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn more_threads_than_batches_is_fine() {
        let plan = ManyPlan::<f64>::contiguous(16, 2);
        let mut data = vec![Complex64::new(1.0, 0.0); 32];
        plan.execute_parallel(&mut data, Direction::Forward, 16);
        assert!((data[0].re - 16.0).abs() < 1e-12);
    }

    #[test]
    fn disjointness_detection() {
        assert!(ManyPlan::<f64>::contiguous(8, 4).batches_disjoint());
        assert!(ManyPlan::<f64>::new(8, 4, 1, 4).batches_disjoint());
        // Overlapping layout: stride 2 columns with dist 1 and count 4 > 2.
        assert!(!ManyPlan::<f64>::new(8, 2, 1, 4).batches_disjoint());
    }

    #[test]
    fn overlapping_layout_falls_back_to_serial() {
        // Must not crash or corrupt: falls back to the serial path.
        let plan = ManyPlan::<f64>::new(4, 2, 1, 2);
        let mut a: Vec<Complex64> = (0..plan.required_len())
            .map(|i| Complex64::new(i as f64, 0.0))
            .collect();
        let mut b = a.clone();
        plan.execute(&mut a, Direction::Forward);
        plan.execute_parallel(&mut b, Direction::Forward, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }
}
