//! Batched/strided transforms — the moral equivalent of cuFFT's
//! `cufftPlanMany` advanced data layout, which the paper's code uses to
//! transform whole pencils of lines in one call ("Strided FFTs are performed
//! in the y direction to avoid reordering on the GPU", Fig. 6).
//!
//! Strided batches are processed in cache-blocked tiles: a tile of lines is
//! transposed into contiguous scratch with the blocked copy kernel from
//! [`crate::tile`], transformed back-to-back while hot in cache, and
//! scattered back. Compared to the old line-at-a-time gather this amortizes
//! the strided traffic over [`tile::BLOCK`]-wide sub-tiles instead of
//! streaming one `n·stride` footprint per line. Parallel execution hands
//! tile (or batch) ranges to the persistent worker pool in `psdns-sync` —
//! no thread spawns and no steady-state heap allocation per call.

use crate::complex::{Complex, Real};
use crate::plan::{Direction, FftPlan};
use crate::scratch::{AlignedVec, ScratchPool};
use crate::tile;
use psdns_sync::Mutex;

/// A plan that executes `count` transforms of length `n` over a strided
/// layout: element `i` of batch `b` lives at `data[b·dist + i·stride]`.
pub struct ManyPlan<T: Real> {
    plan: FftPlan<T>,
    n: usize,
    stride: usize,
    dist: usize,
    count: usize,
    /// Lines per tile on the strided path: sized so a tile (`tile·n`
    /// complex elements) stays within a few hundred KiB of cache, with
    /// enough lines to amortize the blocked transpose.
    tile: usize,
    /// Reusable workspace for the allocating entry points and the parallel
    /// path (one parked buffer per concurrent user after warm-up).
    scratch: ScratchPool<Complex<T>>,
    /// Cached per-participant scratch slots for the parallel path: taken
    /// whole per job, so steady-state `execute_parallel` touches no
    /// allocator and each participant keeps one cache-line-aligned buffer
    /// for its entire chunk stream.
    slots: Mutex<Vec<AlignedVec<Complex<T>>>>,
}

impl<T: Real> ManyPlan<T> {
    pub fn new(n: usize, stride: usize, dist: usize, count: usize) -> Self {
        assert!(n > 0 && stride > 0 && count > 0);
        assert!(
            count == 1 || dist > 0,
            "dist must be positive for count > 1"
        );
        Self {
            plan: FftPlan::new(n),
            n,
            stride,
            dist,
            count,
            tile: (8192 / n).clamp(4, 64).min(count.max(1)),
            scratch: ScratchPool::new(),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Contiguous batch layout: line `b` occupies `data[b·n .. (b+1)·n]`.
    pub fn contiguous(n: usize, count: usize) -> Self {
        Self::new(n, 1, n, count)
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn count(&self) -> usize {
        self.count
    }

    /// Minimum `data.len()` accepted by [`execute`](Self::execute).
    pub fn required_len(&self) -> usize {
        (self.count - 1) * self.dist + (self.n - 1) * self.stride + 1
    }

    /// Scratch requirement (complex elements) for
    /// [`execute_with_scratch`](Self::execute_with_scratch).
    pub fn scratch_len(&self) -> usize {
        if self.stride == 1 {
            self.plan.scratch_len()
        } else {
            self.tile * self.n + self.plan.scratch_len()
        }
    }

    /// Execute all batches in place, using the plan's pooled scratch (no
    /// steady-state allocation).
    pub fn execute(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = self.scratch.take(self.scratch_len());
        self.execute_with_scratch(data, &mut scratch, dir);
        self.scratch.give(scratch);
    }

    /// Execute all batches in place with caller-provided scratch.
    pub fn execute_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        assert!(
            data.len() >= self.required_len(),
            "buffer too small: {} < {}",
            data.len(),
            self.required_len()
        );
        assert!(scratch.len() >= self.scratch_len());
        if self.stride == 1 {
            for b in 0..self.count {
                let start = b * self.dist;
                self.plan
                    .execute_with_scratch(&mut data[start..start + self.n], scratch, dir);
            }
        } else if self.batches_disjoint() {
            // Tiled path: transpose `tile` lines into contiguous scratch
            // with the blocked copy kernel, transform them while hot, and
            // scatter back. The paper observed strided vs. reordered lines
            // cost about the same on Summit once reordering cost is
            // included (§3.3); blocking keeps that reordering in-cache.
            let (tilebuf, inner) = scratch.split_at_mut(self.tile * self.n);
            let mut b0 = 0;
            while b0 < self.count {
                let t = self.tile.min(self.count - b0);
                self.run_tile(data, tilebuf, inner, b0, t, dir);
                b0 += t;
            }
        } else {
            // Overlapping batches (dist striding into a line's footprint):
            // preserve the strict batch-order line-at-a-time semantics.
            let (line, inner) = scratch.split_at_mut(self.tile * self.n);
            let line = &mut line[..self.n];
            for b in 0..self.count {
                let base = b * self.dist;
                for i in 0..self.n {
                    line[i] = data[base + i * self.stride];
                }
                self.plan.execute_with_scratch(line, inner, dir);
                for i in 0..self.n {
                    data[base + i * self.stride] = line[i];
                }
            }
        }
    }

    /// Gather → transform → scatter one tile of `t` strided lines starting
    /// at batch `b0`.
    fn run_tile(
        &self,
        data: &mut [Complex<T>],
        tilebuf: &mut [Complex<T>],
        inner: &mut [Complex<T>],
        b0: usize,
        t: usize,
        dir: Direction,
    ) {
        tile::copy_grid(
            data,
            b0 * self.dist,
            self.dist,
            self.stride,
            tilebuf,
            0,
            self.n,
            1,
            t,
            self.n,
        );
        for l in 0..t {
            self.plan
                .execute_with_scratch(&mut tilebuf[l * self.n..(l + 1) * self.n], inner, dir);
        }
        tile::copy_grid(
            tilebuf,
            0,
            self.n,
            1,
            data,
            b0 * self.dist,
            self.dist,
            self.stride,
            t,
            self.n,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::Complex64;

    #[test]
    fn contiguous_batches_match_individual_ffts() {
        let n = 24;
        let count = 5;
        let many = ManyPlan::<f64>::contiguous(n, count);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        for b in 0..count {
            let reference = dft_naive(&orig[b * n..(b + 1) * n]);
            for k in 0..n {
                assert!((data[b * n + k] - reference[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn strided_layout_transforms_columns() {
        // A (rows=n) x (cols=count) matrix stored row-major: columns have
        // stride = count, dist = 1 — exactly the y-transform layout of a
        // pencil with x fastest.
        let n = 16;
        let count = 6;
        let many = ManyPlan::<f64>::new(n, count, 1, count);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        for c in 0..count {
            let col: Vec<Complex64> = (0..n).map(|r| orig[r * count + c]).collect();
            let reference = dft_naive(&col);
            for r in 0..n {
                assert!((data[r * count + c] - reference[r]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn strided_roundtrip() {
        let n = 12;
        let count = 7;
        let many = ManyPlan::<f64>::new(n, count, 1, count);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i % 13) as f64, (i % 5) as f64))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        many.execute(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn required_len_is_tight() {
        let many = ManyPlan::<f64>::new(4, 3, 1, 3);
        // last touched index: (3-1)*1 + (4-1)*3 = 11 → len 12
        assert_eq!(many.required_len(), 12);
    }

    #[test]
    fn is_empty_reflects_length() {
        assert!(!ManyPlan::<f64>::contiguous(8, 2).is_empty());
    }

    #[test]
    fn many_tiles_strided_matches_per_column_dft() {
        // count larger than the tile size so the tiled loop runs several
        // full tiles plus a ragged tail.
        let n = 8;
        let count = 150; // tile for n=8 is 64 → tiles of 64, 64, 22
        let many = ManyPlan::<f64>::new(n, count, 1, count);
        assert!(many.count() > many.tile);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i as f64 * 0.013).sin(), (i as f64 * 0.029).cos()))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        for c in 0..count {
            let col: Vec<Complex64> = (0..n).map(|r| orig[r * count + c]).collect();
            let reference = dft_naive(&col);
            for r in 0..n {
                assert!(
                    (data[r * count + c] - reference[r]).abs() < 1e-9,
                    "c={c} r={r}"
                );
            }
        }
    }

    #[test]
    fn pooled_execute_parks_scratch() {
        let many = ManyPlan::<f64>::new(16, 4, 1, 4);
        let mut data = vec![Complex64::one(); many.required_len()];
        many.execute(&mut data, Direction::Forward);
        many.execute(&mut data, Direction::Inverse);
        assert_eq!(many.scratch.idle(), 1);
    }
}

/// Chunk-body callback for `run_slotted`: `(lo, hi, per-participant scratch)`.
type SlotBody<'a, T> = dyn Fn(usize, usize, &mut [Complex<T>]) + Sync + 'a;

/// Raw-pointer wrapper so disjoint batches can be processed by the worker
/// pool (the "OpenMP within an MPI rank" layer of the paper's hybrid
/// parallelism, §3.1/§4.1).
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only used to access pairwise-disjoint batch index
// sets, partitioned by the pool's chunk cursor before any access.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper instead of the bare non-`Sync` pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T: Real> ManyPlan<T> {
    /// True when distinct batches touch pairwise-disjoint element sets —
    /// the precondition for [`execute_parallel`](Self::execute_parallel).
    /// Holds for the two layouts the solver uses: contiguous lines
    /// (`stride == 1, dist ≥ n`) and interleaved columns
    /// (`dist == 1, stride ≥ count`).
    pub fn batches_disjoint(&self) -> bool {
        if self.count == 1 {
            return true;
        }
        (self.stride == 1 && self.dist >= self.n)
            || (self.dist == 1 && self.stride >= self.count)
            || self.dist > (self.n - 1) * self.stride
    }

    /// Execute all batches using up to `threads` participants from the
    /// persistent [`psdns_sync::pool`] — the hybrid within-rank parallelism
    /// the paper gets from OpenMP. The calling thread always participates
    /// and no OS threads are spawned per call; scratch comes from the
    /// plan's pool, so after warm-up an invocation performs no heap
    /// allocation. Falls back to serial execution when batches may overlap
    /// or `threads ≤ 1`.
    pub fn execute_parallel(&self, data: &mut [Complex<T>], dir: Direction, threads: usize) {
        if threads <= 1 || self.count < 2 || !self.batches_disjoint() {
            self.execute(data, dir);
            return;
        }
        assert!(
            data.len() >= self.required_len(),
            "buffer too small: {} < {}",
            data.len(),
            self.required_len()
        );
        let pool = psdns_sync::pool::global();
        let ptr = SendPtr(data.as_mut_ptr());
        if self.stride == 1 {
            // Unit-stride lines: chunk whole batches at tile granularity —
            // big enough that a participant amortizes its scratch reuse over
            // a cache-resident run of lines, small enough (≥ ~4 chunks per
            // participant) that the dynamic schedule absorbs stragglers.
            let chunk = self
                .tile
                .min(self.count)
                .max(self.count.div_ceil(threads * 4));
            self.run_slotted(
                pool,
                self.count,
                chunk,
                threads,
                self.plan.scratch_len(),
                &|lo, hi, scratch| {
                    for b in lo..hi {
                        // SAFETY: batch b occupies data[b·dist .. b·dist+n],
                        // disjoint across b (`batches_disjoint`), in bounds by
                        // the required_len assertion above.
                        let line = unsafe {
                            std::slice::from_raw_parts_mut(ptr.get().add(b * self.dist), self.n)
                        };
                        self.plan.execute_with_scratch(line, scratch, dir);
                    }
                },
            );
        } else {
            // Strided lines: parallelize over cache-blocked tiles. Each
            // participant owns a private tile buffer for the whole job and
            // the tiles' element sets are pairwise disjoint. Chunks of
            // tiles (~4 per participant) keep cursor traffic low when the
            // tile count is large.
            let ntiles = self.count.div_ceil(self.tile);
            let chunk = ntiles.div_ceil(threads * 4).max(1);
            self.run_slotted(
                pool,
                ntiles,
                chunk,
                threads,
                self.scratch_len(),
                &|lo, hi, scratch| {
                    let (tilebuf, inner) = scratch.split_at_mut(self.tile * self.n);
                    for ti in lo..hi {
                        let b0 = ti * self.tile;
                        let t = self.tile.min(self.count - b0);
                        // SAFETY: tile ti touches exactly the indices
                        // {(b0+l)·dist + i·stride | l < t, i < n}; batches are
                        // pairwise disjoint and tiles partition the batches, so
                        // concurrent tiles never alias. All indices are in
                        // bounds by the required_len assertion.
                        unsafe {
                            tile::copy_grid_raw(
                                ptr.get() as *const Complex<T>,
                                b0 * self.dist,
                                self.dist,
                                self.stride,
                                tilebuf.as_mut_ptr(),
                                0,
                                self.n,
                                1,
                                t,
                                self.n,
                            );
                        }
                        for l in 0..t {
                            self.plan.execute_with_scratch(
                                &mut tilebuf[l * self.n..(l + 1) * self.n],
                                inner,
                                dir,
                            );
                        }
                        // SAFETY: writes back exactly the element set this tile
                        // read above — same disjointness and bounds argument as
                        // the forward copy.
                        unsafe {
                            tile::copy_grid_raw(
                                tilebuf.as_ptr(),
                                0,
                                self.n,
                                1,
                                ptr.get(),
                                b0 * self.dist,
                                self.dist,
                                self.stride,
                                t,
                                self.n,
                            );
                        }
                    }
                },
            );
        }
    }

    /// Fan a chunked range out over the pool with one pre-taken, cache-line
    /// aligned scratch slot per participant. Compared to take/give inside
    /// the task body this removes all per-chunk pool-mutex traffic, and the
    /// aligned slots guarantee no two participants' scratch shares a cache
    /// line (the false-sharing mode of allocator-packed buffers).
    fn run_slotted(
        &self,
        pool: &psdns_sync::pool::WorkerPool,
        total: usize,
        chunk: usize,
        threads: usize,
        slot_len: usize,
        body: &SlotBody<'_, T>,
    ) {
        let limit = pool.max_participants(threads);
        // Reuse the cached slot vector: after warm-up this whole setup is
        // allocation-free (a concurrent caller on the same plan finds the
        // cache taken and pays a one-off allocation — correct, just slower).
        let mut slots = std::mem::take(&mut *self.slots.lock());
        while slots.len() < limit {
            slots.push(AlignedVec::new());
        }
        for s in slots.iter_mut().take(limit) {
            s.ensure_len(slot_len);
        }
        let slotp = SendPtr(slots.as_mut_ptr());
        pool.run_with_id(total, chunk, threads, &|id, lo, hi| {
            // SAFETY: participant ids are dense, unique per job, and
            // < max_participants, so each participant has exclusive access
            // to its slot for the job's duration.
            let scratch = unsafe { &mut *slotp.get().add(id) };
            body(lo, hi, scratch);
        });
        *self.slots.lock() = slots;
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn parallel_matches_serial_contiguous() {
        let n = 48;
        let count = 7;
        let plan = ManyPlan::<f64>::contiguous(n, count);
        let mut a: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut b = a.clone();
        plan.execute(&mut a, Direction::Forward);
        plan.execute_parallel(&mut b, Direction::Forward, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial_strided() {
        let n = 24;
        let count = 9;
        let plan = ManyPlan::<f64>::new(n, count, 1, count);
        let mut a: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut b = a.clone();
        plan.execute(&mut a, Direction::Inverse);
        plan.execute_parallel(&mut b, Direction::Inverse, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_strided_many_tiles() {
        // Enough columns for several tiles per worker.
        let n = 8;
        let count = 300;
        let plan = ManyPlan::<f64>::new(n, count, 1, count);
        let mut a: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i as f64 * 0.017).sin(), (i as f64 * 0.031).cos()))
            .collect();
        let mut b = a.clone();
        plan.execute(&mut a, Direction::Forward);
        plan.execute_parallel(&mut b, Direction::Forward, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn more_threads_than_batches_is_fine() {
        let plan = ManyPlan::<f64>::contiguous(16, 2);
        let mut data = vec![Complex64::new(1.0, 0.0); 32];
        plan.execute_parallel(&mut data, Direction::Forward, 16);
        assert!((data[0].re - 16.0).abs() < 1e-12);
    }

    #[test]
    fn disjointness_detection() {
        assert!(ManyPlan::<f64>::contiguous(8, 4).batches_disjoint());
        assert!(ManyPlan::<f64>::new(8, 4, 1, 4).batches_disjoint());
        // Overlapping layout: stride 2 columns with dist 1 and count 4 > 2.
        assert!(!ManyPlan::<f64>::new(8, 2, 1, 4).batches_disjoint());
    }

    #[test]
    fn overlapping_layout_falls_back_to_serial() {
        // Must not crash or corrupt: falls back to the serial path.
        let plan = ManyPlan::<f64>::new(4, 2, 1, 2);
        let mut a: Vec<Complex64> = (0..plan.required_len())
            .map(|i| Complex64::new(i as f64, 0.0))
            .collect();
        let mut b = a.clone();
        plan.execute(&mut a, Direction::Forward);
        plan.execute_parallel(&mut b, Direction::Forward, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_reuses_pooled_scratch() {
        let plan = ManyPlan::<f64>::contiguous(32, 16);
        let mut data = vec![Complex64::one(); 32 * 16];
        for _ in 0..4 {
            plan.execute_parallel(&mut data, Direction::Forward, 4);
            plan.execute_parallel(&mut data, Direction::Inverse, 4);
        }
        // Every participant parked its buffer; the pool holds at most one
        // buffer per concurrent participant, not one per call.
        assert!(plan.scratch.idle() <= 4 + 1);
    }
}
