//! Bluestein's algorithm (chirp-z) for transform lengths with prime factors
//! too large for the direct mixed-radix path. Expresses an arbitrary-length
//! DFT as a circular convolution of power-of-two length.

use crate::complex::{Complex, Real};
use crate::plan::{Direction, FftPlan};

pub struct BluesteinPlan<T: Real> {
    n: usize,
    /// Power-of-two convolution length, ≥ 2n−1.
    m: usize,
    /// Inner power-of-two plan (never recurses back into Bluestein).
    inner: FftPlan<T>,
    /// Chirp `c[j] = exp(−iπ·j²/n)` for `j ∈ [0, n)` (forward sign).
    chirp: Vec<Complex<T>>,
    /// Forward FFT (length m) of the wrapped conjugate chirp kernel.
    kernel_fft: Vec<Complex<T>>,
}

impl<T: Real> BluesteinPlan<T> {
    pub fn new(n: usize) -> Self {
        assert!(n > 1);
        let m = (2 * n - 1).next_power_of_two();
        let inner = FftPlan::new(m);
        debug_assert!(!inner.uses_bluestein());
        // j² grows fast; reduce mod 2n to keep the angle argument exact.
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|j| {
                let q = (j * j) % (2 * n);
                let ang = -core::f64::consts::PI * q as f64 / n as f64;
                Complex::from_f64(ang.cos(), ang.sin())
            })
            .collect();
        let mut kernel = vec![Complex::<T>::zero(); m];
        kernel[0] = chirp[0].conj();
        for j in 1..n {
            let h = chirp[j].conj();
            kernel[j] = h;
            kernel[m - j] = h;
        }
        let mut scratch = vec![Complex::zero(); m];
        inner.execute_with_scratch(&mut kernel, &mut scratch, Direction::Forward);
        Self {
            n,
            m,
            inner,
            chirp,
            kernel_fft: kernel,
        }
    }

    /// Scratch requirement: one length-m work buffer plus the inner plan's
    /// own scratch.
    pub fn scratch_len(&self) -> usize {
        2 * self.m
    }

    pub fn execute(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.n);
        assert!(scratch.len() >= self.scratch_len());
        match dir {
            Direction::Forward => self.forward(data, scratch),
            Direction::Inverse => {
                // IDFT(x) = conj(DFT(conj(x)))/n
                for v in data.iter_mut() {
                    *v = v.conj();
                }
                self.forward(data, scratch);
                let inv = T::ONE / T::from_usize(self.n);
                for v in data.iter_mut() {
                    *v = v.conj().scale(inv);
                }
            }
        }
    }

    fn forward(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        let (work, inner_scratch) = scratch.split_at_mut(self.m);
        for (w, (x, c)) in work.iter_mut().zip(data.iter().zip(&self.chirp)) {
            *w = *x * *c;
        }
        for w in work.iter_mut().skip(self.n) {
            *w = Complex::zero();
        }
        self.inner
            .execute_with_scratch(work, inner_scratch, Direction::Forward);
        for (w, h) in work.iter_mut().zip(&self.kernel_fft) {
            *w *= *h;
        }
        self.inner
            .execute_with_scratch(work, inner_scratch, Direction::Inverse);
        for (x, (w, c)) in data.iter_mut().zip(work.iter().zip(&self.chirp)) {
            *x = *w * *c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, idft_naive};
    use crate::Complex64;

    #[test]
    fn prime_lengths_match_naive() {
        for n in [37usize, 41, 53, 97, 101, 127] {
            let plan = FftPlan::<f64>::new(n);
            assert!(plan.uses_bluestein(), "n={n}");
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 1.1).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            let reference = dft_naive(&x);
            for k in 0..n {
                assert!((y[k] - reference[k]).abs() < 1e-8, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_idft() {
        let n = 43;
        let plan = FftPlan::<f64>::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(i as f64 * 0.2 - 1.0, (i as f64).cos()))
            .collect();
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Inverse);
        let reference = idft_naive(&x);
        for k in 0..n {
            assert!((y[k] - reference[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_on_semiprime() {
        // 74 = 2 · 37 exercises the "leftover after small factors" route.
        let n = 74;
        let plan = FftPlan::<f64>::new(n);
        assert!(plan.uses_bluestein());
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(1.0 / (1 + i) as f64, 0.5))
            .collect();
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        plan.execute(&mut y, Direction::Inverse);
        for k in 0..n {
            assert!((y[k] - x[k]).abs() < 1e-10);
        }
    }
}
