//! Frozen pre-Stockham execution core, kept for benchmarking and
//! equivalence-pinning only.
//!
//! This is the recursive decimation-in-time Cooley–Tukey kernel (plus the
//! per-line gather/scatter strided batch loop) that shipped before the
//! iterative Stockham rewrite in [`crate::plan`]. The baseline runner in
//! `psdns-bench` times it side by side with the live kernel so every
//! `BENCH_fft.json` records the old→new speedup, and the equivalence tests
//! pin the two kernels against each other within the physics tolerances.
//! Do not use it on a hot path; it allocates per call and looks twiddles up
//! through `idx % n`.

use crate::complex::{Complex, Real};
use crate::plan::{factorize, Direction, MAX_RADIX};

/// The pre-PR plan: full-length twiddle table + recursive DIT execution.
/// Lengths with prime factors above [`MAX_RADIX`] are not supported (the
/// live plan routes those through Bluestein; the comparison harness only
/// needs direct lengths).
pub struct ReferencePlan<T: Real> {
    n: usize,
    factors: Vec<usize>,
    /// `tw[k] = exp(-2πi·k/n)` for `k ∈ [0, n)`.
    twiddles: Vec<Complex<T>>,
}

impl<T: Real> ReferencePlan<T> {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let (factors, leftover) = factorize(n);
        assert_eq!(
            leftover, 1,
            "ReferencePlan does not implement the Bluestein fallback"
        );
        let step = -2.0 * core::f64::consts::PI / n as f64;
        let twiddles = (0..n)
            .map(|k| Complex::from_f64((step * k as f64).cos(), (step * k as f64).sin()))
            .collect();
        Self {
            n,
            factors,
            twiddles,
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn scratch_len(&self) -> usize {
        self.n
    }

    #[inline]
    fn tw(&self, idx: usize, dir: Direction) -> Complex<T> {
        let t = self.twiddles[idx % self.n];
        match dir {
            Direction::Forward => t,
            Direction::Inverse => t.conj(),
        }
    }

    pub fn execute(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.execute_with_scratch(data, &mut scratch, dir);
    }

    pub fn execute_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        if self.n == 1 {
            return;
        }
        let scratch = &mut scratch[..self.n];
        scratch.copy_from_slice(data);
        self.recurse(scratch, data, self.n, 1, 0, dir);
        if dir == Direction::Inverse {
            let inv = T::ONE / T::from_usize(self.n);
            for v in data.iter_mut() {
                *v = v.scale(inv);
            }
        }
    }

    /// The old strided batch loop: gather one line at a time through the
    /// stride, transform it, scatter it back.
    pub fn execute_many(
        &self,
        data: &mut [Complex<T>],
        stride: usize,
        dist: usize,
        count: usize,
        dir: Direction,
    ) {
        let mut line = vec![Complex::zero(); self.n];
        let mut scratch = vec![Complex::zero(); self.n];
        for b in 0..count {
            let base = b * dist;
            if stride == 1 {
                self.execute_with_scratch(&mut data[base..base + self.n], &mut scratch, dir);
            } else {
                for (i, l) in line.iter_mut().enumerate() {
                    *l = data[base + i * stride];
                }
                self.execute_with_scratch(&mut line, &mut scratch, dir);
                for (i, l) in line.iter().enumerate() {
                    data[base + i * stride] = *l;
                }
            }
        }
    }

    fn recurse(
        &self,
        inp: &[Complex<T>],
        out: &mut [Complex<T>],
        sub_n: usize,
        s: usize,
        level: usize,
        dir: Direction,
    ) {
        if sub_n == 1 {
            out[0] = inp[0];
            return;
        }
        let r = self.factors[level];
        let m = sub_n / r;
        for q in 0..r {
            self.recurse(
                &inp[q * s..],
                &mut out[q * m..(q + 1) * m],
                m,
                s * r,
                level + 1,
                dir,
            );
        }
        let tw_step = self.n / sub_n;
        let mut tmp = [Complex::<T>::zero(); MAX_RADIX];
        for k0 in 0..m {
            for (q, t) in tmp.iter_mut().enumerate().take(r) {
                let y = out[q * m + k0];
                *t = if q == 0 {
                    y
                } else {
                    y * self.tw(q * k0 * tw_step, dir)
                };
            }
            self.butterfly(&tmp[..r], out, k0, m, dir);
        }
    }

    #[inline]
    fn butterfly(
        &self,
        tmp: &[Complex<T>],
        out: &mut [Complex<T>],
        k0: usize,
        m: usize,
        dir: Direction,
    ) {
        match tmp.len() {
            2 => {
                let (a, b) = (tmp[0], tmp[1]);
                out[k0] = a + b;
                out[k0 + m] = a - b;
            }
            3 => {
                let (a, b, c) = (tmp[0], tmp[1], tmp[2]);
                let s = b + c;
                let d = b - c;
                let half = T::from_f64(0.5);
                let rt3h = T::from_f64(0.866_025_403_784_438_6);
                let re_part = a - s.scale(half);
                let rot = match dir {
                    Direction::Forward => d.mul_neg_i().scale(rt3h),
                    Direction::Inverse => d.mul_i().scale(rt3h),
                };
                out[k0] = a + s;
                out[k0 + m] = re_part + rot;
                out[k0 + 2 * m] = re_part - rot;
            }
            4 => {
                let (a, b, c, d) = (tmp[0], tmp[1], tmp[2], tmp[3]);
                let t0 = a + c;
                let t1 = a - c;
                let t2 = b + d;
                let t3 = match dir {
                    Direction::Forward => (b - d).mul_neg_i(),
                    Direction::Inverse => (b - d).mul_i(),
                };
                out[k0] = t0 + t2;
                out[k0 + m] = t1 + t3;
                out[k0 + 2 * m] = t0 - t2;
                out[k0 + 3 * m] = t1 - t3;
            }
            r => {
                let step = self.n / r;
                for c in 0..r {
                    let mut acc = tmp[0];
                    for (q, &t) in tmp.iter().enumerate().skip(1) {
                        acc += t * self.tw(q * c * step, dir);
                    }
                    out[k0 + c * m] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::Complex64;

    #[test]
    fn reference_kernel_still_matches_naive() {
        for n in [2usize, 3, 4, 8, 12, 30, 64, 90] {
            let plan = ReferencePlan::<f64>::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
                .collect();
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            let reference = dft_naive(&x);
            for k in 0..n {
                assert!(
                    (y[k] - reference[k]).abs() < 1e-9 * (n as f64),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn reference_strided_many_matches_per_column_dft() {
        let (n, count) = (16usize, 6usize);
        let plan = ReferencePlan::<f64>::new(n);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let orig = data.clone();
        plan.execute_many(&mut data, count, 1, count, Direction::Forward);
        for c in 0..count {
            let col: Vec<Complex64> = (0..n).map(|r| orig[r * count + c]).collect();
            let reference = dft_naive(&col);
            for r in 0..n {
                assert!((data[r * count + c] - reference[r]).abs() < 1e-9);
            }
        }
    }
}
