//! Mixed-radix FFT plans with an iterative Stockham autosort core.
//!
//! A [`FftPlan`] factors `n` into a radix schedule (8 preferred, then
//! 4/2/3/5, generic odd primes up to [`MAX_RADIX`]) and precomputes one
//! twiddle table *per stage*, so execution is a flat loop over stages that
//! ping-pongs between the data buffer and one scratch buffer of length `n` —
//! no recursion, no bit-reversal pass, and no `% n` in any inner loop
//! (twiddles are read sequentially). This mirrors the plan/execute split of
//! FFTW and cuFFT that the paper's code relies on, with the autosort
//! formulation cuFFT itself uses so strided batches stay coalesced. Lengths
//! whose largest prime factor exceeds [`MAX_RADIX`] are routed through
//! Bluestein's algorithm transparently.

use crate::bluestein::BluesteinPlan;
use crate::complex::{Complex, Real};
use crate::scratch::ScratchPool;
use crate::simd::Vc;

/// Transform direction. Forward is unnormalized; Inverse applies `1/n`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    /// Sign of the exponent: -1 for forward, +1 for inverse.
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }

    pub fn reverse(self) -> Self {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// Largest prime handled by the direct mixed-radix path; larger primes fall
/// back to Bluestein.
pub const MAX_RADIX: usize = 31;

/// Prime factorization, smallest factor first, combining 2·2 → 4 so the
/// radix-4 butterfly is used where possible. Retained as the feasibility
/// check for the direct path (the execution schedule itself comes from
/// [`radix_schedule`]).
pub(crate) fn factorize(mut n: usize) -> (Vec<usize>, usize) {
    let mut factors = Vec::new();
    // Pull out fours first, then a possible leftover two.
    while n.is_multiple_of(4) {
        factors.push(4);
        n /= 4;
    }
    if n.is_multiple_of(2) {
        factors.push(2);
        n /= 2;
    }
    let mut p = 3;
    while p * p <= n && p <= MAX_RADIX {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 && n <= MAX_RADIX {
        factors.push(n);
        n = 1;
    }
    (factors, n) // n > 1 here means a leftover factor too large for direct CT
}

/// Stage radices for the Stockham schedule: radix-8 first (fewest stages and
/// best flop/load ratio for the power-of-two bulk), then the 4-or-2
/// remainder, then 3s and 5s, then any generic odd primes ≤ [`MAX_RADIX`].
/// Returns `None` when a prime factor exceeds `MAX_RADIX` (Bluestein case).
pub(crate) fn radix_schedule(mut n: usize) -> Option<Vec<usize>> {
    let mut radices = Vec::new();
    while n.is_multiple_of(8) {
        radices.push(8);
        n /= 8;
    }
    if n.is_multiple_of(4) {
        radices.push(4);
        n /= 4;
    }
    if n.is_multiple_of(2) {
        radices.push(2);
        n /= 2;
    }
    for p in [3usize, 5] {
        while n.is_multiple_of(p) {
            radices.push(p);
            n /= p;
        }
    }
    let mut p = 7;
    while p * p <= n && p <= MAX_RADIX {
        while n.is_multiple_of(p) {
            radices.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        if n > MAX_RADIX {
            return None;
        }
        radices.push(n);
    }
    Some(radices)
}

/// One Stockham pass: `s` interleaved sub-sequences of current length
/// `radix·m` each get their radix-`radix` decimation-in-frequency butterfly
/// applied, scattering to `s·radix` sub-sequences of length `m`.
///
/// Reads `src[s·(p + c·m) + q]`, writes `dst[s·(radix·p + k) + q]` for
/// `p ∈ [0, m)`, `c, k ∈ [0, radix)`, `q ∈ [0, s)` — the `q` loop is
/// innermost and unit-stride on both sides, which is what keeps the pass
/// vectorizable and cache-friendly at every stage.
struct Stage<T: Real> {
    radix: usize,
    /// Butterflies per sub-sequence: `n_cur / radix`.
    m: usize,
    /// Interleaved sub-sequence count (product of radices already applied).
    s: usize,
    /// `w_{n_cur}^{p·k}` for `p ∈ [0, m)`, `k ∈ [1, radix)`, row-major in
    /// `p` — read strictly sequentially during the pass.
    twiddles: Vec<Complex<T>>,
    /// Forward DFT matrix `w_r^{c·k}` (row-major in `k`, `r·r` entries) for
    /// generic radices; empty for the dedicated 2/3/4/5/8 codelets.
    dft: Vec<Complex<T>>,
}

/// Direction-resolved twiddle: conjugate for the inverse transform. `INV` is
/// const so the branch vanishes after monomorphization.
#[inline(always)]
fn dirw<T: Real, const INV: bool>(w: Complex<T>) -> Complex<T> {
    if INV {
        w.conj()
    } else {
        w
    }
}

impl<T: Real> Stage<T> {
    fn new(radix: usize, n_cur: usize, s: usize) -> Self {
        let m = n_cur / radix;
        let step = -2.0 * core::f64::consts::PI / n_cur as f64;
        let mut twiddles = Vec::with_capacity(m * (radix - 1));
        for p in 0..m {
            for k in 1..radix {
                // `% n_cur` at build time keeps the angle small for accuracy;
                // execution reads the table sequentially.
                let a = step * ((p * k) % n_cur) as f64;
                twiddles.push(Complex::from_f64(a.cos(), a.sin()));
            }
        }
        let dft = if matches!(radix, 2 | 3 | 4 | 5 | 8) {
            Vec::new()
        } else {
            let rstep = -2.0 * core::f64::consts::PI / radix as f64;
            let mut dft = Vec::with_capacity(radix * radix);
            for k in 0..radix {
                for c in 0..radix {
                    let a = rstep * ((c * k) % radix) as f64;
                    dft.push(Complex::from_f64(a.cos(), a.sin()));
                }
            }
            dft
        };
        Self {
            radix,
            m,
            s,
            twiddles,
            dft,
        }
    }

    fn run(&self, src: &[Complex<T>], dst: &mut [Complex<T>], dir: Direction) {
        let lanes = crate::simd::lanes_for(self.s);
        match dir {
            Direction::Forward => self.dispatch::<false>(src, dst, lanes),
            Direction::Inverse => self.dispatch::<true>(src, dst, lanes),
        }
    }

    /// Select the codelet instantiation: lane count from the stage stride
    /// (`s % 4 == 0` → 4-wide, even → 2-wide, else scalar) and `TW = false`
    /// for `m == 1` stages, whose only twiddle row is all ones — always the
    /// case for the final Stockham pass, which skips `radix − 1` complex
    /// multiplies per butterfly there.
    fn dispatch<const INV: bool>(&self, src: &[Complex<T>], dst: &mut [Complex<T>], lanes: usize) {
        macro_rules! go {
            ($f:ident) => {
                match (lanes, self.m == 1) {
                    (4, false) => self.$f::<INV, 4, true>(src, dst),
                    (4, true) => self.$f::<INV, 4, false>(src, dst),
                    (2, false) => self.$f::<INV, 2, true>(src, dst),
                    (2, true) => self.$f::<INV, 2, false>(src, dst),
                    (_, false) => self.$f::<INV, 1, true>(src, dst),
                    (_, true) => self.$f::<INV, 1, false>(src, dst),
                }
            };
        }
        match self.radix {
            2 => go!(r2),
            3 => go!(r3),
            4 => go!(r4),
            5 => go!(r5),
            8 => go!(r8),
            _ => self.generic::<INV>(src, dst),
        }
    }

    /// Twiddle `k` of butterfly row `tb`, or exact unity when the stage is
    /// twiddle-free (`TW = false`). The unity branch is const-folded away.
    #[inline(always)]
    fn tw<const INV: bool, const TW: bool>(&self, tb: usize, k: usize) -> Complex<T> {
        if TW {
            dirw::<T, INV>(self.twiddles[tb + k])
        } else {
            Complex::one()
        }
    }

    fn r2<const INV: bool, const C: usize, const TW: bool>(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
    ) {
        let (m, s) = (self.m, self.s);
        for p in 0..m {
            let w1 = self.tw::<INV, TW>(p, 0);
            let i0 = s * p;
            let i1 = s * (p + m);
            let o = s * 2 * p;
            let mut q = 0;
            while q < s {
                let a = Vc::<T, C>::load(src, i0 + q);
                let b = Vc::<T, C>::load(src, i1 + q);
                (a + b).store(dst, o + q);
                let y1 = a - b;
                let y1 = if TW { y1.cmul(w1) } else { y1 };
                y1.store(dst, o + s + q);
                q += C;
            }
        }
    }

    fn r3<const INV: bool, const C: usize, const TW: bool>(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
    ) {
        let (m, s) = (self.m, self.s);
        let half = T::from_f64(0.5);
        let rt3h = T::from_f64(0.866_025_403_784_438_6); // √3/2
        for p in 0..m {
            let tb = 2 * p;
            let w1 = self.tw::<INV, TW>(tb, 0);
            let w2 = self.tw::<INV, TW>(tb, 1);
            let i0 = s * p;
            let i1 = s * (p + m);
            let i2 = s * (p + 2 * m);
            let o = s * 3 * p;
            let mut q = 0;
            while q < s {
                let a = Vc::<T, C>::load(src, i0 + q);
                let b = Vc::<T, C>::load(src, i1 + q);
                let c = Vc::<T, C>::load(src, i2 + q);
                let sum = b + c;
                let re_part = a - sum.scale(half);
                let rot = (b - c).scale(rt3h).rot90::<INV>();
                (a + sum).store(dst, o + q);
                let y1 = re_part + rot;
                let y2 = re_part - rot;
                let y1 = if TW { y1.cmul(w1) } else { y1 };
                let y2 = if TW { y2.cmul(w2) } else { y2 };
                y1.store(dst, o + s + q);
                y2.store(dst, o + 2 * s + q);
                q += C;
            }
        }
    }

    fn r4<const INV: bool, const C: usize, const TW: bool>(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
    ) {
        let (m, s) = (self.m, self.s);
        for p in 0..m {
            let tb = 3 * p;
            let w1 = self.tw::<INV, TW>(tb, 0);
            let w2 = self.tw::<INV, TW>(tb, 1);
            let w3 = self.tw::<INV, TW>(tb, 2);
            let i0 = s * p;
            let i1 = s * (p + m);
            let i2 = s * (p + 2 * m);
            let i3 = s * (p + 3 * m);
            let o = s * 4 * p;
            let mut q = 0;
            while q < s {
                let a0 = Vc::<T, C>::load(src, i0 + q);
                let a1 = Vc::<T, C>::load(src, i1 + q);
                let a2 = Vc::<T, C>::load(src, i2 + q);
                let a3 = Vc::<T, C>::load(src, i3 + q);
                let t0 = a0 + a2;
                let t1 = a0 - a2;
                let t2 = a1 + a3;
                let t3 = (a1 - a3).rot90::<INV>();
                (t0 + t2).store(dst, o + q);
                let y1 = t1 + t3;
                let y2 = t0 - t2;
                let y3 = t1 - t3;
                let y1 = if TW { y1.cmul(w1) } else { y1 };
                let y2 = if TW { y2.cmul(w2) } else { y2 };
                let y3 = if TW { y3.cmul(w3) } else { y3 };
                y1.store(dst, o + s + q);
                y2.store(dst, o + 2 * s + q);
                y3.store(dst, o + 3 * s + q);
                q += C;
            }
        }
    }

    fn r5<const INV: bool, const C: usize, const TW: bool>(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
    ) {
        let (m, s) = (self.m, self.s);
        let c1 = T::from_f64(0.309_016_994_374_947_45); // cos(2π/5)
        let c2 = T::from_f64(-0.809_016_994_374_947_5); // cos(4π/5)
        let s1 = T::from_f64(0.951_056_516_295_153_5); // sin(2π/5)
        let s2 = T::from_f64(0.587_785_252_292_473_1); // sin(4π/5)
        for p in 0..m {
            let tb = 4 * p;
            let w1 = self.tw::<INV, TW>(tb, 0);
            let w2 = self.tw::<INV, TW>(tb, 1);
            let w3 = self.tw::<INV, TW>(tb, 2);
            let w4 = self.tw::<INV, TW>(tb, 3);
            let i0 = s * p;
            let i1 = s * (p + m);
            let i2 = s * (p + 2 * m);
            let i3 = s * (p + 3 * m);
            let i4 = s * (p + 4 * m);
            let o = s * 5 * p;
            let mut q = 0;
            while q < s {
                let a0 = Vc::<T, C>::load(src, i0 + q);
                let a1 = Vc::<T, C>::load(src, i1 + q);
                let a2 = Vc::<T, C>::load(src, i2 + q);
                let a3 = Vc::<T, C>::load(src, i3 + q);
                let a4 = Vc::<T, C>::load(src, i4 + q);
                let t1 = a1 + a4;
                let t2 = a2 + a3;
                let t3 = a1 - a4;
                let t4 = a2 - a3;
                let m1 = a0 + t1.scale(c1) + t2.scale(c2);
                let m2 = a0 + t1.scale(c2) + t2.scale(c1);
                let u1 = (t3.scale(s1) + t4.scale(s2)).rot90::<INV>();
                let u2 = (t3.scale(s2) - t4.scale(s1)).rot90::<INV>();
                (a0 + t1 + t2).store(dst, o + q);
                let y1 = m1 + u1;
                let y2 = m2 + u2;
                let y3 = m2 - u2;
                let y4 = m1 - u1;
                let y1 = if TW { y1.cmul(w1) } else { y1 };
                let y2 = if TW { y2.cmul(w2) } else { y2 };
                let y3 = if TW { y3.cmul(w3) } else { y3 };
                let y4 = if TW { y4.cmul(w4) } else { y4 };
                y1.store(dst, o + s + q);
                y2.store(dst, o + 2 * s + q);
                y3.store(dst, o + 3 * s + q);
                y4.store(dst, o + 4 * s + q);
                q += C;
            }
        }
    }

    fn r8<const INV: bool, const C: usize, const TW: bool>(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
    ) {
        let (m, s) = (self.m, self.s);
        let h = T::from_f64(std::f64::consts::FRAC_1_SQRT_2); // √2/2
        for p in 0..m {
            let tb = 7 * p;
            let i = |c: usize| s * (p + c * m);
            let (i0, i1, i2, i3) = (i(0), i(1), i(2), i(3));
            let (i4, i5, i6, i7) = (i(4), i(5), i(6), i(7));
            let o = s * 8 * p;
            let mut q = 0;
            while q < s {
                let a0 = Vc::<T, C>::load(src, i0 + q);
                let a1 = Vc::<T, C>::load(src, i1 + q);
                let a2 = Vc::<T, C>::load(src, i2 + q);
                let a3 = Vc::<T, C>::load(src, i3 + q);
                let a4 = Vc::<T, C>::load(src, i4 + q);
                let a5 = Vc::<T, C>::load(src, i5 + q);
                let a6 = Vc::<T, C>::load(src, i6 + q);
                let a7 = Vc::<T, C>::load(src, i7 + q);
                // Even / odd 4-point DFTs (decimation in time within the
                // codelet).
                let e_t0 = a0 + a4;
                let e_t1 = a0 - a4;
                let e_t2 = a2 + a6;
                let e_t3 = (a2 - a6).rot90::<INV>();
                let e0 = e_t0 + e_t2;
                let e1 = e_t1 + e_t3;
                let e2 = e_t0 - e_t2;
                let e3 = e_t1 - e_t3;
                let o_t0 = a1 + a5;
                let o_t1 = a1 - a5;
                let o_t2 = a3 + a7;
                let o_t3 = (a3 - a7).rot90::<INV>();
                let o0 = o_t0 + o_t2;
                let o1 = o_t1 + o_t3;
                let o2 = o_t0 - o_t2;
                let o3 = o_t1 - o_t3;
                // w8^k·o_k for k = 1..4: w8 = (1 ∓ i)/√2, w8² = ∓i,
                // w8³ = (-1 ∓ i)/√2.
                let w8o1 = (o1 + o1.rot90::<INV>()).scale(h);
                let w8o2 = o2.rot90::<INV>();
                let w8o3 = (o3.rot90::<INV>() - o3).scale(h);
                (e0 + o0).store(dst, o + q);
                let y1 = e1 + w8o1;
                let y2 = e2 + w8o2;
                let y3 = e3 + w8o3;
                let y4 = e0 - o0;
                let y5 = e1 - w8o1;
                let y6 = e2 - w8o2;
                let y7 = e3 - w8o3;
                let y1 = if TW {
                    y1.cmul(self.tw::<INV, TW>(tb, 0))
                } else {
                    y1
                };
                let y2 = if TW {
                    y2.cmul(self.tw::<INV, TW>(tb, 1))
                } else {
                    y2
                };
                let y3 = if TW {
                    y3.cmul(self.tw::<INV, TW>(tb, 2))
                } else {
                    y3
                };
                let y4 = if TW {
                    y4.cmul(self.tw::<INV, TW>(tb, 3))
                } else {
                    y4
                };
                let y5 = if TW {
                    y5.cmul(self.tw::<INV, TW>(tb, 4))
                } else {
                    y5
                };
                let y6 = if TW {
                    y6.cmul(self.tw::<INV, TW>(tb, 5))
                } else {
                    y6
                };
                let y7 = if TW {
                    y7.cmul(self.tw::<INV, TW>(tb, 6))
                } else {
                    y7
                };
                y1.store(dst, o + s + q);
                y2.store(dst, o + 2 * s + q);
                y3.store(dst, o + 3 * s + q);
                y4.store(dst, o + 4 * s + q);
                y5.store(dst, o + 5 * s + q);
                y6.store(dst, o + 6 * s + q);
                y7.store(dst, o + 7 * s + q);
                q += C;
            }
        }
    }

    /// True when this stage can run via [`run_in_place`](Self::run_in_place).
    /// Final (`m == 1`) passes read and write the *same* index set
    /// `{k·s + q}`, so they need no second buffer — which lets odd-length
    /// stage chains skip the upfront data→scratch copy entirely.
    fn supports_in_place(&self) -> bool {
        self.m == 1 && matches!(self.radix, 2 | 4 | 8)
    }

    /// Twiddle-free final pass applied in place: all lanes of one `q` group
    /// are loaded into registers before any store, so the overlapping
    /// read/write sets never conflict.
    fn run_in_place(&self, buf: &mut [Complex<T>], dir: Direction) {
        debug_assert!(self.supports_in_place());
        let lanes = crate::simd::lanes_for(self.s);
        macro_rules! go {
            ($f:ident) => {
                match (lanes, dir) {
                    (4, Direction::Forward) => self.$f::<false, 4>(buf),
                    (4, Direction::Inverse) => self.$f::<true, 4>(buf),
                    (2, Direction::Forward) => self.$f::<false, 2>(buf),
                    (2, Direction::Inverse) => self.$f::<true, 2>(buf),
                    (_, Direction::Forward) => self.$f::<false, 1>(buf),
                    (_, Direction::Inverse) => self.$f::<true, 1>(buf),
                }
            };
        }
        match self.radix {
            2 => go!(r2_ip),
            4 => go!(r4_ip),
            _ => go!(r8_ip),
        }
    }

    fn r2_ip<const INV: bool, const C: usize>(&self, buf: &mut [Complex<T>]) {
        let s = self.s;
        let mut q = 0;
        while q < s {
            let a = Vc::<T, C>::load(buf, q);
            let b = Vc::<T, C>::load(buf, s + q);
            (a + b).store(buf, q);
            (a - b).store(buf, s + q);
            q += C;
        }
    }

    fn r4_ip<const INV: bool, const C: usize>(&self, buf: &mut [Complex<T>]) {
        let s = self.s;
        let mut q = 0;
        while q < s {
            let a0 = Vc::<T, C>::load(buf, q);
            let a1 = Vc::<T, C>::load(buf, s + q);
            let a2 = Vc::<T, C>::load(buf, 2 * s + q);
            let a3 = Vc::<T, C>::load(buf, 3 * s + q);
            let t0 = a0 + a2;
            let t1 = a0 - a2;
            let t2 = a1 + a3;
            let t3 = (a1 - a3).rot90::<INV>();
            (t0 + t2).store(buf, q);
            (t1 + t3).store(buf, s + q);
            (t0 - t2).store(buf, 2 * s + q);
            (t1 - t3).store(buf, 3 * s + q);
            q += C;
        }
    }

    fn r8_ip<const INV: bool, const C: usize>(&self, buf: &mut [Complex<T>]) {
        let s = self.s;
        let h = T::from_f64(std::f64::consts::FRAC_1_SQRT_2); // √2/2
        let mut q = 0;
        while q < s {
            let a0 = Vc::<T, C>::load(buf, q);
            let a1 = Vc::<T, C>::load(buf, s + q);
            let a2 = Vc::<T, C>::load(buf, 2 * s + q);
            let a3 = Vc::<T, C>::load(buf, 3 * s + q);
            let a4 = Vc::<T, C>::load(buf, 4 * s + q);
            let a5 = Vc::<T, C>::load(buf, 5 * s + q);
            let a6 = Vc::<T, C>::load(buf, 6 * s + q);
            let a7 = Vc::<T, C>::load(buf, 7 * s + q);
            let e_t0 = a0 + a4;
            let e_t1 = a0 - a4;
            let e_t2 = a2 + a6;
            let e_t3 = (a2 - a6).rot90::<INV>();
            let e0 = e_t0 + e_t2;
            let e1 = e_t1 + e_t3;
            let e2 = e_t0 - e_t2;
            let e3 = e_t1 - e_t3;
            let o_t0 = a1 + a5;
            let o_t1 = a1 - a5;
            let o_t2 = a3 + a7;
            let o_t3 = (a3 - a7).rot90::<INV>();
            let o0 = o_t0 + o_t2;
            let o1 = o_t1 + o_t3;
            let o2 = o_t0 - o_t2;
            let o3 = o_t1 - o_t3;
            let w8o1 = (o1 + o1.rot90::<INV>()).scale(h);
            let w8o2 = o2.rot90::<INV>();
            let w8o3 = (o3.rot90::<INV>() - o3).scale(h);
            (e0 + o0).store(buf, q);
            (e1 + w8o1).store(buf, s + q);
            (e2 + w8o2).store(buf, 2 * s + q);
            (e3 + w8o3).store(buf, 3 * s + q);
            (e0 - o0).store(buf, 4 * s + q);
            (e1 - w8o1).store(buf, 5 * s + q);
            (e2 - w8o2).store(buf, 6 * s + q);
            (e3 - w8o3).store(buf, 7 * s + q);
            q += C;
        }
    }

    fn generic<const INV: bool>(&self, src: &[Complex<T>], dst: &mut [Complex<T>]) {
        let r = self.radix;
        let (m, s) = (self.m, self.s);
        let mut tmp = [Complex::<T>::zero(); MAX_RADIX];
        for p in 0..m {
            let tb = (r - 1) * p;
            for q in 0..s {
                for (c, t) in tmp.iter_mut().enumerate().take(r) {
                    *t = src[s * (p + c * m) + q];
                }
                for k in 0..r {
                    let row = &self.dft[k * r..k * r + r];
                    let mut acc = tmp[0];
                    for c in 1..r {
                        acc += tmp[c] * dirw::<T, INV>(row[c]);
                    }
                    if k > 0 {
                        acc *= dirw::<T, INV>(self.twiddles[tb + k - 1]);
                    }
                    dst[s * (r * p + k) + q] = acc;
                }
            }
        }
    }
}

/// A reusable FFT plan for one transform length.
pub struct FftPlan<T: Real> {
    n: usize,
    /// Stockham passes, applied in order with ping-pong buffers.
    stages: Vec<Stage<T>>,
    /// Bluestein fallback for lengths with large prime factors.
    bluestein: Option<Box<BluesteinPlan<T>>>,
    /// Reusable scratch for the allocating [`execute`](Self::execute) entry
    /// point, so looping call sites pay for workspace once.
    scratch: ScratchPool<Complex<T>>,
}

impl<T: Real> FftPlan<T> {
    /// Build a plan for length `n`. `n = 0` is rejected.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let (stages, bluestein) = match radix_schedule(n) {
            Some(radices) => {
                let mut stages = Vec::with_capacity(radices.len());
                let mut n_cur = n;
                let mut s = 1;
                for &r in &radices {
                    stages.push(Stage::new(r, n_cur, s));
                    n_cur /= r;
                    s *= r;
                }
                (stages, None)
            }
            None => (Vec::new(), Some(Box::new(BluesteinPlan::new(n)))),
        };
        Self {
            n,
            stages,
            bluestein,
            scratch: ScratchPool::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when this length is served by the Bluestein fallback.
    pub fn uses_bluestein(&self) -> bool {
        self.bluestein.is_some()
    }

    /// In-place transform of a unit-stride buffer of length `n`, using the
    /// plan's own pooled scratch (no steady-state allocation).
    pub fn execute(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = self.scratch.take(self.scratch_len());
        self.execute_with_scratch(data, &mut scratch, dir);
        self.scratch.give(scratch);
    }

    /// Number of scratch elements required by
    /// [`execute_with_scratch`](Self::execute_with_scratch).
    pub fn scratch_len(&self) -> usize {
        match &self.bluestein {
            Some(b) => b.scratch_len(),
            None => self.n,
        }
    }

    /// In-place transform using caller-provided scratch (hot path: no
    /// allocation). `scratch.len()` must be at least [`scratch_len`](Self::scratch_len).
    pub fn execute_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        if self.n == 1 {
            return;
        }
        if let Some(b) = &self.bluestein {
            b.execute(data, scratch, dir);
            return;
        }
        let scratch = &mut scratch[..self.n];
        // Ping-pong so the final stage writes into `data`. An odd stage
        // count would need to start from a copy in scratch; when the final
        // (always twiddle-free) stage has an in-place codelet we instead run
        // the even-length body chain from `data` and finish in place,
        // skipping the copy altogether.
        let odd = self.stages.len() % 2 == 1;
        let in_place_last = odd && self.stages.last().is_some_and(Stage::supports_in_place);
        let body = if in_place_last {
            &self.stages[..self.stages.len() - 1]
        } else {
            &self.stages[..]
        };
        let (mut src, mut dst): (&mut [Complex<T>], &mut [Complex<T>]) = if odd && !in_place_last {
            scratch.copy_from_slice(data);
            (scratch, data)
        } else {
            (data, scratch)
        };
        for st in body {
            st.run(src, dst, dir);
            std::mem::swap(&mut src, &mut dst);
        }
        // After the last swap `src` aliases `data`.
        if in_place_last {
            self.stages[self.stages.len() - 1].run_in_place(src, dir);
        }
        if dir == Direction::Inverse {
            let inv = T::ONE / T::from_usize(self.n);
            for v in src.iter_mut() {
                *v = v.scale(inv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::Complex64;

    fn impulse_response(n: usize) {
        // FFT of a unit impulse at j0 is exp(-2πi·j0·k/n): tests twiddle
        // indexing for every factorization path.
        let plan = FftPlan::<f64>::new(n);
        for j0 in [0, 1, n / 2, n - 1] {
            let mut x = vec![Complex64::zero(); n];
            x[j0] = Complex64::one();
            plan.execute(&mut x, Direction::Forward);
            for (k, v) in x.iter().enumerate() {
                let expect =
                    Complex64::cis(-2.0 * std::f64::consts::PI * (j0 * k % n) as f64 / n as f64);
                assert!(
                    (*v - expect).abs() < 1e-10,
                    "n={n} j0={j0} k={k}: {v:?} vs {expect:?}"
                );
            }
        }
    }

    #[test]
    fn impulses_across_radices() {
        for n in [
            2, 3, 4, 5, 6, 8, 9, 12, 16, 20, 24, 27, 30, 32, 36, 40, 48, 60, 64, 72, 128, 144, 512,
        ] {
            impulse_response(n);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 3, 4, 6, 8, 12, 15, 18, 24, 36, 45, 64, 90, 128] {
            let plan = FftPlan::<f64>::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
                .collect();
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            let reference = dft_naive(&x);
            for k in 0..n {
                assert!(
                    (y[k] - reference[k]).abs() < 1e-9 * (n as f64),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn matches_frozen_reference_kernel() {
        // The pre-Stockham kernel is kept in crate::reference; the two
        // execution cores must agree to round-off on every direct length.
        use crate::reference::ReferencePlan;
        for n in [8usize, 12, 30, 64, 96, 120, 240, 360, 768] {
            let plan = FftPlan::<f64>::new(n);
            let old = ReferencePlan::<f64>::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.21).cos(), (i as f64 * 0.47).sin()))
                .collect();
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut a = x.clone();
                let mut b = x.clone();
                plan.execute(&mut a, dir);
                old.execute(&mut b, dir);
                for k in 0..n {
                    assert!(
                        (a[k] - b[k]).abs() < 1e-10 * (1.0 + n as f64),
                        "n={n} k={k} {dir:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [1usize, 2, 3, 4, 5, 12, 36, 100, 144, 192, 240] {
            let plan = FftPlan::<f64>::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
                .collect();
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            plan.execute(&mut y, Direction::Inverse);
            for k in 0..n {
                assert!((y[k] - x[k]).abs() < 1e-10 * (1.0 + n as f64));
            }
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 96;
        let plan = FftPlan::<f64>::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (2.0 * i as f64).cos()))
            .collect();
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }

    #[test]
    fn large_prime_uses_bluestein() {
        let plan = FftPlan::<f64>::new(37);
        assert!(plan.uses_bluestein());
        let plan = FftPlan::<f64>::new(36);
        assert!(!plan.uses_bluestein());
    }

    #[test]
    fn factorize_prefers_radix4() {
        let (f, left) = factorize(64);
        assert_eq!(f, vec![4, 4, 4]);
        assert_eq!(left, 1);
        let (f, left) = factorize(96);
        assert_eq!(f, vec![4, 4, 2, 3]);
        assert_eq!(left, 1);
        let (_, left) = factorize(74); // 2 · 37
        assert_eq!(left, 37);
    }

    #[test]
    fn schedule_prefers_radix8() {
        assert_eq!(radix_schedule(512), Some(vec![8, 8, 8]));
        assert_eq!(radix_schedule(64), Some(vec![8, 8]));
        assert_eq!(radix_schedule(96), Some(vec![8, 4, 3]));
        assert_eq!(radix_schedule(40), Some(vec![8, 5]));
        assert_eq!(radix_schedule(6), Some(vec![2, 3]));
        assert_eq!(radix_schedule(77), Some(vec![7, 11]));
        assert_eq!(radix_schedule(74), None); // 2 · 37 → Bluestein
        assert_eq!(radix_schedule(1), Some(vec![]));
    }

    #[test]
    fn generic_radix_codelet_lengths() {
        // 7, 11, 13 exercise the DFT-matrix fallback, alone and mixed.
        for n in [7usize, 11, 13, 14, 77, 91] {
            let plan = FftPlan::<f64>::new(n);
            assert!(!plan.uses_bluestein(), "n={n} should be direct");
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 1.3).sin(), (i as f64 * 0.6).cos()))
                .collect();
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            let reference = dft_naive(&x);
            for k in 0..n {
                assert!(
                    (y[k] - reference[k]).abs() < 1e-9 * (n as f64),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn single_point_transform_is_identity() {
        let plan = FftPlan::<f64>::new(1);
        let mut x = vec![Complex64::new(4.0, 2.0)];
        plan.execute(&mut x, Direction::Forward);
        assert_eq!(x[0], Complex64::new(4.0, 2.0));
    }

    #[test]
    fn f32_precision_acceptable() {
        use crate::Complex32;
        let n = 192; // 2^6·3, paper-style smooth size
        let plan = FftPlan::<f32>::new(n);
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.1).sin(), (i as f32 * 0.2).cos()))
            .collect();
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        plan.execute(&mut y, Direction::Inverse);
        for k in 0..n {
            assert!((y[k] - x[k]).abs() < 1e-4);
        }
    }

    #[test]
    fn pooled_execute_parks_scratch() {
        let plan = FftPlan::<f64>::new(64);
        let mut x = vec![Complex64::one(); 64];
        plan.execute(&mut x, Direction::Forward);
        plan.execute(&mut x, Direction::Inverse);
        // Sequential calls reuse one parked buffer.
        assert_eq!(plan.scratch.idle(), 1);
    }
}
