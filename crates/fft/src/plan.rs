//! Mixed-radix Cooley–Tukey FFT plans.
//!
//! A [`FftPlan`] precomputes the factorization of `n` and a full-length
//! twiddle table, then executes transforms of that length any number of
//! times — mirroring the plan/execute split of FFTW and cuFFT that the
//! paper's code relies on. Lengths whose largest prime factor exceeds
//! [`MAX_RADIX`] are routed through Bluestein's algorithm transparently.

use crate::bluestein::BluesteinPlan;
use crate::complex::{Complex, Real};

/// Transform direction. Forward is unnormalized; Inverse applies `1/n`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    /// Sign of the exponent: -1 for forward, +1 for inverse.
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }

    pub fn reverse(self) -> Self {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// Largest prime handled by the direct mixed-radix path; larger primes fall
/// back to Bluestein.
pub const MAX_RADIX: usize = 31;

/// A reusable FFT plan for one transform length.
pub struct FftPlan<T: Real> {
    n: usize,
    /// Prime factorization of `n`, largest factors first (keeps the generic
    /// butterfly at the outermost level where it runs fewest times).
    factors: Vec<usize>,
    /// Twiddle table: `tw[k] = exp(-2πi·k/n)` for `k ∈ [0, n)`.
    twiddles: Vec<Complex<T>>,
    /// Bluestein fallback for lengths with large prime factors.
    bluestein: Option<Box<BluesteinPlan<T>>>,
}

/// Prime factorization, smallest factor first, combining 2·2 → 4 so the
/// radix-4 butterfly is used where possible.
pub(crate) fn factorize(mut n: usize) -> (Vec<usize>, usize) {
    let mut factors = Vec::new();
    // Pull out fours first, then a possible leftover two.
    while n.is_multiple_of(4) {
        factors.push(4);
        n /= 4;
    }
    if n.is_multiple_of(2) {
        factors.push(2);
        n /= 2;
    }
    let mut p = 3;
    while p * p <= n && p <= MAX_RADIX {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 && n <= MAX_RADIX {
        factors.push(n);
        n = 1;
    }
    (factors, n) // n > 1 here means a leftover factor too large for direct CT
}

impl<T: Real> FftPlan<T> {
    /// Build a plan for length `n`. `n = 0` is rejected.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let (factors, leftover) = factorize(n);
        let bluestein = if leftover > 1 {
            Some(Box::new(BluesteinPlan::new(n)))
        } else {
            None
        };
        let twiddles = if bluestein.is_none() {
            let step = -2.0 * core::f64::consts::PI / n as f64;
            (0..n)
                .map(|k| Complex::from_f64((step * k as f64).cos(), (step * k as f64).sin()))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            n,
            factors,
            twiddles,
            bluestein,
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when this length is served by the Bluestein fallback.
    pub fn uses_bluestein(&self) -> bool {
        self.bluestein.is_some()
    }

    /// Look up `exp(sign·2πi·k/n)` from the table.
    #[inline]
    fn tw(&self, idx: usize, dir: Direction) -> Complex<T> {
        let t = self.twiddles[idx % self.n];
        match dir {
            Direction::Forward => t,
            Direction::Inverse => t.conj(),
        }
    }

    /// In-place transform of a unit-stride buffer of length `n`.
    pub fn execute(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.execute_with_scratch(data, &mut scratch, dir);
    }

    /// Number of scratch elements required by
    /// [`execute_with_scratch`](Self::execute_with_scratch).
    pub fn scratch_len(&self) -> usize {
        match &self.bluestein {
            Some(b) => b.scratch_len(),
            None => self.n,
        }
    }

    /// In-place transform using caller-provided scratch (hot path: no
    /// allocation). `scratch.len()` must be at least [`scratch_len`](Self::scratch_len).
    pub fn execute_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        if self.n == 1 {
            return;
        }
        if let Some(b) = &self.bluestein {
            b.execute(data, scratch, dir);
            return;
        }
        let scratch = &mut scratch[..self.n];
        scratch.copy_from_slice(data);
        self.recurse(scratch, data, self.n, 1, 0, dir);
        if dir == Direction::Inverse {
            let inv = T::ONE / T::from_usize(self.n);
            for v in data.iter_mut() {
                *v = v.scale(inv);
            }
        }
    }

    /// Recursive decimation-in-time step.
    ///
    /// Transforms the length-`sub_n` sequence `inp[0], inp[s], inp[2s], …`
    /// into `out[0..sub_n]`. `level` indexes into `self.factors`.
    fn recurse(
        &self,
        inp: &[Complex<T>],
        out: &mut [Complex<T>],
        sub_n: usize,
        s: usize,
        level: usize,
        dir: Direction,
    ) {
        if sub_n == 1 {
            out[0] = inp[0];
            return;
        }
        let r = self.factors[level];
        let m = sub_n / r;
        for q in 0..r {
            self.recurse(
                &inp[q * s..],
                &mut out[q * m..(q + 1) * m],
                m,
                s * r,
                level + 1,
                dir,
            );
        }
        // Combine the r sub-transforms: for each k0, gather the q-th outputs,
        // apply twiddles w_n^{q·k0}, and take an r-point DFT across q.
        let tw_step = self.n / sub_n;
        let mut tmp = [Complex::<T>::zero(); MAX_RADIX];
        for k0 in 0..m {
            for (q, t) in tmp.iter_mut().enumerate().take(r) {
                let y = out[q * m + k0];
                *t = if q == 0 {
                    y
                } else {
                    y * self.tw(q * k0 * tw_step, dir)
                };
            }
            self.butterfly(&tmp[..r], out, k0, m, dir);
        }
    }

    /// r-point DFT of `tmp`, scattered to `out[k0 + c·m]` for `c ∈ [0, r)`.
    #[inline]
    fn butterfly(
        &self,
        tmp: &[Complex<T>],
        out: &mut [Complex<T>],
        k0: usize,
        m: usize,
        dir: Direction,
    ) {
        match tmp.len() {
            2 => {
                let (a, b) = (tmp[0], tmp[1]);
                out[k0] = a + b;
                out[k0 + m] = a - b;
            }
            3 => {
                // Radix-3: uses w3 = exp(∓2πi/3) = (-1/2, ∓√3/2).
                let (a, b, c) = (tmp[0], tmp[1], tmp[2]);
                let s = b + c;
                let d = b - c;
                let half = T::from_f64(0.5);
                let rt3h = T::from_f64(0.866_025_403_784_438_6); // √3/2
                let re_part = a - s.scale(half);
                // ∓i·(√3/2)·d, sign depends on direction.
                let rot = match dir {
                    Direction::Forward => d.mul_neg_i().scale(rt3h),
                    Direction::Inverse => d.mul_i().scale(rt3h),
                };
                out[k0] = a + s;
                out[k0 + m] = re_part + rot;
                out[k0 + 2 * m] = re_part - rot;
            }
            4 => {
                let (a, b, c, d) = (tmp[0], tmp[1], tmp[2], tmp[3]);
                let t0 = a + c;
                let t1 = a - c;
                let t2 = b + d;
                let t3 = match dir {
                    Direction::Forward => (b - d).mul_neg_i(),
                    Direction::Inverse => (b - d).mul_i(),
                };
                out[k0] = t0 + t2;
                out[k0 + m] = t1 + t3;
                out[k0 + 2 * m] = t0 - t2;
                out[k0 + 3 * m] = t1 - t3;
            }
            r => {
                // Generic small-prime butterfly: naive r² DFT using the main
                // twiddle table (w_r = w_n^{n/r}).
                let step = self.n / r;
                for c in 0..r {
                    let mut acc = tmp[0];
                    for (q, &t) in tmp.iter().enumerate().skip(1) {
                        acc += t * self.tw(q * c * step, dir);
                    }
                    out[k0 + c * m] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::Complex64;

    fn impulse_response(n: usize) {
        // FFT of a unit impulse at j0 is exp(-2πi·j0·k/n): tests twiddle
        // indexing for every factorization path.
        let plan = FftPlan::<f64>::new(n);
        for j0 in [0, 1, n / 2, n - 1] {
            let mut x = vec![Complex64::zero(); n];
            x[j0] = Complex64::one();
            plan.execute(&mut x, Direction::Forward);
            for (k, v) in x.iter().enumerate() {
                let expect =
                    Complex64::cis(-2.0 * std::f64::consts::PI * (j0 * k % n) as f64 / n as f64);
                assert!(
                    (*v - expect).abs() < 1e-10,
                    "n={n} j0={j0} k={k}: {v:?} vs {expect:?}"
                );
            }
        }
    }

    #[test]
    fn impulses_across_radices() {
        for n in [
            2, 3, 4, 5, 6, 8, 9, 12, 16, 20, 27, 30, 36, 48, 60, 64, 72, 144,
        ] {
            impulse_response(n);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 3, 4, 6, 8, 12, 15, 18, 24, 36, 45, 64, 90, 128] {
            let plan = FftPlan::<f64>::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
                .collect();
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            let reference = dft_naive(&x);
            for k in 0..n {
                assert!(
                    (y[k] - reference[k]).abs() < 1e-9 * (n as f64),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [1usize, 2, 3, 4, 5, 12, 36, 100, 144, 192, 240] {
            let plan = FftPlan::<f64>::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
                .collect();
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            plan.execute(&mut y, Direction::Inverse);
            for k in 0..n {
                assert!((y[k] - x[k]).abs() < 1e-10 * (1.0 + n as f64));
            }
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 96;
        let plan = FftPlan::<f64>::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (2.0 * i as f64).cos()))
            .collect();
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }

    #[test]
    fn large_prime_uses_bluestein() {
        let plan = FftPlan::<f64>::new(37);
        assert!(plan.uses_bluestein());
        let plan = FftPlan::<f64>::new(36);
        assert!(!plan.uses_bluestein());
    }

    #[test]
    fn factorize_prefers_radix4() {
        let (f, left) = factorize(64);
        assert_eq!(f, vec![4, 4, 4]);
        assert_eq!(left, 1);
        let (f, left) = factorize(96);
        assert_eq!(f, vec![4, 4, 2, 3]);
        assert_eq!(left, 1);
        let (_, left) = factorize(74); // 2 · 37
        assert_eq!(left, 37);
    }

    #[test]
    fn single_point_transform_is_identity() {
        let plan = FftPlan::<f64>::new(1);
        let mut x = vec![Complex64::new(4.0, 2.0)];
        plan.execute(&mut x, Direction::Forward);
        assert_eq!(x[0], Complex64::new(4.0, 2.0));
    }

    #[test]
    fn f32_precision_acceptable() {
        use crate::Complex32;
        let n = 192; // 2^6·3, paper-style smooth size
        let plan = FftPlan::<f32>::new(n);
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.1).sin(), (i as f32 * 0.2).cos()))
            .collect();
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        plan.execute(&mut y, Direction::Inverse);
        for k in 0..n {
            assert!((y[k] - x[k]).abs() < 1e-4);
        }
    }
}
