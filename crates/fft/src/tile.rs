//! Cache-blocked 2-D element copies.
//!
//! One kernel serves two customers: [`crate::ManyPlan`] uses it to transpose
//! a tile of strided FFT lines into contiguous scratch (and scatter the
//! transformed tile back), and the simulated device's `cudaMemcpy2DAsync`
//! path (`psdns-device::copy`) uses it for pitched host↔device copies. Both
//! are `height × width` element grids with independent row/column strides on
//! each side; when both sides are row-contiguous the copy degenerates to a
//! `memcpy` per row, otherwise it walks [`BLOCK`]-square sub-tiles so the
//! strided side's working set stays inside L1 while the unit-stride side
//! streams.

/// Sub-tile edge in elements. 64 complex-f64 rows/columns = 1 KiB per line,
/// so a 64×64 block touches at most 64 cache lines per side.
pub const BLOCK: usize = 64;

/// Copy a `rows × cols` grid of elements between arbitrarily strided
/// layouts: element `(r, c)` moves from
/// `src[src_off + r·src_row + c·src_col]` to
/// `dst[dst_off + r·dst_row + c·dst_col]`.
///
/// Bounds are asserted up front; the borrow rules guarantee `src` and `dst`
/// do not overlap.
#[allow(clippy::too_many_arguments)]
pub fn copy_grid<T: Copy>(
    src: &[T],
    src_off: usize,
    src_row: usize,
    src_col: usize,
    dst: &mut [T],
    dst_off: usize,
    dst_row: usize,
    dst_col: usize,
    rows: usize,
    cols: usize,
) {
    if rows == 0 || cols == 0 {
        return;
    }
    let last = |off: usize, row: usize, col: usize| off + (rows - 1) * row + (cols - 1) * col;
    assert!(
        last(src_off, src_row, src_col) < src.len(),
        "grid copy reads past source: {} >= {}",
        last(src_off, src_row, src_col),
        src.len()
    );
    assert!(
        last(dst_off, dst_row, dst_col) < dst.len(),
        "grid copy writes past destination: {} >= {}",
        last(dst_off, dst_row, dst_col),
        dst.len()
    );
    // SAFETY: bounds checked above; `&`/`&mut` guarantee disjoint buffers.
    unsafe {
        copy_grid_raw(
            src.as_ptr(),
            src_off,
            src_row,
            src_col,
            dst.as_mut_ptr(),
            dst_off,
            dst_row,
            dst_col,
            rows,
            cols,
        );
    }
}

/// Raw-pointer form of [`copy_grid`] for callers that partition one buffer
/// into disjoint element sets across threads (e.g. the parallel strided
/// batch path, where tiles interleave and safe subslices cannot express the
/// partition).
///
/// # Safety
/// Every touched index must be in bounds for its buffer, and the source and
/// destination element sets must not overlap (or `src != dst` entirely).
/// Concurrent callers must touch pairwise-disjoint destination sets.
#[allow(clippy::too_many_arguments)]
pub unsafe fn copy_grid_raw<T: Copy>(
    src: *const T,
    src_off: usize,
    src_row: usize,
    src_col: usize,
    dst: *mut T,
    dst_off: usize,
    dst_row: usize,
    dst_col: usize,
    rows: usize,
    cols: usize,
) {
    if src_col == 1 && dst_col == 1 {
        // Both sides row-contiguous: one memcpy per row.
        for r in 0..rows {
            let s = src.add(src_off + r * src_row);
            let d = dst.add(dst_off + r * dst_row);
            std::ptr::copy_nonoverlapping(s, d, cols);
        }
        return;
    }
    // Blocked transpose-style walk: at least one side is column-strided, so
    // confine the strided accesses to BLOCK-square sub-tiles.
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + BLOCK).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + BLOCK).min(cols);
            for r in r0..r1 {
                let sbase = src_off + r * src_row;
                let dbase = dst_off + r * dst_row;
                for c in c0..c1 {
                    *dst.add(dbase + c * dst_col) = *src.add(sbase + c * src_col);
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_rows_fast_path() {
        let src: Vec<u32> = (0..64).collect();
        let mut dst = vec![0u32; 64];
        // 4 rows of 8 from pitch 16 into dense pitch 8.
        copy_grid(&src, 2, 16, 1, &mut dst, 0, 8, 1, 4, 8);
        for r in 0..4 {
            for c in 0..8 {
                assert_eq!(dst[r * 8 + c], (2 + r * 16 + c) as u32);
            }
        }
    }

    #[test]
    fn strided_gather_transposes() {
        // Gather 3 interleaved columns (stride 3) into contiguous lines.
        let n = 5;
        let count = 3;
        let src: Vec<u32> = (0..(n * count) as u32).collect();
        let mut dst = vec![0u32; n * count];
        copy_grid(&src, 0, 1, count, &mut dst, 0, n, 1, count, n);
        for b in 0..count {
            for i in 0..n {
                assert_eq!(dst[b * n + i], (b + i * count) as u32);
            }
        }
    }

    #[test]
    fn blocked_path_exceeding_block_size() {
        let rows = BLOCK + 7;
        let cols = BLOCK + 3;
        let src: Vec<u64> = (0..(rows * cols) as u64).collect();
        let mut dst = vec![0u64; rows * cols];
        // Full transpose: (r, c) -> (c, r).
        copy_grid(&src, 0, cols, 1, &mut dst, 0, 1, rows, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(dst[c * rows + r], (r * cols + c) as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "past source")]
    fn oob_read_panics() {
        let src = vec![0u8; 10];
        let mut dst = vec![0u8; 100];
        copy_grid(&src, 0, 4, 1, &mut dst, 0, 4, 1, 4, 4);
    }

    #[test]
    fn empty_grid_is_a_no_op() {
        let src = vec![1u8; 4];
        let mut dst = vec![0u8; 4];
        copy_grid(&src, 0, 1, 1, &mut dst, 0, 1, 1, 0, 4);
        assert_eq!(dst, vec![0u8; 4]);
    }
}
