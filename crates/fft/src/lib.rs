//! # psdns-fft
//!
//! A self-contained FFT library written for the `psdns` workspace, replacing
//! the roles played by FFTW (host transforms) and cuFFT (device transforms)
//! in the SC '19 paper *"GPU acceleration of extreme scale pseudo-spectral
//! simulations of turbulence using asynchronism"*.
//!
//! ## Capabilities
//!
//! * complex-to-complex transforms of any length via an iterative Stockham
//!   autosort kernel (dedicated radix-2/3/4/5/8 codelets with per-stage
//!   twiddle tables, generic small-prime stage, and Bluestein's algorithm
//!   for large prime factors);
//! * real-to-complex / complex-to-real transforms of even lengths using the
//!   half-length packing trick (the paper transforms real velocity fields in
//!   the x direction, complex in y and z);
//! * a cuFFT-style *advanced data layout* ("many") interface with arbitrary
//!   `stride` and `dist`, used by the solver to transform pencils without
//!   reordering, exactly as discussed in paper §3.3 — strided batches run
//!   in cache-blocked tiles ([`tile`]) and can fan out over the persistent
//!   worker pool in `psdns-sync` ([`ManyPlan::execute_parallel`]);
//! * serial 2-D/3-D helpers used as the ground truth for the distributed
//!   transpose-based transforms in `psdns-core`;
//! * a frozen copy of the pre-Stockham recursive kernel ([`reference`])
//!   that the perf baseline runner times side by side with the live one.
//!
//! ## Conventions
//!
//! The forward transform is unnormalized,
//! `X[k] = Σ_j x[j]·exp(−2πi·jk/n)`, and the inverse carries the `1/n`
//! factor, so `inverse(forward(x)) == x`. Real transforms follow the same
//! convention; `RealFftPlan::inverse` includes the `1/n`.
//!
//! ```
//! use psdns_fft::{Complex64, FftPlan, Direction};
//! let plan = FftPlan::<f64>::new(12);
//! let mut data: Vec<Complex64> = (0..12)
//!     .map(|i| Complex64::new(i as f64, 0.0))
//!     .collect();
//! let orig = data.clone();
//! plan.execute(&mut data, Direction::Forward);
//! plan.execute(&mut data, Direction::Inverse);
//! for (a, b) in data.iter().zip(&orig) {
//!     assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
//! }
//! ```

pub mod bluestein;
pub mod complex;
pub mod dft;
pub mod many;
pub mod many_real;
pub mod nd;
pub mod plan;
pub mod real;
pub mod reference;
pub mod scratch;
pub mod simd;
pub mod tile;

pub use complex::{Complex, Complex32, Complex64, Real};
pub use dft::{dft_naive, idft_naive};
pub use many::ManyPlan;
pub use many_real::ManyRealPlan;
pub use nd::{fft_2d, fft_3d, Dims3};
pub use plan::{Direction, FftPlan};
pub use real::RealFftPlan;
pub use reference::ReferencePlan;
pub use scratch::ScratchPool;

/// Returns true when `n` is a product of the radices {2,3,5} only —
/// "FFT friendly" sizes in the sense of paper §3.5 ("N be powers of 2 or at
/// least an integer rich in factors of 2 … and evenly divisible by 3").
pub fn is_smooth(n: usize) -> bool {
    if n == 0 {
        return false;
    }
    let mut m = n;
    for p in [2usize, 3, 5] {
        while m.is_multiple_of(p) {
            m /= p;
        }
    }
    m == 1
}

/// The paper's target problem size, 18432 = 2^11 · 3^2: rich in factors of
/// two and divisible by 3 to split across Summit's 3 GPUs per socket.
pub const PAPER_N: usize = 18432;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_size_is_smooth() {
        assert!(is_smooth(PAPER_N));
        assert_eq!(PAPER_N % 3, 0);
        assert_eq!(PAPER_N % 1024, 0);
    }

    #[test]
    fn smoothness_edges() {
        assert!(!is_smooth(0));
        assert!(is_smooth(1));
        assert!(is_smooth(2 * 3 * 5));
        assert!(!is_smooth(7));
        assert!(!is_smooth(2 * 7));
    }
}
