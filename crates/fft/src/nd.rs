//! Serial multi-dimensional transforms on contiguous arrays.
//!
//! These are the single-address-space ground truth for the distributed,
//! transpose-based transforms in `psdns-core`: the integration tests require
//! that slab/pencil-decomposed 3-D FFTs across many ranks match `fft_3d`
//! executed on the gathered field.

use crate::complex::{Complex, Real};
use crate::many::ManyPlan;
use crate::plan::Direction;

/// Dimensions of a 3-D field stored x-fastest: `idx = x + nx·(y + ny·z)`.
///
/// Matches the paper's memory layout ("arrays of stride unity" in x, §3.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Dims3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims3 {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }
}

/// In-place 2-D FFT of an `nx × ny` array stored x-fastest.
pub fn fft_2d<T: Real>(data: &mut [Complex<T>], nx: usize, ny: usize, dir: Direction) {
    assert_eq!(data.len(), nx * ny);
    // Rows (x direction): contiguous lines.
    let plan_x = ManyPlan::new(nx, 1, nx, ny);
    // Columns (y direction): stride nx, one batch per x.
    let plan_y = ManyPlan::new(ny, nx, 1, nx);
    let mut scratch = vec![Complex::zero(); plan_x.scratch_len().max(plan_y.scratch_len())];
    plan_x.execute_with_scratch(data, &mut scratch, dir);
    plan_y.execute_with_scratch(data, &mut scratch, dir);
}

/// In-place 3-D FFT, transforming y, then z, then x — the paper's transform
/// order for the Fourier→physical direction (§3.3).
pub fn fft_3d<T: Real>(data: &mut [Complex<T>], dims: Dims3, dir: Direction) {
    assert_eq!(data.len(), dims.len());
    let Dims3 { nx, ny, nz } = dims;
    // y direction: stride nx; batch over each (x, z) pair.
    let plan_y = ManyPlan::new(ny, nx, 1, nx);
    // z direction: stride nx·ny; one call per y covers the nx lines there.
    let plan_z = ManyPlan::new(nz, nx * ny, 1, nx);
    // x direction: contiguous lines, batched over (y, z).
    let plan_x = ManyPlan::new(nx, 1, nx, ny * nz);
    let mut scratch = vec![
        Complex::zero();
        plan_y
            .scratch_len()
            .max(plan_z.scratch_len())
            .max(plan_x.scratch_len())
    ];
    for z in 0..nz {
        let base = z * nx * ny;
        plan_y.execute_with_scratch(&mut data[base..base + nx * ny], &mut scratch, dir);
    }
    for y in 0..ny {
        // Lines in z for all x at this y: base offsets y·nx .. y·nx+nx-1.
        // ManyPlan's batches advance by dist=1, so one call covers x∈[0,nx).
        let base = y * nx;
        let end = base + (nz - 1) * nx * ny + nx;
        plan_z.execute_with_scratch(&mut data[base..end], &mut scratch, dir);
    }
    plan_x.execute_with_scratch(data, &mut scratch, dir);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::Complex64;

    /// Naive 3-D DFT by separable 1-D naive transforms.
    fn dft3_naive(data: &[Complex64], d: Dims3) -> Vec<Complex64> {
        let mut out = data.to_vec();
        // x
        for z in 0..d.nz {
            for y in 0..d.ny {
                let line: Vec<_> = (0..d.nx).map(|x| out[d.idx(x, y, z)]).collect();
                let t = dft_naive(&line);
                for x in 0..d.nx {
                    out[d.idx(x, y, z)] = t[x];
                }
            }
        }
        // y
        for z in 0..d.nz {
            for x in 0..d.nx {
                let line: Vec<_> = (0..d.ny).map(|y| out[d.idx(x, y, z)]).collect();
                let t = dft_naive(&line);
                for y in 0..d.ny {
                    out[d.idx(x, y, z)] = t[y];
                }
            }
        }
        // z
        for y in 0..d.ny {
            for x in 0..d.nx {
                let line: Vec<_> = (0..d.nz).map(|z| out[d.idx(x, y, z)]).collect();
                let t = dft_naive(&line);
                for z in 0..d.nz {
                    out[d.idx(x, y, z)] = t[z];
                }
            }
        }
        out
    }

    #[test]
    fn fft3d_matches_naive() {
        let d = Dims3::new(6, 4, 8);
        let data: Vec<Complex64> = (0..d.len())
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let mut fast = data.clone();
        fft_3d(&mut fast, d, Direction::Forward);
        let slow = dft3_naive(&data, d);
        for i in 0..d.len() {
            assert!((fast[i] - slow[i]).abs() < 1e-8, "i={i}");
        }
    }

    #[test]
    fn fft3d_roundtrip() {
        let d = Dims3::cube(12);
        let data: Vec<Complex64> = (0..d.len())
            .map(|i| Complex64::new(i as f64 % 17.0, -(i as f64 % 7.0)))
            .collect();
        let mut work = data.clone();
        fft_3d(&mut work, d, Direction::Forward);
        fft_3d(&mut work, d, Direction::Inverse);
        for i in 0..d.len() {
            assert!((work[i] - data[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fft2d_single_mode() {
        let (nx, ny) = (8, 8);
        let (kx, ky) = (2usize, 3usize);
        let mut data = vec![Complex64::zero(); nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let phase = 2.0
                    * std::f64::consts::PI
                    * (kx as f64 * x as f64 / nx as f64 + ky as f64 * y as f64 / ny as f64);
                data[x + nx * y] = Complex64::cis(phase);
            }
        }
        fft_2d(&mut data, nx, ny, Direction::Forward);
        for y in 0..ny {
            for x in 0..nx {
                let expect = if x == kx && y == ky {
                    (nx * ny) as f64
                } else {
                    0.0
                };
                assert!(
                    (data[x + nx * y].re - expect).abs() < 1e-9 && data[x + nx * y].im.abs() < 1e-9,
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn dims_indexing_is_x_fastest() {
        let d = Dims3::new(3, 4, 5);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), 3);
        assert_eq!(d.idx(0, 0, 1), 12);
        assert_eq!(d.len(), 60);
    }
}
