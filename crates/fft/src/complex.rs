//! Minimal complex arithmetic and the floating-point abstraction used by the
//! whole workspace. We deliberately avoid external numeric crates: the paper's
//! code is Fortran + CUDA Fortran and uses nothing beyond `complex(4)`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating point scalar abstraction (implemented for `f32` and `f64`).
///
/// The production DNS in the paper runs in single precision (§3.5 memory
/// estimates assume 4-byte words); validation tests here prefer `f64`.
pub trait Real:
    Copy
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
{
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    const PI: Self;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_usize(x: usize) -> Self {
        Self::from_f64(x as f64)
    }
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn exp(self) -> Self;
    fn recip(self) -> Self {
        Self::ONE / self
    }
    /// Unit-roundoff scale used by tests to set tolerances.
    fn epsilon() -> Self;

    /// Width of the IEEE-754 representation in bits (32 or 64). Together
    /// with [`Real::to_bits_u64`]/[`Real::from_bits_u64`] this gives
    /// integrity layers (ABFT checksums, seeded bit-flip injection) access
    /// to the exact bit pattern without knowing the concrete type.
    const BITS: u32;
    /// The IEEE-754 bit pattern, widened to `u64` (zero-extended for `f32`).
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Real::to_bits_u64`]; the upper 32 bits are ignored for
    /// `f32`.
    fn from_bits_u64(bits: u64) -> Self;
}

macro_rules! impl_real {
    ($t:ty, $bits:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const PI: Self = core::f64::consts::PI as $t;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }

            const BITS: u32 = <$bits>::BITS;
            #[inline]
            fn to_bits_u64(self) -> u64 {
                self.to_bits() as u64
            }
            #[inline]
            fn from_bits_u64(bits: u64) -> Self {
                <$t>::from_bits(bits as $bits)
            }
        }
    };
}

impl_real!(f32, u32);
impl_real!(f64, u64);

/// A complex number. Layout-compatible with `[T; 2]` (`repr(C)`), so slices
/// of `Complex<T>` can be reinterpreted as interleaved scalar buffers — the
/// same layout cuFFT and FFTW use, and what the device copy engines in
/// `psdns-device` move around.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

pub type Complex32 = Complex<f32>;
pub type Complex64 = Complex<f64>;

impl<T: Real> Complex<T> {
    pub const fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// `exp(i·theta)`.
    pub fn cis(theta: T) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Multiply by `i` (cheaper than a full complex multiply).
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Multiply by `-i`.
    pub fn mul_neg_i(self) -> Self {
        Self::new(self.im, -self.re)
    }

    pub fn from_f64(re: f64, im: f64) -> Self {
        Self::new(T::from_f64(re), T::from_f64(im))
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.re, self.im)
    }
}

/// Reinterpret a slice of complex numbers as interleaved re/im scalars.
pub fn as_scalars<T: Real>(data: &[Complex<T>]) -> &[T] {
    // SAFETY: Complex<T> is repr(C) with exactly two T fields, so a slice of
    // n Complex<T> has the same layout as a slice of 2n T.
    unsafe { core::slice::from_raw_parts(data.as_ptr() as *const T, data.len() * 2) }
}

/// Mutable variant of [`as_scalars`].
pub fn as_scalars_mut<T: Real>(data: &mut [Complex<T>]) -> &mut [T] {
    // SAFETY: see as_scalars.
    unsafe { core::slice::from_raw_parts_mut(data.as_mut_ptr() as *mut T, data.len() * 2) }
}

/// Reinterpret an even-length slice of interleaved scalars as complex
/// numbers — the inverse of [`as_scalars_mut`]. Panics on odd length.
///
/// This is what lets the batched real transforms run *in place* inside a
/// caller's real-typed line: `n = 2h` reals are exactly the `h` packed
/// complex values of the half-length trick.
pub fn as_complexes_mut<T: Real>(data: &mut [T]) -> &mut [Complex<T>] {
    assert!(
        data.len().is_multiple_of(2),
        "complex reinterpretation needs an even scalar count"
    );
    // SAFETY: Complex<T> is repr(C) with two T fields, so its size is 2·T
    // and its alignment equals T's — any even-length &mut [T] has the same
    // layout as &mut [Complex<T>] of half the length.
    unsafe { core::slice::from_raw_parts_mut(data.as_mut_ptr() as *mut Complex<T>, data.len() / 2) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        assert_eq!(a + b, Complex64::new(1.25, 1.0));
        assert_eq!(a - b, Complex64::new(1.75, -5.0));
        let prod = a * b;
        assert!((prod.re - (1.5 * -0.25 - (-2.0) * 3.0)).abs() < 1e-15);
        assert!((prod.im - (1.5 * 3.0 + (-2.0) * -0.25)).abs() < 1e-15);
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let a = Complex64::new(0.3, 0.7);
        assert_eq!(a.mul_i(), a * Complex64::i());
        assert_eq!(a.mul_neg_i(), a * Complex64::new(0.0, -1.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn conj_involution_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj().conj(), a);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn scalar_reinterpretation_roundtrip() {
        let v = vec![Complex64::new(1.0, 2.0), Complex64::new(3.0, 4.0)];
        let s = as_scalars(&v);
        assert_eq!(s, &[1.0, 2.0, 3.0, 4.0]);
        let mut v2 = v.clone();
        as_scalars_mut(&mut v2)[3] = 9.0;
        assert_eq!(v2[1].im, 9.0);
    }
}
