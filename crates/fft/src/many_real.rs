//! Batched real-to-complex / complex-to-real transforms — the real-input
//! counterpart of [`crate::ManyPlan`].
//!
//! The solver's x-direction transforms are real↔complex (conjugate symmetry
//! of real velocity fields, paper §3.3), and every pencil or slab holds
//! hundreds of x-lines. Looping a scalar [`crate::RealFftPlan`] over those
//! lines re-pays the pack/combine bookkeeping per line and streams each line
//! through cache alone. `ManyRealPlan` instead mirrors `ManyPlan`'s
//! strided/batched ("advanced data layout") interface: contiguous lines run
//! in place inside the caller's buffers with zero staging copies, and
//! strided layouts gather whole tiles of lines through the cache-blocked
//! copy kernel in [`crate::tile`], transform them back-to-back while hot,
//! and scatter the results.
//!
//! Layout: real element `j` of batch `b` lives at
//! `reals[b·rdist + j·rstride]`; complex (half-spectrum) element `k` of
//! batch `b` lives at `spec[b·cdist + k·cstride]`, `k ∈ [0, n/2]`.
//! Conventions match [`crate::RealFftPlan`]: the forward transform is
//! unnormalized, the inverse carries the `1/n`.

use crate::complex::{as_complexes_mut, as_scalars, as_scalars_mut, Complex, Real};
use crate::plan::{Direction, FftPlan};
use crate::scratch::{AlignedVec, ScratchPool};
use crate::tile;
use psdns_sync::Mutex;

/// A plan executing `count` real transforms of even length `n` over strided
/// real/complex layouts.
pub struct ManyRealPlan<T: Real> {
    n: usize,
    /// Half length `n/2`: the packed complex transform size.
    h: usize,
    inner: FftPlan<T>,
    /// `exp(-2πi·k/n)` for `k ∈ [0, h]` — same table as `RealFftPlan`.
    twiddle: Vec<Complex<T>>,
    count: usize,
    rstride: usize,
    rdist: usize,
    cstride: usize,
    cdist: usize,
    /// Lines per tile on the strided path (same sizing policy as
    /// `ManyPlan`: keep a tile within a few hundred KiB of cache).
    tile: usize,
    scratch: ScratchPool<Complex<T>>,
    /// Cached per-participant scratch slots for the parallel paths (see
    /// `ManyPlan::slots`): keeps steady-state `*_parallel` allocation-free.
    slots: Mutex<Vec<AlignedVec<Complex<T>>>>,
}

impl<T: Real> ManyRealPlan<T> {
    pub fn new(
        n: usize,
        count: usize,
        rstride: usize,
        rdist: usize,
        cstride: usize,
        cdist: usize,
    ) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "real FFT length must be even, got {n}"
        );
        assert!(count > 0 && rstride > 0 && cstride > 0);
        assert!(
            count == 1 || (rdist > 0 && cdist > 0),
            "dists must be positive for count > 1"
        );
        let h = n / 2;
        let twiddle = (0..=h)
            .map(|k| {
                let ang = -2.0 * core::f64::consts::PI * k as f64 / n as f64;
                Complex::from_f64(ang.cos(), ang.sin())
            })
            .collect();
        Self {
            n,
            h,
            inner: FftPlan::new(h),
            twiddle,
            count,
            rstride,
            rdist,
            cstride,
            cdist,
            tile: (8192 / (h + 1)).clamp(4, 64).min(count),
            scratch: ScratchPool::new(),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Dense batch layout: real line `b` occupies `reals[b·n .. (b+1)·n]`,
    /// spectrum line `b` occupies `spec[b·(n/2+1) ..]`.
    pub fn contiguous(n: usize, count: usize) -> Self {
        Self::new(n, count, 1, n, 1, n / 2 + 1)
    }

    /// Logical (real) transform length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Complex outputs per line: `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.h + 1
    }

    pub fn count(&self) -> usize {
        self.count
    }

    /// Minimum length of the real-side buffer.
    pub fn required_real_len(&self) -> usize {
        (self.count - 1) * self.rdist + (self.n - 1) * self.rstride + 1
    }

    /// Minimum length of the complex-side buffer.
    pub fn required_spec_len(&self) -> usize {
        (self.count - 1) * self.cdist + self.h * self.cstride + 1
    }

    /// True when both sides store each line contiguously — the zero-copy
    /// fast path (transform runs in place inside the caller's buffers).
    fn dense_lines(&self) -> bool {
        self.rstride == 1 && self.cstride == 1
    }

    /// Scratch requirement (complex elements) for the `_with_scratch`
    /// entry points.
    pub fn scratch_len(&self) -> usize {
        if self.dense_lines() {
            self.inner.scratch_len()
        } else {
            self.tile * (self.h + 1) + self.inner.scratch_len()
        }
    }

    /// Forward transform of all batches: `reals` → half spectra in `spec`.
    /// Pooled scratch; no steady-state allocation.
    pub fn forward(&self, reals: &[T], spec: &mut [Complex<T>]) {
        let mut scratch = self.scratch.take(self.scratch_len());
        self.forward_with_scratch(reals, spec, &mut scratch);
        self.scratch.give(scratch);
    }

    /// Inverse transform of all batches (includes the `1/n`): half spectra
    /// in `spec` → `reals`. Pooled scratch; no steady-state allocation.
    pub fn inverse(&self, spec: &[Complex<T>], reals: &mut [T]) {
        let mut scratch = self.scratch.take(self.scratch_len());
        self.inverse_with_scratch(spec, reals, &mut scratch);
        self.scratch.give(scratch);
    }

    /// Forward transform with caller-provided scratch.
    pub fn forward_with_scratch(
        &self,
        reals: &[T],
        spec: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        self.check_lens(reals.len(), spec.len(), scratch.len());
        if self.dense_lines() {
            for b in 0..self.count {
                self.forward_line_dense(reals, spec, scratch, b);
            }
        } else {
            let (tilebuf, inner) = scratch.split_at_mut(self.tile * (self.h + 1));
            let mut b0 = 0;
            while b0 < self.count {
                let t = self.tile.min(self.count - b0);
                self.forward_tile(reals, spec, tilebuf, inner, b0, t);
                b0 += t;
            }
        }
    }

    /// Inverse transform with caller-provided scratch.
    pub fn inverse_with_scratch(
        &self,
        spec: &[Complex<T>],
        reals: &mut [T],
        scratch: &mut [Complex<T>],
    ) {
        self.check_lens(reals.len(), spec.len(), scratch.len());
        if self.dense_lines() {
            for b in 0..self.count {
                self.inverse_line_dense(spec, reals, scratch, b);
            }
        } else {
            let (tilebuf, inner) = scratch.split_at_mut(self.tile * (self.h + 1));
            let mut b0 = 0;
            while b0 < self.count {
                let t = self.tile.min(self.count - b0);
                self.inverse_tile(spec, reals, tilebuf, inner, b0, t);
                b0 += t;
            }
        }
    }

    fn check_lens(&self, rlen: usize, clen: usize, slen: usize) {
        assert!(
            rlen >= self.required_real_len(),
            "real buffer too small: {rlen} < {}",
            self.required_real_len()
        );
        assert!(
            clen >= self.required_spec_len(),
            "spectrum buffer too small: {clen} < {}",
            self.required_spec_len()
        );
        assert!(slen >= self.scratch_len());
    }

    /// Dense-line forward: pack the 2h input reals straight into the output
    /// spectrum line's first h complex slots, transform in place, and expand
    /// to the h+1 half-spectrum values — no staging buffer at all.
    fn forward_line_dense(
        &self,
        reals: &[T],
        spec: &mut [Complex<T>],
        inner_scratch: &mut [Complex<T>],
        b: usize,
    ) {
        let line = &mut spec[b * self.cdist..b * self.cdist + self.h + 1];
        as_scalars_mut(&mut line[..self.h])
            .copy_from_slice(&reals[b * self.rdist..b * self.rdist + self.n]);
        self.inner
            .execute_with_scratch(&mut line[..self.h], inner_scratch, Direction::Forward);
        self.combine_in_place(line);
    }

    /// Dense-line inverse: unpack the spectrum line directly into the output
    /// real line viewed as h packed complexes, then transform in place.
    fn inverse_line_dense(
        &self,
        spec: &[Complex<T>],
        reals: &mut [T],
        inner_scratch: &mut [Complex<T>],
        b: usize,
    ) {
        let line = &spec[b * self.cdist..b * self.cdist + self.h + 1];
        let packed = as_complexes_mut(&mut reals[b * self.rdist..b * self.rdist + self.n]);
        self.uncombine_into(line, packed);
        self.inner
            .execute_with_scratch(packed, inner_scratch, Direction::Inverse);
    }

    /// Gather `t` strided real lines into the tile buffer, transform them
    /// back-to-back, and scatter the spectra.
    fn forward_tile(
        &self,
        reals: &[T],
        spec: &mut [Complex<T>],
        tilebuf: &mut [Complex<T>],
        inner: &mut [Complex<T>],
        b0: usize,
        t: usize,
    ) {
        let w = self.h + 1;
        // Each tile row holds h+1 complexes = 2(h+1) scalars; the n = 2h
        // input reals fill the first 2h scalar slots (packed layout).
        tile::copy_grid(
            reals,
            b0 * self.rdist,
            self.rdist,
            self.rstride,
            as_scalars_mut(tilebuf),
            0,
            2 * w,
            1,
            t,
            self.n,
        );
        for l in 0..t {
            let line = &mut tilebuf[l * w..(l + 1) * w];
            self.inner
                .execute_with_scratch(&mut line[..self.h], inner, Direction::Forward);
            self.combine_in_place(line);
        }
        tile::copy_grid(
            tilebuf,
            0,
            w,
            1,
            spec,
            b0 * self.cdist,
            self.cdist,
            self.cstride,
            t,
            w,
        );
    }

    /// Gather `t` strided spectrum lines, inverse-transform them in the tile
    /// buffer, and scatter the real lines.
    fn inverse_tile(
        &self,
        spec: &[Complex<T>],
        reals: &mut [T],
        tilebuf: &mut [Complex<T>],
        inner: &mut [Complex<T>],
        b0: usize,
        t: usize,
    ) {
        let w = self.h + 1;
        tile::copy_grid(
            spec,
            b0 * self.cdist,
            self.cdist,
            self.cstride,
            tilebuf,
            0,
            w,
            1,
            t,
            w,
        );
        for l in 0..t {
            let line = &mut tilebuf[l * w..(l + 1) * w];
            self.uncombine_in_place(line);
            self.inner
                .execute_with_scratch(&mut line[..self.h], inner, Direction::Inverse);
        }
        tile::copy_grid(
            as_scalars(tilebuf),
            0,
            2 * w,
            1,
            reals,
            b0 * self.rdist,
            self.rdist,
            self.rstride,
            t,
            self.n,
        );
    }

    /// Expand the in-place packed FFT (`line[0..h]`) into the `h+1`
    /// half-spectrum values, in place. Same math as
    /// `RealFftPlan::forward_with_scratch`, reorganized pairwise so every
    /// value is read before either of its pair slots is written:
    /// `out[k] = E + W·O` and `out[h-k] = conj(E - W·O)` share one twiddle
    /// multiply per pair. The middle self-pair (`k = h-k`) writes twice with
    /// values equal up to rounding, so the uniform loop is in-place safe.
    fn combine_in_place(&self, line: &mut [Complex<T>]) {
        let half = T::from_f64(0.5);
        let h = self.h;
        let z0 = line[0];
        // k = 0 and k = h both derive from packed[0]: even = Re, odd = Im.
        let even = Complex::new(z0.re, T::ZERO);
        let odd = Complex::new(z0.im, T::ZERO);
        line[0] = even + self.twiddle[0] * odd;
        line[h] = even + self.twiddle[h] * odd;
        for k in 1..=h / 2 {
            let zk = line[k];
            let zr = line[h - k].conj();
            let even = (zk + zr).scale(half);
            // odd = (zk - zr) / (2i) = (zk - zr)·(-i/2)
            let odd = (zk - zr).mul_neg_i().scale(half);
            let p = self.twiddle[k] * odd;
            line[k] = even + p;
            line[h - k] = (even - p).conj();
        }
    }

    /// Collapse a half spectrum (`line`, `h+1` values) into the `h` packed
    /// inputs of the half-length inverse, writing into `packed`. Matches
    /// `RealFftPlan::inverse_with_scratch` including the `k = 0` edge that
    /// reads `line[h]`.
    fn uncombine_into(&self, line: &[Complex<T>], packed: &mut [Complex<T>]) {
        let half = T::from_f64(0.5);
        let h = self.h;
        {
            let xk = line[0];
            let xr = line[h].conj();
            let even = (xk + xr).scale(half);
            let odd = (xk - xr).scale(half) * self.twiddle[0].conj();
            packed[0] = even + odd.mul_i();
        }
        for k in 1..=h / 2 {
            let xk = line[k];
            let xr = line[h - k].conj();
            let even = (xk + xr).scale(half);
            // odd = (xk - xr)/2 · e^{+2πik/n} = (xk - xr)/2 · conj(twiddle).
            let odd = (xk - xr).scale(half) * self.twiddle[k].conj();
            packed[k] = even + odd.mul_i();
            // packed[h-k] = conj(even_k) + conj(odd_k)·i = conj(even - i·odd).
            packed[h - k] = (even + odd.mul_neg_i()).conj();
        }
    }

    /// In-place [`uncombine_into`]: `line[0..h]` becomes the packed input,
    /// `line[h]` is consumed. The `k = 0` step runs first (it alone reads
    /// slot `h`); each later pair reads both its slots before writing them,
    /// and the middle self-pair's two writes agree up to rounding.
    fn uncombine_in_place(&self, line: &mut [Complex<T>]) {
        let half = T::from_f64(0.5);
        let h = self.h;
        {
            let xk = line[0];
            let xr = line[h].conj();
            let even = (xk + xr).scale(half);
            let odd = (xk - xr).scale(half) * self.twiddle[0].conj();
            line[0] = even + odd.mul_i();
        }
        for k in 1..=h / 2 {
            let xk = line[k];
            let xr = line[h - k].conj();
            let even = (xk + xr).scale(half);
            let odd = (xk - xr).scale(half) * self.twiddle[k].conj();
            line[k] = even + odd.mul_i();
            line[h - k] = (even + odd.mul_neg_i()).conj();
        }
    }
}

/// Chunk-body callback for `run_slotted`: `(lo, hi, per-participant scratch)`.
type SlotBody<'a, T> = dyn Fn(usize, usize, &mut [Complex<T>]) + Sync + 'a;

/// Raw-pointer wrapper mirroring `many::SendPtr`: lets the worker pool's
/// participants write pairwise-disjoint line sets of one output buffer.
struct SendPtr<T>(*mut T);
// SAFETY: accessed only through pairwise-disjoint batch index sets,
// partitioned by the pool's chunk cursor before any access.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T: Real> ManyRealPlan<T> {
    /// True when distinct batches touch pairwise-disjoint complex elements.
    pub fn spec_batches_disjoint(&self) -> bool {
        let w = self.h + 1;
        self.count == 1
            || (self.cstride == 1 && self.cdist >= w)
            || (self.cdist == 1 && self.cstride >= self.count)
            || self.cdist > self.h * self.cstride
    }

    /// True when distinct batches touch pairwise-disjoint real elements.
    pub fn real_batches_disjoint(&self) -> bool {
        self.count == 1
            || (self.rstride == 1 && self.rdist >= self.n)
            || (self.rdist == 1 && self.rstride >= self.count)
            || self.rdist > (self.n - 1) * self.rstride
    }

    /// Forward transform fanned out over the persistent worker pool (up to
    /// `threads` participants, calling thread included). Requires disjoint
    /// output (spectrum) lines; falls back to serial otherwise.
    pub fn forward_parallel(&self, reals: &[T], spec: &mut [Complex<T>], threads: usize) {
        if threads <= 1 || self.count < 2 || !self.spec_batches_disjoint() {
            self.forward(reals, spec);
            return;
        }
        self.check_lens(reals.len(), spec.len(), self.scratch_len());
        let pool = psdns_sync::pool::global();
        let sp = SendPtr(spec.as_mut_ptr());
        let speclen = spec.len();
        if self.dense_lines() {
            let chunk = self.dense_chunk(threads);
            self.run_slotted(pool, self.count, chunk, threads, &|lo, hi, scratch| {
                for b in lo..hi {
                    // SAFETY: spectrum line b is in bounds (checked above)
                    // and disjoint across b (`spec_batches_disjoint`).
                    let spec = unsafe { std::slice::from_raw_parts_mut(sp.get(), speclen) };
                    self.forward_line_dense(reals, spec, scratch, b);
                }
            });
        } else {
            let ntiles = self.count.div_ceil(self.tile);
            let chunk = self.tile_chunk(ntiles, threads);
            self.run_slotted(pool, ntiles, chunk, threads, &|lo, hi, scratch| {
                let (tilebuf, inner) = scratch.split_at_mut(self.tile * (self.h + 1));
                for ti in lo..hi {
                    let b0 = ti * self.tile;
                    let t = self.tile.min(self.count - b0);
                    // SAFETY: tile ti writes exactly the spectrum lines of
                    // batches [b0, b0+t); tiles partition the batches and
                    // batches are pairwise disjoint, so concurrent tiles
                    // never alias. Bounds hold per check_lens above.
                    let spec = unsafe { std::slice::from_raw_parts_mut(sp.get(), speclen) };
                    self.forward_tile(reals, spec, tilebuf, inner, b0, t);
                }
            });
        }
    }

    /// Inverse counterpart of [`forward_parallel`](Self::forward_parallel):
    /// requires disjoint output (real) lines; serial fallback otherwise.
    pub fn inverse_parallel(&self, spec: &[Complex<T>], reals: &mut [T], threads: usize) {
        if threads <= 1 || self.count < 2 || !self.real_batches_disjoint() {
            self.inverse(spec, reals);
            return;
        }
        self.check_lens(reals.len(), spec.len(), self.scratch_len());
        let pool = psdns_sync::pool::global();
        let rp = SendPtr(reals.as_mut_ptr());
        let rlen = reals.len();
        if self.dense_lines() {
            let chunk = self.dense_chunk(threads);
            self.run_slotted(pool, self.count, chunk, threads, &|lo, hi, scratch| {
                for b in lo..hi {
                    // SAFETY: real line b is in bounds (checked above) and
                    // disjoint across b (`real_batches_disjoint`).
                    let reals = unsafe { std::slice::from_raw_parts_mut(rp.get(), rlen) };
                    self.inverse_line_dense(spec, reals, scratch, b);
                }
            });
        } else {
            let ntiles = self.count.div_ceil(self.tile);
            let chunk = self.tile_chunk(ntiles, threads);
            self.run_slotted(pool, ntiles, chunk, threads, &|lo, hi, scratch| {
                let (tilebuf, inner) = scratch.split_at_mut(self.tile * (self.h + 1));
                for ti in lo..hi {
                    let b0 = ti * self.tile;
                    let t = self.tile.min(self.count - b0);
                    // SAFETY: same partition argument as forward_parallel,
                    // on the real side.
                    let reals = unsafe { std::slice::from_raw_parts_mut(rp.get(), rlen) };
                    self.inverse_tile(spec, reals, tilebuf, inner, b0, t);
                }
            });
        }
    }

    /// Chunk size for dense-line batches: tile-sized chunks preserve
    /// locality, but never fewer than ~4 chunks per participant so the
    /// dynamic schedule can absorb stragglers.
    fn dense_chunk(&self, threads: usize) -> usize {
        self.tile
            .min(self.count)
            .max(self.count.div_ceil(threads * 4))
    }

    /// Chunk size over tiles: aim for ~4 chunks per participant.
    fn tile_chunk(&self, ntiles: usize, threads: usize) -> usize {
        ntiles.div_ceil(threads * 4).max(1)
    }

    /// Fan a chunked range out over the pool with one pre-taken, cache-line
    /// aligned scratch slot per participant — no per-chunk pool traffic and
    /// no false sharing between participants' slots.
    fn run_slotted(
        &self,
        pool: &psdns_sync::pool::WorkerPool,
        total: usize,
        chunk: usize,
        threads: usize,
        body: &SlotBody<'_, T>,
    ) {
        let limit = pool.max_participants(threads);
        // Reuse the cached slot vector: after warm-up this whole setup is
        // allocation-free (a concurrent caller on the same plan finds the
        // cache taken and pays a one-off allocation — correct, just slower).
        let mut slots = std::mem::take(&mut *self.slots.lock());
        while slots.len() < limit {
            slots.push(AlignedVec::new());
        }
        for s in slots.iter_mut().take(limit) {
            s.ensure_len(self.scratch_len());
        }
        let slotp = SendPtr(slots.as_mut_ptr());
        pool.run_with_id(total, chunk, threads, &|id, lo, hi| {
            // SAFETY: participant ids are dense, unique per job, and
            // < max_participants, so each participant has exclusive access
            // to its slot for the job's duration.
            let scratch = unsafe { &mut *slotp.get().add(id) };
            body(lo, hi, scratch);
        });
        *self.slots.lock() = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::RealFftPlan;
    use crate::Complex64;

    fn wave(i: usize) -> f64 {
        (i as f64 * 0.37).sin() + (i as f64 * 0.11).cos() * 0.5
    }

    /// Reference: run the scalar RealFftPlan line by line over the same
    /// strided layout.
    fn scalar_forward(plan: &ManyRealPlan<f64>, reals: &[f64], spec: &mut [Complex64]) {
        let rp = RealFftPlan::<f64>::new(plan.n);
        let mut line = vec![0.0; plan.n];
        let mut out = vec![Complex64::zero(); plan.h + 1];
        for b in 0..plan.count {
            for i in 0..plan.n {
                line[i] = reals[b * plan.rdist + i * plan.rstride];
            }
            rp.forward(&line, &mut out);
            for (k, v) in out.iter().enumerate() {
                spec[b * plan.cdist + k * plan.cstride] = *v;
            }
        }
    }

    fn scalar_inverse(plan: &ManyRealPlan<f64>, spec: &[Complex64], reals: &mut [f64]) {
        let rp = RealFftPlan::<f64>::new(plan.n);
        let mut line = vec![Complex64::zero(); plan.h + 1];
        let mut out = vec![0.0; plan.n];
        for b in 0..plan.count {
            for (k, v) in line.iter_mut().enumerate() {
                *v = spec[b * plan.cdist + k * plan.cstride];
            }
            rp.inverse(&line, &mut out);
            for (i, v) in out.iter().enumerate() {
                reals[b * plan.rdist + i * plan.rstride] = *v;
            }
        }
    }

    #[test]
    fn dense_forward_matches_scalar_plan() {
        for n in [2usize, 4, 6, 8, 16, 64, 96] {
            let count = 5;
            let plan = ManyRealPlan::<f64>::contiguous(n, count);
            let reals: Vec<f64> = (0..n * count).map(wave).collect();
            let mut spec = vec![Complex64::zero(); plan.required_spec_len()];
            let mut want = spec.clone();
            plan.forward(&reals, &mut spec);
            scalar_forward(&plan, &reals, &mut want);
            for (a, b) in spec.iter().zip(&want) {
                assert!((*a - *b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn dense_roundtrip_identity() {
        for n in [4usize, 6, 16, 48, 128] {
            let count = 7;
            let plan = ManyRealPlan::<f64>::contiguous(n, count);
            let reals: Vec<f64> = (0..n * count).map(wave).collect();
            let mut spec = vec![Complex64::zero(); plan.required_spec_len()];
            plan.forward(&reals, &mut spec);
            let mut back = vec![0.0; n * count];
            plan.inverse(&spec, &mut back);
            for (a, b) in back.iter().zip(&reals) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn strided_columns_match_scalar_plan() {
        // Real lines as interleaved columns (x-lines of a y-fastest grid):
        // rstride = count, rdist = 1; spectra likewise column-interleaved.
        let n = 32;
        let count = 10;
        let plan = ManyRealPlan::<f64>::new(n, count, count, 1, count, 1);
        let reals: Vec<f64> = (0..n * count).map(wave).collect();
        let mut spec = vec![Complex64::zero(); plan.required_spec_len()];
        let mut want = spec.clone();
        plan.forward(&reals, &mut spec);
        scalar_forward(&plan, &reals, &mut want);
        for (i, (a, b)) in spec.iter().zip(&want).enumerate() {
            assert!((*a - *b).abs() < 1e-10, "i={i}");
        }
        // And back.
        let mut back = vec![0.0; reals.len()];
        plan.inverse(&spec, &mut back);
        for (a, b) in back.iter().zip(&reals) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn mixed_layout_dense_reals_strided_spectra() {
        let n = 24;
        let count = 9;
        let plan = ManyRealPlan::<f64>::new(n, count, 1, n, count, 1);
        let reals: Vec<f64> = (0..n * count).map(wave).collect();
        let mut spec = vec![Complex64::zero(); plan.required_spec_len()];
        let mut want = spec.clone();
        plan.forward(&reals, &mut spec);
        scalar_forward(&plan, &reals, &mut want);
        for (a, b) in spec.iter().zip(&want) {
            assert!((*a - *b).abs() < 1e-10);
        }
        let mut back = vec![0.0; reals.len()];
        let mut wantr = back.clone();
        plan.inverse(&spec, &mut back);
        scalar_inverse(&plan, &spec, &mut wantr);
        for (a, b) in back.iter().zip(&wantr) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn many_tiles_with_ragged_tail() {
        let n = 8; // tile = 8192/5 → 64; count forces 3 tiles incl. ragged
        let count = 150;
        let plan = ManyRealPlan::<f64>::new(n, count, count, 1, count, 1);
        assert!(plan.count() > plan.tile);
        let reals: Vec<f64> = (0..n * count).map(wave).collect();
        let mut spec = vec![Complex64::zero(); plan.required_spec_len()];
        let mut want = spec.clone();
        plan.forward(&reals, &mut spec);
        scalar_forward(&plan, &reals, &mut want);
        for (a, b) in spec.iter().zip(&want) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parallel_matches_serial_dense_and_strided() {
        for (rs, rd, cs, cd) in [(1, 64, 1, 33), (12, 1, 12, 1)] {
            let n = 64;
            let count = 12;
            let plan = ManyRealPlan::<f64>::new(n, count, rs, rd, cs, cd);
            let reals: Vec<f64> = (0..plan.required_real_len()).map(wave).collect();
            let mut a = vec![Complex64::zero(); plan.required_spec_len()];
            let mut b = a.clone();
            plan.forward(&reals, &mut a);
            plan.forward_parallel(&reals, &mut b, 4);
            for (x, y) in a.iter().zip(&b) {
                assert!((*x - *y).abs() < 1e-12);
            }
            let mut ra = vec![0.0; plan.required_real_len()];
            let mut rb = ra.clone();
            plan.inverse(&a, &mut ra);
            plan.inverse_parallel(&a, &mut rb, 4);
            for (x, y) in ra.iter().zip(&rb) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pooled_scratch_parks_after_use() {
        let plan = ManyRealPlan::<f64>::contiguous(16, 4);
        let reals: Vec<f64> = (0..64).map(wave).collect();
        let mut spec = vec![Complex64::zero(); plan.required_spec_len()];
        plan.forward(&reals, &mut spec);
        plan.forward(&reals, &mut spec);
        assert_eq!(plan.scratch.idle(), 1);
    }

    #[test]
    fn disjointness_detection() {
        let p = ManyRealPlan::<f64>::contiguous(8, 4);
        assert!(p.spec_batches_disjoint() && p.real_batches_disjoint());
        // Spectrum lines packed tighter than h+1: overlapping.
        let q = ManyRealPlan::<f64>::new(8, 4, 1, 8, 1, 3);
        assert!(!q.spec_batches_disjoint());
        assert!(q.real_batches_disjoint());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        let _ = ManyRealPlan::<f64>::new(9, 2, 1, 9, 1, 5);
    }

    #[test]
    fn f32_roundtrip() {
        let n = 48;
        let count = 6;
        let plan = ManyRealPlan::<f32>::contiguous(n, count);
        let reals: Vec<f32> = (0..n * count).map(|i| wave(i) as f32).collect();
        let mut spec = vec![Complex::<f32>::zero(); plan.required_spec_len()];
        plan.forward(&reals, &mut spec);
        let mut back = vec![0.0f32; n * count];
        plan.inverse(&spec, &mut back);
        for (a, b) in back.iter().zip(&reals) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
