//! Portable SIMD lane vectors for the Stockham codelets.
//!
//! A [`Vc<T, C>`] is a small fixed array of `C` interleaved complex values —
//! one register-group's worth of the unit-stride `q` loop in a Stockham
//! pass. Every operation is a plain element-wise loop over the `C` lanes, so
//! the compiler fully unrolls it and (because `Complex<T>` is `repr(C)` over
//! two scalars) sees a flat `2·C`-wide scalar kernel it can map onto packed
//! mul/add/shuffle instructions on any target — no nightly features, no
//! intrinsics, and `C = 1` *is* the scalar fallback rather than a separate
//! code path.
//!
//! The complex multiply is phrased in lane form: with `swap_ri` exchanging
//! the re/im pair inside each lane (a `vpermilpd`-shaped shuffle) and
//! [`Vc::mul_ri`] scaling the re/im halves by independent factors,
//! `z·w = z·(wr, wr) + swap(z)·(−wi, wi)` — two packed multiplies, one
//! packed add, one shuffle per lane group, which is exactly the interleaved
//! complex-product idiom vector ISAs are built around.

use crate::complex::{Complex, Real};
use core::ops::{Add, Sub};
use core::sync::atomic::{AtomicU8, Ordering};

/// `C` complex lanes processed together by one codelet butterfly.
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(transparent)]
pub struct Vc<T, const C: usize>(pub [Complex<T>; C]);

impl<T: Real, const C: usize> Vc<T, C> {
    /// Load `C` consecutive complex values starting at `src[off]`.
    #[inline(always)]
    pub fn load(src: &[Complex<T>], off: usize) -> Self {
        let mut v = [Complex::zero(); C];
        v.copy_from_slice(&src[off..off + C]);
        Self(v)
    }

    /// Store the lanes to `C` consecutive slots starting at `dst[off]`.
    #[inline(always)]
    pub fn store(self, dst: &mut [Complex<T>], off: usize) {
        dst[off..off + C].copy_from_slice(&self.0);
    }

    /// Multiply every lane by the real scalar `f`.
    #[inline(always)]
    pub fn scale(self, f: T) -> Self {
        let mut v = self.0;
        for z in &mut v {
            *z = z.scale(f);
        }
        Self(v)
    }

    /// Swap the re/im halves of every lane: `(x, y) → (y, x)`.
    #[inline(always)]
    pub fn swap_ri(self) -> Self {
        let mut v = self.0;
        for z in &mut v {
            *z = Complex::new(z.im, z.re);
        }
        Self(v)
    }

    /// Scale the re half of every lane by `fr` and the im half by `fi`.
    #[inline(always)]
    pub fn mul_ri(self, fr: T, fi: T) -> Self {
        let mut v = self.0;
        for z in &mut v {
            *z = Complex::new(z.re * fr, z.im * fi);
        }
        Self(v)
    }

    /// Lane-wise complex multiply by the (broadcast) twiddle `w`.
    #[inline(always)]
    pub fn cmul(self, w: Complex<T>) -> Self {
        self.mul_ri(w.re, w.re) + self.swap_ri().mul_ri(-w.im, w.im)
    }

    /// Lane-wise `∓i·z`: forward (`INV = false`) rotates by `−i`, inverse by
    /// `+i` — the same convention as the scalar codelets' `rot90`.
    #[inline(always)]
    pub fn rot90<const INV: bool>(self) -> Self {
        if INV {
            self.swap_ri().mul_ri(-T::ONE, T::ONE)
        } else {
            self.swap_ri().mul_ri(T::ONE, -T::ONE)
        }
    }
}

impl<T: Real, const C: usize> Add for Vc<T, C> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut v = self.0;
        for (a, b) in v.iter_mut().zip(rhs.0) {
            *a += b;
        }
        Self(v)
    }
}

impl<T: Real, const C: usize> Sub for Vc<T, C> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        let mut v = self.0;
        for (a, b) in v.iter_mut().zip(rhs.0) {
            *a -= b;
        }
        Self(v)
    }
}

/// Codelet dispatch mode for the vectorized Stockham passes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CodeletMode {
    /// Pick the widest lane count the stage stride admits (default).
    Auto,
    /// Force the 1-lane instantiation everywhere — the A/B baseline the
    /// `fft_simd` bench group and the equivalence proptests compare against.
    Scalar,
}

/// 0 = unresolved (consult `PSDNS_SIMD` on first use), 1 = Auto, 2 = Scalar.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Current codelet mode. Resolved once from the `PSDNS_SIMD` environment
/// variable (`0` / `off` / `scalar` force [`CodeletMode::Scalar`]) unless
/// overridden by [`set_codelet_mode`].
pub fn codelet_mode() -> CodeletMode {
    match MODE.load(Ordering::Relaxed) {
        1 => CodeletMode::Auto,
        2 => CodeletMode::Scalar,
        _ => {
            let mode = match std::env::var("PSDNS_SIMD") {
                Ok(v) if matches!(v.as_str(), "0" | "off" | "scalar") => CodeletMode::Scalar,
                _ => CodeletMode::Auto,
            };
            set_codelet_mode(mode);
            mode
        }
    }
}

/// Override the codelet mode for the whole process — used by the bench
/// runner's simd-vs-scalar A/B and by the equivalence proptests.
pub fn set_codelet_mode(mode: CodeletMode) {
    let v = match mode {
        CodeletMode::Auto => 1,
        CodeletMode::Scalar => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Widest lane count admitted for a stage with unit-stride run length `s`:
/// 4 when `s` is a multiple of 4, 2 when even, else scalar. [`Scalar`
/// mode](CodeletMode::Scalar) pins this to 1.
#[inline]
pub fn lanes_for(s: usize) -> usize {
    if codelet_mode() == CodeletMode::Scalar {
        1
    } else if s.is_multiple_of(4) {
        4
    } else if s.is_multiple_of(2) {
        2
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    fn sample() -> Vc<f64, 2> {
        Vc([Complex64::new(1.5, -2.0), Complex64::new(-0.25, 3.0)])
    }

    #[test]
    fn cmul_matches_scalar_complex_multiply() {
        let w = Complex64::new(0.6, -0.8);
        let v = sample().cmul(w);
        for (lane, z) in v.0.iter().zip(sample().0) {
            let expect = z * w;
            assert!((lane.re - expect.re).abs() < 1e-15);
            assert!((lane.im - expect.im).abs() < 1e-15);
        }
    }

    #[test]
    fn rot90_matches_mul_i_conventions() {
        let v = sample();
        let fwd = v.rot90::<false>();
        let inv = v.rot90::<true>();
        for i in 0..2 {
            assert_eq!(fwd.0[i], v.0[i].mul_neg_i());
            assert_eq!(inv.0[i], v.0[i].mul_i());
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let src: Vec<Complex64> = (0..6)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let v = Vc::<f64, 4>::load(&src, 1);
        let mut dst = vec![Complex64::zero(); 6];
        v.store(&mut dst, 2);
        assert_eq!(&dst[2..6], &src[1..5]);
    }

    #[test]
    fn lane_width_follows_stride() {
        set_codelet_mode(CodeletMode::Auto);
        assert_eq!(lanes_for(1), 1);
        assert_eq!(lanes_for(2), 2);
        assert_eq!(lanes_for(6), 2);
        assert_eq!(lanes_for(8), 4);
        set_codelet_mode(CodeletMode::Scalar);
        assert_eq!(lanes_for(8), 1);
        set_codelet_mode(CodeletMode::Auto);
    }
}
