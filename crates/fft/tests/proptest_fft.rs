//! Property-based tests for the FFT substrate: the invariants here must hold
//! for *every* length, including awkward primes served by Bluestein.

use proptest::prelude::*;
use psdns_fft::simd::{set_codelet_mode, CodeletMode};
use psdns_fft::{
    dft_naive, Complex, Complex64, Direction, FftPlan, ManyPlan, ManyRealPlan, RealFftPlan,
};

/// Units-in-last-place distance between two doubles (0 when bit-identical).
fn ulps(a: f64, b: f64) -> u64 {
    let ord = |x: f64| -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN - bits
        } else {
            bits
        }
    };
    (ord(a) - ord(b)).unsigned_abs()
}

fn arb_signal(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), n..=n)
        .prop_map(|v| v.into_iter().map(|(r, i)| Complex64::new(r, i)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// inverse(forward(x)) == x for arbitrary lengths (mixed radix + Bluestein).
    #[test]
    fn roundtrip_any_length(n in 1usize..200, seed in 0u64..1000) {
        let plan = FftPlan::<f64>::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed.wrapping_add(1)) as f64;
                Complex64::new((t * 1e-3).sin(), (t * 7e-4).cos())
            })
            .collect();
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        plan.execute(&mut y, Direction::Inverse);
        for k in 0..n {
            prop_assert!((y[k] - x[k]).abs() < 1e-8 * (1.0 + n as f64));
        }
    }

    /// Parseval: Σ|x|² == (1/n)·Σ|X|².
    #[test]
    fn parseval_any_length(x in (2usize..120).prop_flat_map(arb_signal)) {
        let n = x.len();
        let plan = FftPlan::<f64>::new(n);
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() < 1e-7 * time.max(1.0));
    }

    /// Linearity: F(a·x + y) == a·F(x) + F(y).
    #[test]
    fn linearity(n in 2usize..80, a in -10.0f64..10.0) {
        let plan = FftPlan::<f64>::new(n);
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let y: Vec<Complex64> = (0..n).map(|i| Complex64::new(-(i as f64), 2.0 * i as f64)).collect();

        let mut combo: Vec<Complex64> = x.iter().zip(&y).map(|(u, v)| u.scale(a) + *v).collect();
        plan.execute(&mut combo, Direction::Forward);

        let mut fx = x.clone();
        plan.execute(&mut fx, Direction::Forward);
        let mut fy = y.clone();
        plan.execute(&mut fy, Direction::Forward);
        for k in 0..n {
            let expect = fx[k].scale(a) + fy[k];
            prop_assert!((combo[k] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }

    /// Forward transform agrees with the naive DFT on small arbitrary sizes.
    #[test]
    fn matches_naive(x in (1usize..48).prop_flat_map(arb_signal)) {
        let n = x.len();
        let plan = FftPlan::<f64>::new(n);
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        let reference = dft_naive(&x);
        for k in 0..n {
            prop_assert!((y[k] - reference[k]).abs() < 1e-6 * (1.0 + reference[k].abs()));
        }
    }

    /// Real-transform roundtrip for arbitrary even lengths.
    #[test]
    fn real_roundtrip(h in 1usize..100, seed in 0u64..1000) {
        let n = 2 * h;
        let plan = RealFftPlan::<f64>::new(n);
        let x: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed + 3) % 1000) as f64 / 37.0 - 13.0)
            .collect();
        let mut spec = vec![Complex64::zero(); plan.spectrum_len()];
        plan.forward(&x, &mut spec);
        let mut back = vec![0.0; n];
        plan.inverse(&spec, &mut back);
        for j in 0..n {
            prop_assert!((back[j] - x[j]).abs() < 1e-8 * (1.0 + x[j].abs()));
        }
    }

    /// Conjugate symmetry of real spectra: X[n-k] == conj(X[k]), checked by
    /// comparing the real plan's half spectrum against the full complex FFT.
    #[test]
    fn real_spectrum_is_half_of_complex(h in 1usize..60) {
        let n = 2 * h;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let rplan = RealFftPlan::<f64>::new(n);
        let mut spec = vec![Complex64::zero(); rplan.spectrum_len()];
        rplan.forward(&x, &mut spec);

        let cplan = FftPlan::<f64>::new(n);
        let mut full: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        cplan.execute(&mut full, Direction::Forward);
        for k in 0..=h {
            prop_assert!((spec[k] - full[k]).abs() < 1e-8);
        }
        for k in 1..h {
            prop_assert!((full[n - k] - full[k].conj()).abs() < 1e-8);
        }
    }

    /// The Stockham kernel matches the naive DFT in single precision too —
    /// the range includes primes served by Bluestein (e.g. 37, 41, 43).
    #[test]
    fn matches_naive_f32(n in 1usize..48, seed in 0u64..1000) {
        let x: Vec<Complex<f32>> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed.wrapping_add(7)) as f32;
                Complex::new((t * 1e-3).sin(), (t * 7e-4).cos())
            })
            .collect();
        let plan = FftPlan::<f32>::new(n);
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        let reference = dft_naive(&x);
        for k in 0..n {
            prop_assert!(
                (y[k] - reference[k]).abs() < 1e-3 * (1.0 + reference[k].abs()),
                "n={} k={}", n, k
            );
        }
    }

    /// Pool-backed parallel batch execution only changes how lines are
    /// chunked across workers, so it must match serial execution on every
    /// disjoint layout — contiguous (stride 1, dist >= n) or strided columns
    /// (dist 1, stride >= count) — for any thread count.
    #[test]
    fn parallel_equals_serial_any_layout(
        n in 1usize..24,
        count in 1usize..10,
        pad in 0usize..3,
        columns in 0usize..2,
        threads in 1usize..6,
    ) {
        let (stride, dist) = if columns == 1 {
            (count + pad, 1)
        } else {
            (1, n + pad)
        };
        let len = (count - 1) * dist + (n - 1) * stride + 1;
        let data: Vec<Complex64> = (0..len)
            .map(|i| Complex64::new((i * 31 % 113) as f64 * 0.017, -((i * 17 % 89) as f64) * 0.023))
            .collect();
        let plan = ManyPlan::<f64>::new(n, stride, dist, count);
        let mut par = data.clone();
        plan.execute_parallel(&mut par, Direction::Forward, threads);
        let mut ser = data;
        plan.execute(&mut ser, Direction::Forward);
        for i in 0..len {
            prop_assert!((par[i] - ser[i]).abs() < 1e-12, "i={}", i);
        }
    }

    /// The vectorized codelets must agree with the forced 1-lane
    /// instantiation to within 2 ulp on every radix-2/4/8-factor length:
    /// lanes only batch independent columns, they never reorder the
    /// per-element arithmetic.
    #[test]
    fn simd_matches_scalar_within_2_ulp(exp in 1u32..10, seed in 0u64..1000) {
        let n = 1usize << exp;
        let plan = FftPlan::<f64>::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed.wrapping_add(11)) as f64;
                Complex64::new((t * 1e-3).sin(), (t * 7e-4).cos())
            })
            .collect();
        set_codelet_mode(CodeletMode::Scalar);
        let mut ys = x.clone();
        plan.execute(&mut ys, Direction::Forward);
        set_codelet_mode(CodeletMode::Auto);
        let mut ya = x;
        plan.execute(&mut ya, Direction::Forward);
        for k in 0..n {
            prop_assert!(
                ulps(ya[k].re, ys[k].re) <= 2 && ulps(ya[k].im, ys[k].im) <= 2,
                "n={} k={}: auto {:?} vs scalar {:?}", n, k, ya[k], ys[k]
            );
        }
    }

    /// Batched r2c/c2r over an arbitrary disjoint strided layout — dense
    /// rows or strided columns on either side, independently — must match
    /// the scalar single-line real plan gathered over the same layout, and
    /// round-trip back to the input.
    #[test]
    fn many_real_matches_scalar_f64(
        h in 1usize..12,
        count in 1usize..6,
        rpad in 0usize..3,
        cpad in 0usize..3,
        rcolumns in 0usize..2,
        ccolumns in 0usize..2,
    ) {
        let n = 2 * h;
        let (rstride, rdist) = if rcolumns == 1 { (count + rpad, 1) } else { (1, n + rpad) };
        let (cstride, cdist) = if ccolumns == 1 { (count + cpad, 1) } else { (1, h + 1 + cpad) };
        let plan = ManyRealPlan::<f64>::new(n, count, rstride, rdist, cstride, cdist);
        let reals: Vec<f64> = (0..plan.required_real_len())
            .map(|i| ((i * 31 % 113) as f64) * 0.017 - 0.9)
            .collect();
        let mut spec = vec![Complex64::zero(); plan.required_spec_len()];
        plan.forward(&reals, &mut spec);

        let scalar = RealFftPlan::<f64>::new(n);
        let mut line = vec![0.0f64; n];
        let mut line_spec = vec![Complex64::zero(); h + 1];
        for b in 0..count {
            for (j, l) in line.iter_mut().enumerate() {
                *l = reals[b * rdist + j * rstride];
            }
            scalar.forward(&line, &mut line_spec);
            for (k, l) in line_spec.iter().enumerate() {
                let got = spec[b * cdist + k * cstride];
                prop_assert!(
                    (got - *l).abs() < 1e-10 * (1.0 + l.abs()),
                    "b={} k={}: {:?} vs {:?}", b, k, got, l
                );
            }
        }

        let mut back = vec![0.0f64; plan.required_real_len()];
        plan.inverse(&spec, &mut back);
        for b in 0..count {
            for j in 0..n {
                let i = b * rdist + j * rstride;
                prop_assert!(
                    (back[i] - reals[i]).abs() < 1e-10 * (1.0 + reals[i].abs()),
                    "b={} j={}", b, j
                );
            }
        }
    }

    /// Single-precision twin of `many_real_matches_scalar_f64`.
    #[test]
    fn many_real_matches_scalar_f32(
        h in 1usize..12,
        count in 1usize..6,
        rpad in 0usize..3,
        cpad in 0usize..3,
        rcolumns in 0usize..2,
        ccolumns in 0usize..2,
    ) {
        let n = 2 * h;
        let (rstride, rdist) = if rcolumns == 1 { (count + rpad, 1) } else { (1, n + rpad) };
        let (cstride, cdist) = if ccolumns == 1 { (count + cpad, 1) } else { (1, h + 1 + cpad) };
        let plan = ManyRealPlan::<f32>::new(n, count, rstride, rdist, cstride, cdist);
        let reals: Vec<f32> = (0..plan.required_real_len())
            .map(|i| ((i * 31 % 113) as f32) * 0.017 - 0.9)
            .collect();
        let mut spec = vec![Complex::<f32>::zero(); plan.required_spec_len()];
        plan.forward(&reals, &mut spec);

        let scalar = RealFftPlan::<f32>::new(n);
        let mut line = vec![0.0f32; n];
        let mut line_spec = vec![Complex::<f32>::zero(); h + 1];
        for b in 0..count {
            for (j, l) in line.iter_mut().enumerate() {
                *l = reals[b * rdist + j * rstride];
            }
            scalar.forward(&line, &mut line_spec);
            for (k, l) in line_spec.iter().enumerate() {
                let got = spec[b * cdist + k * cstride];
                prop_assert!(
                    (got - *l).abs() < 1e-3 * (1.0 + l.abs()),
                    "b={} k={}: {:?} vs {:?}", b, k, got, l
                );
            }
        }

        let mut back = vec![0.0f32; plan.required_real_len()];
        plan.inverse(&spec, &mut back);
        for b in 0..count {
            for j in 0..n {
                let i = b * rdist + j * rstride;
                prop_assert!(
                    (back[i] - reals[i]).abs() < 1e-3 * (1.0 + reals[i].abs()),
                    "b={} j={}", b, j
                );
            }
        }
    }

    /// Batched strided execution equals per-line execution.
    #[test]
    fn many_equals_lines(n in 2usize..32, count in 1usize..8) {
        let many = ManyPlan::<f64>::new(n, count, 1, count);
        let mut data: Vec<Complex64> = (0..n * count)
            .map(|i| Complex64::new((i * i % 97) as f64, (i % 13) as f64))
            .collect();
        let orig = data.clone();
        many.execute(&mut data, Direction::Forward);
        let line_plan = FftPlan::<f64>::new(n);
        for c in 0..count {
            let mut line: Vec<Complex64> = (0..n).map(|r| orig[r * count + c]).collect();
            line_plan.execute(&mut line, Direction::Forward);
            for r in 0..n {
                prop_assert!((data[r * count + c] - line[r]).abs() < 1e-8);
            }
        }
    }
}
