//! After warm-up, `ManyPlan::execute_parallel` must be allocation-free and
//! thread-spawn-free: lines are chunked onto the persistent worker pool in
//! `psdns-sync` and every scratch buffer comes from a plan-owned pool. This
//! is the PR's zero-overhead acceptance criterion, enforced with a counting
//! global allocator plus the pool's spawn counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use psdns_fft::{Complex64, Direction, ManyPlan};

struct CountingAlloc {
    allocs: AtomicU64,
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc {
    allocs: AtomicU64::new(0),
};

fn alloc_count() -> u64 {
    GLOBAL.allocs.load(Ordering::Relaxed)
}

#[test]
fn execute_parallel_steady_state_is_alloc_and_spawn_free() {
    let threads = 4;
    let (n, count) = (64usize, 32usize);

    // Contiguous and strided layouts exercise both pool dispatch paths.
    let contiguous = ManyPlan::<f64>::contiguous(n, count);
    let strided = ManyPlan::<f64>::new(n, count, 1, count);
    let mut data: Vec<Complex64> = (0..n * count)
        .map(|i| Complex64::new((i % 37) as f64, -((i % 11) as f64)))
        .collect();

    // Warm-up: spawns the global pool's workers (once per process) and
    // populates every scratch pool involved.
    for _ in 0..4 {
        contiguous.execute_parallel(&mut data, Direction::Forward, threads);
        strided.execute_parallel(&mut data, Direction::Forward, threads);
    }

    let spawned_before = psdns_sync::pool::global().stats().threads_spawned;
    let allocs_before = alloc_count();
    for _ in 0..16 {
        contiguous.execute_parallel(&mut data, Direction::Forward, threads);
        contiguous.execute_parallel(&mut data, Direction::Inverse, threads);
        strided.execute_parallel(&mut data, Direction::Forward, threads);
        strided.execute_parallel(&mut data, Direction::Inverse, threads);
    }
    let allocs_after = alloc_count();
    let spawned_after = psdns_sync::pool::global().stats().threads_spawned;

    assert_eq!(
        spawned_after - spawned_before,
        0,
        "execute_parallel spawned threads after warm-up"
    );
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "execute_parallel allocated on the steady-state path"
    );
}
