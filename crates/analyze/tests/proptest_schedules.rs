//! Property tests for the happens-before engine over randomly-shaped pencil
//! schedules: an unmutated schedule of the Fig. 4 form is always certified
//! race-free (zero false positives), and deleting *any* effective
//! cross-stream `wait_event` edge always produces a typed hazard (zero
//! false negatives on the mutation surface).

use proptest::prelude::*;
use psdns_analyze::{
    analyze, wait_edges, without_pos, Access, MemSpace, OpKind, OrderingLog, HOST_TRACK,
};

/// Build the paper's pencil-loop schedule shape for `np` pencils rotating
/// through `slots` device buffer slots: H2D on the transfer stream, FFT on
/// the compute stream, packed D2H back on the transfer stream, with exactly
/// the two load-bearing cross-stream edges per pencil (`h2d_done`,
/// `compute_done`). Slot reuse is protected by the transfer stream's own
/// program order after the `compute_done` wait, as in the real pipeline.
fn pencil_schedule(np: usize, slots: usize, chunk: usize) -> OrderingLog {
    let log = OrderingLog::new();
    // Buffer ids: 1..=slots cbuf, slots+1..=2*slots rbuf, then host staging.
    let cbuf = |s: usize| 1 + s as u64;
    let rbuf = |s: usize| 1 + (slots + s) as u64;
    let host_in: u64 = 1 + 2 * slots as u64;
    let host_out: u64 = 2 + 2 * slots as u64;
    // Event ids: 1..=slots h2d_done, slots+1..=2*slots compute_done.
    let h2d_done = |s: usize| 1 + s as u64;
    let compute_done = |s: usize| 1 + (slots + s) as u64;

    for s in 0..slots {
        log.label_buffer(cbuf(s), &format!("cbuf[s{s}]"));
        log.label_buffer(rbuf(s), &format!("rbuf[s{s}]"));
    }
    log.label_buffer(host_in, "host_in");
    log.label_buffer(host_out, "host_out");

    log.record(
        HOST_TRACK,
        "stage `host_in`",
        OpKind::Exec,
        vec![Access::write(host_in, MemSpace::Host, 0, np * chunk)],
    );

    for p in 0..np {
        let s = p % slots;
        let round = (p / slots) as u64;
        log.record(
            "xfer",
            &format!("h2d[{p}]"),
            OpKind::Exec,
            vec![
                Access::read(host_in, MemSpace::Host, p * chunk, chunk),
                Access::write(cbuf(s), MemSpace::Device, 0, chunk),
            ],
        );
        log.record(
            "xfer",
            &format!("record h2d_done[s{s}]"),
            OpKind::EventRecord {
                event: h2d_done(s),
                ticket: round + 1,
            },
            Vec::new(),
        );
        log.record(
            "comp",
            &format!("wait h2d_done[s{s}]"),
            OpKind::EventWait {
                event: h2d_done(s),
                ticket: round + 1,
            },
            Vec::new(),
        );
        log.record(
            "comp",
            &format!("fft[{p}]"),
            OpKind::Exec,
            vec![
                Access::read(cbuf(s), MemSpace::Device, 0, chunk),
                Access::write(cbuf(s), MemSpace::Device, 0, chunk),
                Access::write(rbuf(s), MemSpace::Device, 0, chunk),
            ],
        );
        log.record(
            "comp",
            &format!("record compute_done[s{s}]"),
            OpKind::EventRecord {
                event: compute_done(s),
                ticket: round + 1,
            },
            Vec::new(),
        );
        log.record(
            "xfer",
            &format!("wait compute_done[s{s}]"),
            OpKind::EventWait {
                event: compute_done(s),
                ticket: round + 1,
            },
            Vec::new(),
        );
        log.record(
            "xfer",
            &format!("d2h[{p}]"),
            OpKind::Exec,
            vec![
                Access::read(rbuf(s), MemSpace::Device, 0, chunk),
                Access::write(host_out, MemSpace::Host, p * chunk, chunk),
            ],
        );
    }

    for stream in ["xfer", "comp"] {
        log.record(
            HOST_TRACK,
            &format!("sync {stream}"),
            OpKind::HostJoinStream {
                stream: stream.to_string(),
            },
            Vec::new(),
        );
    }
    log.record(
        HOST_TRACK,
        "unstage `host_out`",
        OpKind::Exec,
        vec![Access::read(host_out, MemSpace::Host, 0, np * chunk)],
    );
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An unmutated pencil schedule is certified race-free — no false
    /// positives, for any pencil count / slot count / chunk size.
    #[test]
    fn unmutated_schedules_are_clean(
        np in 3usize..=10,
        slots in 1usize..=3,
        chunk in 1usize..=64,
    ) {
        let log = pencil_schedule(np, slots, chunk);
        let report = analyze(&log.snapshot(), &log.labels());
        prop_assert!(report.is_clean(), "false positive: {:?}", report.hazards);
        prop_assert_eq!(report.cross_stream_edges, 2 * np);
        prop_assert!(report.redundant_waits.is_empty());
    }

    /// Deleting any single effective cross-stream wait edge is flagged as a
    /// typed hazard whose two named operations sit on different tracks —
    /// no false negatives anywhere on the mutation surface.
    #[test]
    fn every_deleted_edge_is_flagged(
        np in 3usize..=10,
        slots in 1usize..=3,
        chunk in 1usize..=64,
    ) {
        let log = pencil_schedule(np, slots, chunk);
        let (ops, labels) = (log.snapshot(), log.labels());
        let edges = wait_edges(&ops);
        prop_assert_eq!(edges.len(), 2 * np);
        for edge in edges {
            prop_assert!(edge.cross_stream());
            let report = analyze(&without_pos(&ops, edge.pos), &labels);
            let h = report.hazards.first();
            prop_assert!(
                h.is_some(),
                "deleting wait at seq {} went undetected", edge.seq
            );
            let h = h.unwrap();
            prop_assert!(h.first.track != h.second.track, "hazard: {}", h);
        }
    }

    /// Deleting a *record* (rather than a wait) demotes the matching waits
    /// to no-ops and must likewise be flagged — the dependency is gone
    /// either way.
    #[test]
    fn deleting_a_record_is_flagged(
        np in 3usize..=6,
        slots in 1usize..=3,
    ) {
        let log = pencil_schedule(np, slots, 8);
        let (ops, labels) = (log.snapshot(), log.labels());
        for (pos, op) in ops.iter().enumerate() {
            if !matches!(op.kind, OpKind::EventRecord { .. }) {
                continue;
            }
            let report = analyze(&without_pos(&ops, pos), &labels);
            prop_assert!(
                !report.is_clean(),
                "deleting {} (seq {}) went undetected", op.name, op.seq
            );
        }
    }
}

/// Mode sanity off the proptest path: the hazard kind produced by removing
/// the H2D->compute edge is a read of unwritten data (RAW), and removing the
/// compute->D2H edge a premature read of the result (RAW) — both typed.
#[test]
fn deleted_edges_produce_read_write_hazard_kinds() {
    let log = pencil_schedule(4, 2, 8);
    let (ops, labels) = (log.snapshot(), log.labels());
    for edge in wait_edges(&ops) {
        let report = analyze(&without_pos(&ops, edge.pos), &labels);
        let h = &report.hazards[0];
        assert!(
            h.first.name.len() > 1 && h.second.name.len() > 1,
            "hazard must name both operations: {h}"
        );
        assert!(
            matches!(
                h.kind,
                psdns_analyze::HazardKind::ReadAfterWrite
                    | psdns_analyze::HazardKind::WriteAfterRead
                    | psdns_analyze::HazardKind::WriteAfterWrite
            ),
            "{h}"
        );
    }
}
