//! Property tests for the cross-rank deadlock analyzer: randomly-shaped
//! deadlock-free multi-rank schedules are always certified clean (zero
//! false positives), and injecting a wait-for cycle — by making one rank
//! skip a group post while continuing on the same communicator, or by
//! truncating its log mid-protocol — is always flagged with the correct
//! rank set (zero false negatives on the mutation surface).

use proptest::prelude::*;
use psdns_analyze::{analyze_global, CollectiveKind, DeadlockKind, GlobalLint, RankLog, RankOp};

/// A deterministic "random" collective kind for round `r`.
fn kind_for(r: u64) -> CollectiveKind {
    match r % 4 {
        0 => CollectiveKind::Alltoall,
        1 => CollectiveKind::Allgather,
        2 => CollectiveKind::Barrier,
        _ => CollectiveKind::Bcast,
    }
}

/// Build a deadlock-free run: `nranks` ranks execute `rounds` blocking
/// collectives in lockstep on context `ctx`, each round padded with
/// deadline-bounded local waits (the guarded device fences) and notes.
/// When `async_tail` is set, each round's collective is instead posted
/// non-blocking and completed by a deadline-bounded `WaitCollective` —
/// the paper's overlapped all-to-all shape.
fn lockstep_run(nranks: usize, rounds: u64, ctx: u64, async_tail: bool) -> Vec<RankLog> {
    let group: Vec<usize> = (0..nranks).collect();
    (0..nranks)
        .map(|rank| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(RankOp::Note {
                    text: format!("round {r} compute"),
                });
                ops.push(RankOp::WaitLocal {
                    what: format!("fence:compute[{r}]"),
                    deadline: true,
                });
                ops.push(RankOp::DoneLocal {
                    what: format!("fence:compute[{r}]"),
                });
                if async_tail {
                    ops.push(RankOp::Post {
                        ctx,
                        seq: r,
                        kind: kind_for(r),
                        group: group.clone(),
                        blocking: false,
                    });
                    ops.push(RankOp::WaitCollective {
                        ctx,
                        seq: r,
                        deadline: true,
                    });
                } else {
                    ops.push(RankOp::Post {
                        ctx,
                        seq: r,
                        kind: kind_for(r),
                        group: group.clone(),
                        blocking: true,
                    });
                }
            }
            RankLog { rank, ops }
        })
        .collect()
}

/// Remove rank `victim`'s post for round `skip` (and its matching wait, in
/// the async shape) while keeping all later rounds — the "failing rank
/// skipped a group a2a post" mutation from the recovery path.
fn skip_one_post(logs: &mut [RankLog], victim: usize, ctx: u64, skip: u64) {
    let ops = &mut logs[victim].ops;
    ops.retain(|op| match op {
        RankOp::Post { ctx: c, seq, .. } => !(*c == ctx && *seq == skip),
        RankOp::WaitCollective { ctx: c, seq, .. } => !(*c == ctx && *seq == skip),
        _ => true,
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A lockstep run — blocking or overlapped — is always deadlock-free,
    /// every op retires, and the deadline-bounded waits draw no
    /// unbounded-wait lint.
    #[test]
    fn lockstep_runs_are_clean(
        nranks in 2usize..=5,
        rounds in 1u64..=6,
        ctx in 1u64..=(1u64 << 60),
        async_bit in 0u8..=1,
    ) {
        let async_tail = async_bit == 1;
        let logs = lockstep_run(nranks, rounds, ctx, async_tail);
        let total: usize = logs.iter().map(|l| l.ops.len()).sum();
        let report = analyze_global(&logs);
        prop_assert!(
            report.is_deadlock_free(),
            "false positive: {:?}", report.deadlocks
        );
        prop_assert_eq!(report.stuck_ops, 0);
        prop_assert_eq!(report.retired_ops, total);
        prop_assert!(
            !report.lints.iter().any(|l| matches!(l, GlobalLint::UnboundedWait { .. })),
            "bounded waits must not lint: {:?}", report.lints
        );
    }

    /// Skipping any single post on any rank — while that rank carries on
    /// with later rounds — always surfaces as a wait-for cycle naming the
    /// skipping rank, plus a SkippedGroupPost lint pinpointing it.
    #[test]
    fn every_skipped_post_is_a_cycle(
        nranks in 2usize..=4,
        rounds in 2u64..=4,
        ctx in 1u64..=(1u64 << 60),
        victim_seed in 0usize..4096,
        skip_seed in 0u64..4096,
    ) {
        let victim = victim_seed % nranks;
        // Skip a non-final round: the victim must carry on posting later
        // rounds for this to be a *skip* (a log that simply ends is the
        // terminated-peer case, covered below).
        let skip = skip_seed % (rounds - 1);
        let mut logs = lockstep_run(nranks, rounds, ctx, false);
        skip_one_post(&mut logs, victim, ctx, skip);
        let report = analyze_global(&logs);
        prop_assert!(!report.is_deadlock_free(), "skip went undetected");
        let cycle = report
            .deadlocks
            .iter()
            .find(|d| d.kind == DeadlockKind::Cycle);
        prop_assert!(cycle.is_some(), "expected a cycle: {:?}", report.deadlocks);
        let cycle = cycle.unwrap();
        prop_assert!(
            cycle.ranks.contains(&victim),
            "cycle {:?} must name the skipping rank {victim}", cycle.ranks
        );
        prop_assert!(
            cycle.ranks.iter().any(|r| *r != victim),
            "cycle must involve a waiting peer: {:?}", cycle.ranks
        );
        prop_assert!(
            report.lints.iter().any(|l| matches!(
                l,
                GlobalLint::SkippedGroupPost { rank, ctx: c, seq, .. }
                    if *rank == victim && *c == ctx && *seq == skip
            )),
            "missing SkippedGroupPost lint: {:?}", report.lints
        );
    }

    /// Truncating a rank's log at any post boundary — the rank died — is
    /// always reported, naming the dead rank; the survivors' hang is
    /// attributed to the terminated peer, never misread as a skip.
    #[test]
    fn every_truncated_log_is_flagged(
        nranks in 2usize..=4,
        rounds in 2u64..=4,
        victim_seed in 0usize..4096,
        cut_seed in 0u64..4096,
    ) {
        let victim = victim_seed % nranks;
        // Cut strictly before the last round so at least one post is lost.
        let cut = cut_seed % (rounds - 1);
        let mut logs = lockstep_run(nranks, rounds, 7, false);
        let ops = &mut logs[victim].ops;
        let cut_at = ops
            .iter()
            .position(|op| matches!(op, RankOp::Post { seq, .. } if *seq == cut))
            .expect("round posts exist");
        ops.truncate(cut_at);
        let report = analyze_global(&logs);
        prop_assert!(!report.is_deadlock_free(), "dead rank went undetected");
        prop_assert!(
            report.deadlocks.iter().any(|d| {
                d.kind == DeadlockKind::TerminatedPeer && d.ranks.contains(&victim)
            }),
            "expected TerminatedPeer naming {victim}: {:?}", report.deadlocks
        );
        prop_assert!(
            !report.lints.iter().any(|l| matches!(
                l,
                GlobalLint::SkippedGroupPost { rank, .. } if *rank == victim
            )),
            "a dead rank is not a skipper: {:?}", report.lints
        );
    }
}

/// Off the proptest path: an unbounded blocking wait is linted exactly once
/// per site even when executed many times, and a clean overlapped run stays
/// silent when the completion wait carries a deadline.
#[test]
fn unbounded_wait_lints_once_per_site() {
    let group = vec![0, 1];
    let logs: Vec<RankLog> = (0..2)
        .map(|rank| {
            let mut ops = Vec::new();
            for r in 0..3u64 {
                ops.push(RankOp::Post {
                    ctx: 1,
                    seq: r,
                    kind: CollectiveKind::Alltoall,
                    group: group.clone(),
                    blocking: false,
                });
                ops.push(RankOp::WaitCollective {
                    ctx: 1,
                    seq: r,
                    deadline: false,
                });
            }
            RankLog { rank, ops }
        })
        .collect();
    let report = analyze_global(&logs);
    assert!(report.is_deadlock_free());
    let per_rank: Vec<_> = report
        .lints
        .iter()
        .filter(|l| matches!(l, GlobalLint::UnboundedWait { .. }))
        .collect();
    assert_eq!(per_rank.len(), 2, "one lint per rank-site: {per_rank:?}");
}
