//! Correctness tooling for the asynchronous pipeline: a happens-before
//! hazard detector for stream/event schedules and a cross-rank
//! collective-matching verifier.
//!
//! The paper's entire asynchronous design rests on hand-placed events
//! enforcing cross-stream dependencies (Fig. 4) and on every rank issuing
//! the same sequence of all-to-alls. Both invariants fail *silently* on
//! real machines — a missing `wait_event` produces occasionally-wrong
//! answers, a reordered collective produces a hang — which is why tools
//! like `compute-sanitizer racecheck` and MUST exist. This crate is the
//! simulated-runtime counterpart:
//!
//! * [`OrderingLog`] — a lightweight recorder the device layer fills with
//!   every stream operation, `record`/`wait_event` edge and buffer access
//!   range (see `psdns-device`'s recorder hooks).
//! * [`analyze`] / [`analyze_log`] — a vector-clock happens-before engine
//!   that replays the log and reports RAW/WAR/WAW [`Hazard`]s between
//!   operations no synchronization edge orders, plus `wait_event` calls
//!   that add no ordering (the "unnecessary synchronization" lint).
//! * [`CollectiveVerifier`] — shared state for the fingerprint exchange
//!   `psdns-comm` runs before every collective, turning a mismatched or
//!   reordered collective into a typed [`CollectiveMismatch`] instead of
//!   a deadlock.
//! * [`analyze_global`] — the cross-rank pass: merges per-rank
//!   [`RankLog`]s (collective posts, collective waits, deadline-flagged
//!   local waits) into one happens-before picture, replays them to a
//!   fixpoint, and reports wait-for cycles and waits on dead peers as
//!   typed [`DeadlockReport`]s plus unbounded-wait / skipped-group-post
//!   [`GlobalLint`]s.
//!
//! The crate itself is runtime-agnostic: it sees only the log. That keeps
//! it dependency-free (`psdns-sync` aside) so `psdns-device` and
//! `psdns-comm` can both link it without cycles.

mod collective;
mod global;
mod log;
mod replay;

#[doc(hidden)]
pub use collective::{decode_verdict, encode_verdict};
pub use collective::{
    CollectiveFingerprint, CollectiveKind, CollectiveMismatch, CollectiveVerifier,
};
pub use global::{
    analyze_global, DeadlockKind, DeadlockReport, GlobalLint, GlobalRecorder, GlobalReport,
    RankLog, RankOp, RankRecorder,
};
pub use log::{
    normalized, wait_edges, without_pos, Access, AccessMode, MemSpace, OpKind, OpRecord,
    OrderingLog, WaitEdge, HOST_TRACK,
};
pub use replay::{analyze, analyze_log, AnalysisReport, Hazard, HazardKind, OpRef};
