//! Global (cross-rank) ordering analysis: merge per-rank logs into one
//! happens-before picture and find deadlocks the single-rank tools cannot.
//!
//! The single-rank analyzers ([`crate::analyze`], [`crate::CollectiveVerifier`])
//! certify one rank's stream schedule and one round's fingerprint match.
//! What they cannot see is the *global* wait structure: rank 0 blocked in
//! an all-to-all that rank 1 will never post because rank 1 is blocked in
//! a fence that rank 0's hot-swap vote gates. This module closes that gap:
//!
//! 1. Each rank records a linear [`RankLog`] of ordering-relevant ops —
//!    collective posts (with their fingerprint identity `(ctx, seq)` and
//!    member group), collective waits, and local waits (fences, latches)
//!    with their **deadline** bit (whether a watchdog bounds the wait).
//! 2. [`analyze_global`] replays all logs together to a fixpoint: an op
//!    retires when the ops it orders on have retired (a blocking post or a
//!    collective wait needs every group member to have arrived; a
//!    deadline-bounded wait always retires — in the real code the timeout
//!    converts to a typed error; an unbounded local wait retires only if
//!    its completion was recorded).
//! 3. Whatever cannot retire is *stuck*: a wait-for graph over the stuck
//!    ranks is searched for cycles and for waits on already-terminated
//!    peers, producing typed [`DeadlockReport`]s naming the ranks and ops.
//!
//! Two lints ride on the same pass: [`GlobalLint::UnboundedWait`] (a
//! blocking wait with no deadline bound — the hang class the watchdogs
//! exist to prevent) and [`GlobalLint::SkippedGroupPost`] (a rank kept
//! using a communicator but skipped one of its group collectives — the
//! hot-swap invariant PR 7 enforces only by convention).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use psdns_sync::Mutex;

use crate::collective::CollectiveKind;

/// One ordering-relevant operation in a rank's global log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankOp {
    /// This rank posted collective `(ctx, seq)` over `group` (global
    /// ranks). `blocking` models the fingerprint-verified entry (every
    /// member must arrive before any proceeds); a non-blocking post (the
    /// paper's asynchronous all-to-all slice) retires immediately and is
    /// ordered later by a [`RankOp::WaitCollective`].
    Post {
        ctx: u64,
        seq: u64,
        kind: CollectiveKind,
        group: Vec<usize>,
        blocking: bool,
    },
    /// Wait for collective `(ctx, seq)` to be globally posted. `deadline`
    /// records whether a watchdog bounds the wait.
    WaitCollective { ctx: u64, seq: u64, deadline: bool },
    /// Wait on purely local progress (device fence, health latch).
    WaitLocal { what: String, deadline: bool },
    /// The local wait named `what` completed.
    DoneLocal { what: String },
    /// Free-form annotation (agreement rounds, shrink epochs); never blocks.
    Note { text: String },
}

impl fmt::Display for RankOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankOp::Post {
                ctx,
                seq,
                kind,
                group,
                blocking,
            } => write!(
                f,
                "{}post {kind}(ctx={ctx}, seq={seq}, group={group:?})",
                if *blocking { "" } else { "async-" }
            ),
            RankOp::WaitCollective { ctx, seq, deadline } => write!(
                f,
                "wait-collective(ctx={ctx}, seq={seq}{})",
                if *deadline {
                    ", deadline"
                } else {
                    ", UNBOUNDED"
                }
            ),
            RankOp::WaitLocal { what, deadline } => write!(
                f,
                "wait-local({what}{})",
                if *deadline {
                    ", deadline"
                } else {
                    ", UNBOUNDED"
                }
            ),
            RankOp::DoneLocal { what } => write!(f, "done-local({what})"),
            RankOp::Note { text } => write!(f, "note({text})"),
        }
    }
}

/// One rank's linear log of global-ordering ops.
#[derive(Clone, Debug, Default)]
pub struct RankLog {
    pub rank: usize,
    pub ops: Vec<RankOp>,
}

/// Shared multi-rank recording hub. Rank components hold a cheap
/// [`RankRecorder`] clone; the driver (or a test) snapshots the merged
/// logs and feeds them to [`analyze_global`].
#[derive(Clone, Default)]
pub struct GlobalRecorder {
    logs: Arc<Mutex<BTreeMap<usize, Vec<RankOp>>>>,
}

impl GlobalRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// A recording handle bound to one global rank.
    pub fn rank(&self, rank: usize) -> RankRecorder {
        self.logs.lock().entry(rank).or_default();
        RankRecorder {
            hub: self.clone(),
            rank,
        }
    }

    /// Snapshot every rank's log, ordered by rank.
    pub fn snapshot(&self) -> Vec<RankLog> {
        self.logs
            .lock()
            .iter()
            .map(|(&rank, ops)| RankLog {
                rank,
                ops: ops.clone(),
            })
            .collect()
    }

    fn push(&self, rank: usize, op: RankOp) {
        self.logs.lock().entry(rank).or_default().push(op);
    }
}

/// Per-rank recording handle (see [`GlobalRecorder::rank`]).
#[derive(Clone)]
pub struct RankRecorder {
    hub: GlobalRecorder,
    rank: usize,
}

impl RankRecorder {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn post(&self, ctx: u64, seq: u64, kind: CollectiveKind, group: &[usize], blocking: bool) {
        self.hub.push(
            self.rank,
            RankOp::Post {
                ctx,
                seq,
                kind,
                group: group.to_vec(),
                blocking,
            },
        );
    }

    pub fn wait_collective(&self, ctx: u64, seq: u64, deadline: bool) {
        self.hub
            .push(self.rank, RankOp::WaitCollective { ctx, seq, deadline });
    }

    pub fn wait_local(&self, what: &str, deadline: bool) {
        self.hub.push(
            self.rank,
            RankOp::WaitLocal {
                what: what.to_string(),
                deadline,
            },
        );
    }

    pub fn done_local(&self, what: &str) {
        self.hub.push(
            self.rank,
            RankOp::DoneLocal {
                what: what.to_string(),
            },
        );
    }

    pub fn note(&self, text: &str) {
        self.hub.push(
            self.rank,
            RankOp::Note {
                text: text.to_string(),
            },
        );
    }
}

/// Why a set of ranks can make no further progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlockKind {
    /// A wait-for cycle between ranks (the classic cross-rank hang).
    Cycle,
    /// A rank waits on a peer whose log already ended (died / returned).
    TerminatedPeer,
    /// An unbounded local wait whose completion was never recorded.
    LocalHang,
}

/// A typed deadlock finding: the ranks involved and, per rank, the op it
/// is stuck at.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    pub kind: DeadlockKind,
    /// Ranks in the cycle (for [`DeadlockKind::Cycle`], in cycle order) or
    /// `[waiter, terminated peer]` / `[hung rank]` otherwise.
    pub ranks: Vec<usize>,
    /// Human-readable "rank N blocked at ..." lines, one per involved rank.
    pub ops: Vec<String>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?} involving ranks {:?}:", self.kind, self.ranks)?;
        for line in &self.ops {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Advisory findings from the global pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlobalLint {
    /// A blocking wait with no deadline bound: nothing converts a lost
    /// peer into a typed error, so this is where hangs live.
    UnboundedWait { rank: usize, site: String },
    /// `rank` skipped group collective `(ctx, seq)` that `peers` posted,
    /// while continuing to use the same communicator afterwards.
    SkippedGroupPost {
        rank: usize,
        ctx: u64,
        seq: u64,
        peers: Vec<usize>,
    },
}

impl fmt::Display for GlobalLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalLint::UnboundedWait { rank, site } => {
                write!(
                    f,
                    "rank {rank}: blocking wait with no deadline bound at {site}"
                )
            }
            GlobalLint::SkippedGroupPost {
                rank,
                ctx,
                seq,
                peers,
            } => write!(
                f,
                "rank {rank}: skipped group post (ctx={ctx}, seq={seq}) that ranks {peers:?} \
                 posted, while still using the communicator"
            ),
        }
    }
}

/// The result of [`analyze_global`].
#[derive(Clone, Debug, Default)]
pub struct GlobalReport {
    /// Ops that retired during the fixpoint replay (all of them, if clean).
    pub retired_ops: usize,
    /// Ops left stuck (0 when clean).
    pub stuck_ops: usize,
    pub deadlocks: Vec<DeadlockReport>,
    pub lints: Vec<GlobalLint>,
}

impl GlobalReport {
    /// No deadlock findings (lints are advisory and do not affect this).
    pub fn is_deadlock_free(&self) -> bool {
        self.deadlocks.is_empty()
    }
}

impl fmt::Display for GlobalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "global analysis: {} op(s) retired, {} stuck, {} deadlock(s), {} lint(s)",
            self.retired_ops,
            self.stuck_ops,
            self.deadlocks.len(),
            self.lints.len()
        )?;
        for d in &self.deadlocks {
            write!(f, "{d}")?;
        }
        for l in &self.lints {
            writeln!(f, "lint: {l}")?;
        }
        Ok(())
    }
}

/// Has `rank` reached (retired or is currently at) its own post of
/// `(ctx, seq)`? `pc` is the rank's current program counter.
fn arrived(log: &RankLog, pc: usize, ctx: u64, seq: u64) -> bool {
    log.ops
        .iter()
        .take(pc + 1)
        .any(|op| matches!(op, RankOp::Post { ctx: c, seq: s, .. } if *c == ctx && *s == seq))
}

/// The member group of collective `(ctx, seq)`, unioned over every rank
/// that posted it (ranks can only record their own view).
fn group_of(logs: &[RankLog], ctx: u64, seq: u64) -> Vec<usize> {
    let mut members = BTreeSet::new();
    for log in logs {
        for op in &log.ops {
            if let RankOp::Post {
                ctx: c,
                seq: s,
                group,
                ..
            } = op
            {
                if *c == ctx && *s == seq {
                    members.extend(group.iter().copied());
                }
            }
        }
    }
    members.into_iter().collect()
}

/// Merge per-rank logs, replay them to a fixpoint and report deadlock
/// cycles, waits on terminated peers, hung local waits, and lints.
pub fn analyze_global(logs: &[RankLog]) -> GlobalReport {
    let mut report = GlobalReport::default();
    let by_rank: BTreeMap<usize, &RankLog> = logs.iter().map(|l| (l.rank, l)).collect();
    let mut pcs: BTreeMap<usize, usize> = logs.iter().map(|l| (l.rank, 0)).collect();

    // Can the op at (rank, pc) retire under the current global state?
    let can_retire = |rank: usize, pc: usize, pcs: &BTreeMap<usize, usize>| -> bool {
        let log = by_rank[&rank];
        match &log.ops[pc] {
            RankOp::Note { .. } | RankOp::DoneLocal { .. } => true,
            RankOp::Post {
                blocking: false, ..
            } => true,
            RankOp::Post {
                ctx,
                seq,
                blocking: true,
                ..
            }
            | RankOp::WaitCollective {
                ctx,
                seq,
                // An unbounded collective wait blocks like the post itself;
                // a deadline-bounded one retires below regardless.
                deadline: false,
            } => group_of(logs, *ctx, *seq).iter().all(|&m| {
                m == rank
                    || by_rank
                        .get(&m)
                        .is_some_and(|ml| arrived(ml, pcs[&m], *ctx, *seq))
            }),
            RankOp::WaitCollective { deadline: true, .. } => true,
            RankOp::WaitLocal { deadline: true, .. } => true,
            RankOp::WaitLocal {
                what,
                deadline: false,
            } => log.ops[pc + 1..]
                .iter()
                .any(|op| matches!(op, RankOp::DoneLocal { what: w } if w == what)),
        }
    };

    // Fixpoint replay.
    loop {
        let mut progressed = false;
        for log in logs {
            let rank = log.rank;
            while pcs[&rank] < log.ops.len() && can_retire(rank, pcs[&rank], &pcs) {
                *pcs.get_mut(&rank).unwrap() += 1;
                report.retired_ops += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Stuck analysis: wait-for edges rank -> ranks it needs.
    let mut stuck_at: BTreeMap<usize, String> = BTreeMap::new();
    let mut edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for log in logs {
        let rank = log.rank;
        let pc = pcs[&rank];
        if pc >= log.ops.len() {
            continue;
        }
        report.stuck_ops += log.ops.len() - pc;
        let op = &log.ops[pc];
        stuck_at.insert(rank, format!("rank {rank} blocked at {op}"));
        match op {
            RankOp::Post { ctx, seq, .. } | RankOp::WaitCollective { ctx, seq, .. } => {
                let missing: Vec<usize> = group_of(logs, *ctx, *seq)
                    .into_iter()
                    .filter(|&m| {
                        m != rank
                            && !by_rank
                                .get(&m)
                                .is_some_and(|ml| arrived(ml, pcs[&m], *ctx, *seq))
                    })
                    .collect();
                edges.insert(rank, missing);
            }
            RankOp::WaitLocal { what, .. } => {
                report.deadlocks.push(DeadlockReport {
                    kind: DeadlockKind::LocalHang,
                    ranks: vec![rank],
                    ops: vec![format!(
                        "rank {rank} blocked at wait-local({what}) with no completion recorded"
                    )],
                });
            }
            _ => {}
        }
    }

    // Waits on terminated peers (log exhausted, so they will never arrive).
    for (&rank, needs) in &edges {
        for &m in needs {
            let done = by_rank.get(&m).is_none_or(|ml| pcs[&m] >= ml.ops.len());
            if done {
                report.deadlocks.push(DeadlockReport {
                    kind: DeadlockKind::TerminatedPeer,
                    ranks: vec![rank, m],
                    ops: vec![
                        stuck_at[&rank].clone(),
                        format!("rank {m} already terminated"),
                    ],
                });
            }
        }
    }

    // Cycle detection over the wait-for graph (iterative DFS, small graphs).
    let mut reported_cycles: BTreeSet<Vec<usize>> = BTreeSet::new();
    for &start in edges.keys() {
        let mut path = vec![start];
        let mut stack = vec![edges[&start].clone()];
        while let Some(next) = stack.last_mut() {
            let Some(n) = next.pop() else {
                path.pop();
                stack.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|&p| p == n) {
                // Canonicalize so each cycle is reported once.
                let mut cycle = path[pos..].to_vec();
                let min_pos = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &r)| r)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(min_pos);
                if reported_cycles.insert(cycle.clone()) {
                    report.deadlocks.push(DeadlockReport {
                        kind: DeadlockKind::Cycle,
                        ops: cycle
                            .iter()
                            .filter_map(|r| stuck_at.get(r).cloned())
                            .collect(),
                        ranks: cycle,
                    });
                }
                continue;
            }
            if path.len() > edges.len() {
                continue;
            }
            path.push(n);
            stack.push(edges.get(&n).cloned().unwrap_or_default());
        }
    }

    // Lint: unbounded waits, deduplicated per (rank, site).
    let mut seen_unbounded = BTreeSet::new();
    for log in logs {
        for op in &log.ops {
            let site = match op {
                // The sequence number is deliberately omitted: a loop
                // issuing one unbounded wait per step is one offending call
                // site, not one finding per iteration.
                RankOp::WaitCollective {
                    ctx,
                    deadline: false,
                    ..
                } => format!("wait-collective(ctx={ctx})"),
                RankOp::WaitLocal {
                    what,
                    deadline: false,
                } => format!("wait-local({what})"),
                _ => continue,
            };
            if seen_unbounded.insert((log.rank, site.clone())) {
                report.lints.push(GlobalLint::UnboundedWait {
                    rank: log.rank,
                    site,
                });
            }
        }
    }

    // Lint: skipped group posts. A member that never posted (ctx, seq) but
    // kept posting *later* collectives on the same ctx skipped the group
    // op; a member whose log simply ends is a death, not a skip.
    let mut all_posts: BTreeMap<(u64, u64), (BTreeSet<usize>, BTreeSet<usize>)> = BTreeMap::new();
    for log in logs {
        for op in &log.ops {
            if let RankOp::Post {
                ctx, seq, group, ..
            } = op
            {
                let entry = all_posts.entry((*ctx, *seq)).or_default();
                entry.0.insert(log.rank);
                entry.1.extend(group.iter().copied());
            }
        }
    }
    for (&(ctx, seq), (posters, members)) in &all_posts {
        for &m in members {
            if posters.contains(&m) {
                continue;
            }
            let Some(ml) = by_rank.get(&m) else { continue };
            let active_later = ml.ops.iter().any(
                |op| matches!(op, RankOp::Post { ctx: c, seq: s, .. } if *c == ctx && *s > seq),
            );
            if active_later {
                report.lints.push(GlobalLint::SkippedGroupPost {
                    rank: m,
                    ctx,
                    seq,
                    peers: posters.iter().copied().collect(),
                });
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a2a(ctx: u64, seq: u64, group: &[usize]) -> RankOp {
        RankOp::Post {
            ctx,
            seq,
            kind: CollectiveKind::Alltoall,
            group: group.to_vec(),
            blocking: true,
        }
    }

    #[test]
    fn matched_collectives_are_clean() {
        let group = [0usize, 1];
        let logs: Vec<RankLog> = (0..2)
            .map(|rank| RankLog {
                rank,
                ops: vec![a2a(1, 0, &group), a2a(1, 1, &group)],
            })
            .collect();
        let rep = analyze_global(&logs);
        assert!(rep.is_deadlock_free(), "{rep}");
        assert_eq!(rep.retired_ops, 4);
        assert_eq!(rep.stuck_ops, 0);
    }

    #[test]
    fn skipped_post_is_a_cycle_naming_both_ranks() {
        // Rank 0 skips (1, 0) and goes straight to (1, 1): rank 1 waits at
        // seq 0 for rank 0, rank 0 waits at seq 1 for rank 1.
        let group = [0usize, 1];
        let logs = vec![
            RankLog {
                rank: 0,
                ops: vec![a2a(1, 1, &group)],
            },
            RankLog {
                rank: 1,
                ops: vec![a2a(1, 0, &group), a2a(1, 1, &group)],
            },
        ];
        let rep = analyze_global(&logs);
        let cycles: Vec<_> = rep
            .deadlocks
            .iter()
            .filter(|d| d.kind == DeadlockKind::Cycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{rep}");
        let mut ranks = cycles[0].ranks.clone();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1]);
        assert!(
            rep.lints
                .iter()
                .any(|l| matches!(l, GlobalLint::SkippedGroupPost { rank: 0, .. })),
            "{rep}"
        );
    }

    #[test]
    fn dead_rank_is_a_terminated_peer_not_a_skip() {
        let group = [0usize, 1];
        let logs = vec![
            RankLog {
                rank: 0,
                ops: vec![],
            },
            RankLog {
                rank: 1,
                ops: vec![a2a(1, 0, &group)],
            },
        ];
        let rep = analyze_global(&logs);
        assert!(
            rep.deadlocks
                .iter()
                .any(|d| d.kind == DeadlockKind::TerminatedPeer && d.ranks == vec![1, 0]),
            "{rep}"
        );
        assert!(rep.lints.is_empty(), "death must not lint as a skip: {rep}");
    }

    #[test]
    fn deadline_bounded_waits_always_retire() {
        let logs = vec![RankLog {
            rank: 0,
            ops: vec![
                RankOp::WaitLocal {
                    what: "fence:q0".into(),
                    deadline: true,
                },
                RankOp::Note {
                    text: "timeout handled".into(),
                },
            ],
        }];
        let rep = analyze_global(&logs);
        assert!(rep.is_deadlock_free(), "{rep}");
        assert!(rep.lints.is_empty());
    }

    #[test]
    fn unbounded_local_wait_without_completion_hangs_and_lints() {
        let logs = vec![RankLog {
            rank: 2,
            ops: vec![RankOp::WaitLocal {
                what: "latch:dev1".into(),
                deadline: false,
            }],
        }];
        let rep = analyze_global(&logs);
        assert!(
            rep.deadlocks
                .iter()
                .any(|d| d.kind == DeadlockKind::LocalHang && d.ranks == vec![2]),
            "{rep}"
        );
        assert!(
            rep.lints
                .iter()
                .any(|l| matches!(l, GlobalLint::UnboundedWait { rank: 2, .. })),
            "{rep}"
        );
    }

    #[test]
    fn async_post_with_bounded_wait_is_clean() {
        let group = [0usize, 1];
        let mk = |rank| RankLog {
            rank,
            ops: vec![
                RankOp::Post {
                    ctx: 7,
                    seq: 0,
                    kind: CollectiveKind::Alltoallv,
                    group: group.to_vec(),
                    blocking: false,
                },
                RankOp::WaitCollective {
                    ctx: 7,
                    seq: 0,
                    deadline: true,
                },
            ],
        };
        let rep = analyze_global(&[mk(0), mk(1)]);
        assert!(rep.is_deadlock_free(), "{rep}");
        assert_eq!(rep.stuck_ops, 0);
    }

    #[test]
    fn recorder_hub_collects_per_rank() {
        let hub = GlobalRecorder::new();
        let r0 = hub.rank(0);
        let r1 = hub.rank(1);
        r0.post(1, 0, CollectiveKind::Alltoall, &[0, 1], true);
        r1.post(1, 0, CollectiveKind::Alltoall, &[0, 1], true);
        r0.note("step done");
        let logs = hub.snapshot();
        assert_eq!(logs.len(), 2);
        assert_eq!(logs[0].ops.len(), 2);
        assert!(analyze_global(&logs).is_deadlock_free());
    }
}
