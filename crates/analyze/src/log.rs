//! The ordering log: what the instrumented runtime records.
//!
//! One log captures one rank's schedule — every stream operation in host
//! *enqueue* order, every event `record`/`wait_event` edge, and every
//! host-side access to pinned staging memory. The replay engine
//! ([`crate::analyze`]) never sees the runtime itself, only this log, so a
//! schedule can be captured once and re-analyzed under mutation (delete an
//! edge, re-check) without re-running the pipeline.

use std::collections::HashMap;
use std::sync::Arc;

use psdns_sync::Mutex;

/// Track name used for host-thread operations (staging writes, snapshot
/// reads, `synchronize` joins). Stream tracks carry the stream's name.
pub const HOST_TRACK: &str = "host";

/// Which memory a buffer access touches. Device and host allocations draw
/// ids from one counter, so the space tag is diagnostic, not a namespace.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// A `DeviceBuffer` allocation.
    Device,
    /// A `PinnedBuffer` (page-locked host staging) allocation.
    Host,
}

impl MemSpace {
    pub fn label(self) -> &'static str {
        match self {
            MemSpace::Device => "device",
            MemSpace::Host => "host",
        }
    }
}

/// Read or write. An in-place kernel declares one access of each mode.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessMode {
    Read,
    Write,
}

/// One (possibly strided) access to a buffer, in elements of the buffer's
/// scalar type: `height` rows of `width` elements, row `i` starting at
/// `offset + i * pitch`. Linear accesses have `height == 1`.
///
/// Ranges are kept *precise* rather than collapsed to bounding boxes:
/// multi-GPU slabs interleave strided rows of the same staging buffer, and
/// a bounding-box model would report false WAW hazards between writes whose
/// rows are in fact disjoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Runtime-wide buffer id (`DeviceBuffer::id` / `PinnedBuffer::id`).
    pub buffer: u64,
    pub space: MemSpace,
    pub mode: AccessMode,
    pub offset: usize,
    pub width: usize,
    pub height: usize,
    pub pitch: usize,
}

impl Access {
    /// A linear read of `len` elements starting at `offset`.
    pub fn read(buffer: u64, space: MemSpace, offset: usize, len: usize) -> Self {
        Self::strided(AccessMode::Read, buffer, space, offset, len, 1, 0)
    }

    /// A linear write of `len` elements starting at `offset`.
    pub fn write(buffer: u64, space: MemSpace, offset: usize, len: usize) -> Self {
        Self::strided(AccessMode::Write, buffer, space, offset, len, 1, 0)
    }

    /// A 2-D strided access: `height` rows of `width` elements, `pitch`
    /// elements apart.
    pub fn strided(
        mode: AccessMode,
        buffer: u64,
        space: MemSpace,
        offset: usize,
        width: usize,
        height: usize,
        pitch: usize,
    ) -> Self {
        Self {
            buffer,
            space,
            mode,
            offset,
            width,
            height,
            pitch,
        }
    }

    fn row(&self, i: usize) -> (usize, usize) {
        let start = self.offset + i * self.pitch;
        (start, start + self.width)
    }

    /// Element-precise intersection test (same buffer assumed checked by
    /// the caller): any row interval of `self` overlapping any of `other`.
    pub fn overlaps(&self, other: &Access) -> bool {
        if self.buffer != other.buffer || self.space != other.space {
            return false;
        }
        for i in 0..self.height {
            let (a0, a1) = self.row(i);
            for j in 0..other.height {
                let (b0, b1) = other.row(j);
                if a0 < b1 && b0 < a1 {
                    return true;
                }
            }
        }
        false
    }

    /// Overlapping and at least one side writes.
    pub fn conflicts(&self, other: &Access) -> bool {
        (self.mode == AccessMode::Write || other.mode == AccessMode::Write) && self.overlaps(other)
    }
}

/// What kind of operation a log record describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Work executing on the recording track: a kernel, a copy, a memset,
    /// or (on the host track) a staging write / snapshot read. Carries its
    /// buffer accesses in [`OpRecord::accesses`].
    Exec,
    /// `Stream::record(event)` — snapshots the stream's position into the
    /// event under `ticket`.
    EventRecord { event: u64, ticket: u64 },
    /// `Stream::wait_event(event)` — the waiting stream will not start
    /// later work until the recorded position completes. `ticket == 0`
    /// means the event was never recorded (a no-op wait).
    EventWait { event: u64, ticket: u64 },
    /// Host-side `Stream::synchronize()` — the host thread joins
    /// everything enqueued on `stream` so far.
    HostJoinStream { stream: String },
    /// Host-side `Event::synchronize()` — the host thread joins the
    /// recorded position of `(event, ticket)`.
    HostJoinEvent { event: u64, ticket: u64 },
}

/// One recorded operation. `seq` is the global enqueue order (one host
/// thread drives all enqueues of a rank, so this order is a real total
/// order of the *program*, not of the asynchronous execution).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    pub seq: u64,
    /// Stream name, or [`HOST_TRACK`].
    pub track: String,
    /// Human-readable operation name (`"fft-y-inverse"`,
    /// `"memcpy2DAsync-h2d"`, ...). Hazard reports name both ends with it.
    pub name: String,
    pub kind: OpKind,
    pub accesses: Vec<Access>,
}

#[derive(Default)]
struct LogInner {
    next_seq: u64,
    ops: Vec<OpRecord>,
    labels: HashMap<u64, String>,
}

/// The shared recorder handle. Cloning shares the log; the device layer
/// holds one clone per device, the pipeline another for host-side ops.
///
/// Soundness contract: one log records **one rank**, driven by **one host
/// thread** (the normal shape of the runtime — every stream op is enqueued
/// from the rank's solver thread). The enqueue order then induces the
/// program-order edges the replay engine relies on.
#[derive(Clone, Default)]
pub struct OrderingLog {
    inner: Arc<Mutex<LogInner>>,
}

impl OrderingLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one operation; assigns the next global sequence number.
    pub fn record(&self, track: &str, name: &str, kind: OpKind, accesses: Vec<Access>) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.ops.push(OpRecord {
            seq,
            track: track.to_string(),
            name: name.to_string(),
            kind,
            accesses,
        });
    }

    /// Attach a human-readable label to a buffer id; hazard reports use it
    /// instead of the bare id.
    pub fn label_buffer(&self, id: u64, label: &str) {
        self.inner.lock().labels.insert(id, label.to_string());
    }

    /// A copy of the recorded operations, in enqueue order.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        self.inner.lock().ops.clone()
    }

    /// A copy of the buffer-label map.
    pub fn labels(&self) -> HashMap<u64, String> {
        self.inner.lock().labels.clone()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().ops.is_empty()
    }

    /// Drop all recorded operations (labels are kept).
    pub fn clear(&self) {
        self.inner.lock().ops.clear();
    }
}

/// One *effective* `wait_event` edge found in a log: a wait whose ticket
/// was actually recorded. `recorder` is the track that issued the matching
/// `record`; a [`cross_stream`](WaitEdge::cross_stream) edge is the kind
/// whose deletion can introduce a hazard (same-track edges are implied by
/// stream FIFO order and are redundant by construction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// Index into the ops slice (stable under [`without_pos`] of *other*
    /// positions).
    pub pos: usize,
    pub seq: u64,
    pub waiter: String,
    pub recorder: String,
    pub event: u64,
    pub ticket: u64,
}

impl WaitEdge {
    pub fn cross_stream(&self) -> bool {
        self.waiter != self.recorder
    }
}

/// Enumerate every effective wait edge of `ops` (waits with `ticket == 0`
/// or no matching record are no-ops and are skipped). This is the mutation
/// surface for schedule-robustness tests: delete one with [`without_pos`]
/// and re-analyze.
pub fn wait_edges(ops: &[OpRecord]) -> Vec<WaitEdge> {
    let mut recorded: HashMap<(u64, u64), String> = HashMap::new();
    let mut edges = Vec::new();
    for (pos, op) in ops.iter().enumerate() {
        match &op.kind {
            OpKind::EventRecord { event, ticket } => {
                recorded.insert((*event, *ticket), op.track.clone());
            }
            OpKind::EventWait { event, ticket } if *ticket > 0 => {
                if let Some(rec) = recorded.get(&(*event, *ticket)) {
                    edges.push(WaitEdge {
                        pos,
                        seq: op.seq,
                        waiter: op.track.clone(),
                        recorder: rec.clone(),
                        event: *event,
                        ticket: *ticket,
                    });
                }
            }
            _ => {}
        }
    }
    edges
}

/// A copy of `ops` with the record at `pos` deleted — the "deliberately
/// deleted `wait_event`" mutation.
pub fn without_pos(ops: &[OpRecord], pos: usize) -> Vec<OpRecord> {
    let mut out = Vec::with_capacity(ops.len().saturating_sub(1));
    for (i, op) in ops.iter().enumerate() {
        if i != pos {
            out.push(op.clone());
        }
    }
    out
}

/// Structural normalization for cross-run and cross-backend log comparison.
///
/// Event and buffer ids come from process-wide counters, so two identical
/// schedules recorded in the same process (e.g. the same pipeline driven
/// once on the simulated backend and once on the host backend) carry
/// different raw ids even though they are the same schedule. `normalized`
/// remaps both id spaces to dense first-occurrence indices and re-bases
/// `seq` at 0, preserving every track, op name, kind, ticket, and access
/// range — two logs are the same *schedule* iff their normalizations are
/// equal. This is the equality the backend-conformance suite pins.
pub fn normalized(ops: &[OpRecord]) -> Vec<OpRecord> {
    fn remap(map: &mut HashMap<u64, u64>, id: u64) -> u64 {
        let next = map.len() as u64;
        *map.entry(id).or_insert(next)
    }
    let mut events: HashMap<u64, u64> = HashMap::new();
    let mut buffers: HashMap<u64, u64> = HashMap::new();
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let kind = match &op.kind {
                OpKind::Exec => OpKind::Exec,
                OpKind::EventRecord { event, ticket } => OpKind::EventRecord {
                    event: remap(&mut events, *event),
                    ticket: *ticket,
                },
                OpKind::EventWait { event, ticket } => OpKind::EventWait {
                    event: remap(&mut events, *event),
                    ticket: *ticket,
                },
                OpKind::HostJoinStream { stream } => OpKind::HostJoinStream {
                    stream: stream.clone(),
                },
                OpKind::HostJoinEvent { event, ticket } => OpKind::HostJoinEvent {
                    event: remap(&mut events, *event),
                    ticket: *ticket,
                },
            };
            let accesses = op
                .accesses
                .iter()
                .map(|a| Access {
                    buffer: remap(&mut buffers, a.buffer),
                    ..*a
                })
                .collect();
            OpRecord {
                seq: i as u64,
                track: op.track.clone(),
                name: op.name.clone(),
                kind,
                accesses,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_overlap_is_exact() {
        let a = Access::write(1, MemSpace::Device, 0, 10);
        let b = Access::read(1, MemSpace::Device, 10, 5);
        assert!(!a.overlaps(&b), "adjacent ranges must not overlap");
        let c = Access::read(1, MemSpace::Device, 9, 1);
        assert!(a.conflicts(&c));
        let other_buf = Access::write(2, MemSpace::Device, 0, 10);
        assert!(!a.overlaps(&other_buf));
        let host = Access::write(1, MemSpace::Host, 0, 10);
        assert!(!a.overlaps(&host), "same id, different space");
    }

    #[test]
    fn strided_rows_are_precise_not_bounding_boxes() {
        // Two writers interleave rows of the same buffer: rows 0,2,4 vs
        // rows 1,3,5 (width 4, pitch 8). Bounding boxes overlap; the
        // actual element sets do not.
        let even = Access::strided(AccessMode::Write, 7, MemSpace::Host, 0, 4, 3, 8);
        let odd = Access::strided(AccessMode::Write, 7, MemSpace::Host, 4, 4, 3, 8);
        assert!(!even.overlaps(&odd));
        // Shift by one element: now they clash.
        let shifted = Access::strided(AccessMode::Write, 7, MemSpace::Host, 3, 4, 3, 8);
        assert!(even.conflicts(&shifted));
    }

    #[test]
    fn reads_never_conflict_with_reads() {
        let a = Access::read(3, MemSpace::Device, 0, 8);
        let b = Access::read(3, MemSpace::Device, 4, 8);
        assert!(a.overlaps(&b));
        assert!(!a.conflicts(&b));
    }

    #[test]
    fn wait_edge_enumeration_skips_noop_waits() {
        let log = OrderingLog::new();
        log.record(
            "s0",
            "wait",
            OpKind::EventWait {
                event: 1,
                ticket: 0,
            },
            vec![],
        );
        log.record(
            "s0",
            "record",
            OpKind::EventRecord {
                event: 1,
                ticket: 1,
            },
            vec![],
        );
        log.record(
            "s1",
            "wait",
            OpKind::EventWait {
                event: 1,
                ticket: 1,
            },
            vec![],
        );
        let ops = log.snapshot();
        let edges = wait_edges(&ops);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].pos, 2);
        assert_eq!(edges[0].waiter, "s1");
        assert_eq!(edges[0].recorder, "s0");
        assert!(edges[0].cross_stream());
        assert_eq!(without_pos(&ops, 2).len(), 2);
    }

    #[test]
    fn normalization_erases_global_id_offsets_only() {
        // Same schedule recorded twice with shifted event/buffer ids:
        // normalizations must agree.
        let build = |event: u64, buffer: u64| {
            let log = OrderingLog::new();
            log.record(
                "s0",
                "k",
                OpKind::Exec,
                vec![Access::write(buffer, MemSpace::Device, 0, 8)],
            );
            log.record(
                "s0",
                "record",
                OpKind::EventRecord { event, ticket: 1 },
                vec![],
            );
            log.record("s1", "wait", OpKind::EventWait { event, ticket: 1 }, vec![]);
            log.record(
                "s1",
                "k2",
                OpKind::Exec,
                vec![Access::read(buffer, MemSpace::Device, 0, 8)],
            );
            log.snapshot()
        };
        let a = build(5, 100);
        let b = build(91, 4017);
        assert_ne!(a, b, "raw logs differ by id offsets");
        assert_eq!(normalized(&a), normalized(&b));

        // A genuinely different schedule (extra wait edge) stays different.
        let log = OrderingLog::new();
        log.record("s0", "k", OpKind::Exec, vec![]);
        assert_ne!(normalized(&a), normalized(&log.snapshot()));
    }
}
