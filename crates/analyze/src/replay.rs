//! Vector-clock happens-before replay of an [`OrderingLog`].
//!
//! The model follows `compute-sanitizer racecheck`: every track (stream or
//! host thread) carries a vector clock; happens-before edges are
//!
//! 1. **FIFO** — operations on one stream execute in enqueue order;
//! 2. **program order** — a stream operation happens after everything the
//!    host thread had already done when it enqueued it (the host enqueues
//!    all work of a rank);
//! 3. **event edges** — `wait_event(e)` happens after the `record(e)`
//!    snapshot it captured (per ticket), `Event::synchronize` /
//!    `Stream::synchronize` join the host clock the same way.
//!
//! Two accesses to overlapping elements of one buffer, at least one a
//! write, with *neither* ordered before the other, are a [`Hazard`] —
//! exactly the schedule bugs a deleted `wait_event` introduces, reported
//! deterministically instead of as a flaky wrong answer.
//!
//! The engine additionally reports *redundant* waits: `wait_event` calls
//! whose join adds no ordering (typically a wait on an event recorded
//! earlier on the same stream, already implied by FIFO order). Deleting
//! such an edge cannot introduce a hazard, and a sound detector must stay
//! clean when one is deleted — the tests rely on that distinction.

use std::collections::HashMap;
use std::fmt;

use crate::log::{Access, AccessMode, MemSpace, OpKind, OpRecord, OrderingLog, HOST_TRACK};

/// A reference to one logged operation, used to name both ends of a hazard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRef {
    /// Global enqueue sequence number of the operation.
    pub seq: u64,
    /// Stream name or [`HOST_TRACK`].
    pub track: String,
    /// Operation name as logged (`"fft-y-inverse"`, `"memcpyAsync-h2d"`, ...).
    pub name: String,
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` (op #{} on {})", self.name, self.seq, self.track)
    }
}

/// Hazard taxonomy, by the modes of the two unordered accesses in enqueue
/// order (first, second).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// First writes, second reads: the read may see stale data.
    ReadAfterWrite,
    /// First reads, second writes: the write may clobber data still being
    /// read.
    WriteAfterRead,
    /// Both write: the final contents depend on execution timing.
    WriteAfterWrite,
}

impl HazardKind {
    pub fn label(self) -> &'static str {
        match self {
            HazardKind::ReadAfterWrite => "read-after-write",
            HazardKind::WriteAfterRead => "write-after-read",
            HazardKind::WriteAfterWrite => "write-after-write",
        }
    }
}

/// One detected hazard: two operations touching overlapping elements of
/// one buffer with no happens-before path between them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hazard {
    pub kind: HazardKind,
    /// Runtime-wide id of the contested buffer.
    pub buffer: u64,
    /// Human label if the pipeline registered one (`"cbuf[g0][s1]"`).
    pub buffer_label: Option<String>,
    pub space: MemSpace,
    /// Earlier operation (by enqueue order).
    pub first: OpRef,
    /// Later operation; unordered with `first` despite the conflict.
    pub second: OpRef,
}

impl Hazard {
    fn buffer_name(&self) -> String {
        match &self.buffer_label {
            Some(l) => format!("`{l}` (buffer {})", self.buffer),
            None => format!("buffer {}", self.buffer),
        }
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hazard on {} {}: {} and {} touch overlapping elements with no \
             happens-before edge ordering them",
            self.kind.label(),
            self.space.label(),
            self.buffer_name(),
            self.first,
            self.second,
        )
    }
}

impl std::error::Error for Hazard {}

/// Result of replaying one log.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// All unordered conflicting pairs, one entry per (op, op, buffer).
    pub hazards: Vec<Hazard>,
    /// Operations replayed.
    pub ops: usize,
    /// Tracks seen, in order of first appearance.
    pub tracks: Vec<String>,
    /// Distinct buffers accessed.
    pub buffers: usize,
    /// Effective `wait_event` joins that actually added ordering.
    pub cross_stream_edges: usize,
    /// `wait_event` calls whose join added nothing (already implied by
    /// FIFO / earlier edges). Safe to delete; reported as a lint.
    pub redundant_waits: Vec<OpRef>,
}

impl AnalysisReport {
    /// No hazards — the schedule is certified race-free under the model.
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let verdict = if self.is_clean() {
            "race-free".to_string()
        } else {
            format!("{} hazard(s)", self.hazards.len())
        };
        format!(
            "{verdict}: {} ops on {} track(s), {} buffer(s), {} load-bearing event edge(s), \
             {} redundant wait(s)",
            self.ops,
            self.tracks.len(),
            self.buffers,
            self.cross_stream_edges,
            self.redundant_waits.len(),
        )
    }
}

fn join(into: &mut [u64], other: &[u64]) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

fn dominates(clock: &[u64], other: &[u64]) -> bool {
    clock.iter().zip(other).all(|(a, b)| a >= b)
}

struct ExecInfo {
    opref: OpRef,
    track: usize,
    /// This op's own clock component — `b` is ordered after `a` iff
    /// `b.snapshot[a.track] >= a.own`.
    own: u64,
    snapshot: Vec<u64>,
    accesses: Vec<Access>,
}

/// Replay `ops` and report hazards. `labels` maps buffer ids to the
/// human-readable names used in reports (see
/// [`OrderingLog::label_buffer`]).
pub fn analyze(ops: &[OpRecord], labels: &HashMap<u64, String>) -> AnalysisReport {
    // Track discovery, host first so it always has an index.
    let mut tracks: Vec<String> = Vec::new();
    let mut track_ids: HashMap<String, usize> = HashMap::new();
    fn id_of(
        name: &str,
        track_ids: &mut HashMap<String, usize>,
        tracks: &mut Vec<String>,
    ) -> usize {
        if let Some(&i) = track_ids.get(name) {
            i
        } else {
            let i = tracks.len();
            tracks.push(name.to_string());
            track_ids.insert(name.to_string(), i);
            i
        }
    }
    let host = id_of(HOST_TRACK, &mut track_ids, &mut tracks);
    for op in ops {
        id_of(&op.track, &mut track_ids, &mut tracks);
    }
    let n = tracks.len();

    let mut clocks: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut event_clocks: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    let mut execs: Vec<ExecInfo> = Vec::new();
    let mut cross_stream_edges = 0usize;
    let mut redundant_waits: Vec<OpRef> = Vec::new();

    for op in ops {
        let t = track_ids[&op.track];
        if t != host {
            // Program-order edge: the host thread enqueued this op, so it
            // happens after everything the host had already joined.
            let h = clocks[host].clone();
            join(&mut clocks[t], &h);
        }
        clocks[t][t] += 1;
        let own = clocks[t][t];
        let opref = OpRef {
            seq: op.seq,
            track: op.track.clone(),
            name: op.name.clone(),
        };
        match &op.kind {
            OpKind::EventRecord { event, ticket } => {
                event_clocks.insert((*event, *ticket), clocks[t].clone());
            }
            OpKind::EventWait { event, ticket } | OpKind::HostJoinEvent { event, ticket } => {
                if *ticket > 0 {
                    if let Some(rc) = event_clocks.get(&(*event, *ticket)).cloned() {
                        if dominates(&clocks[t], &rc) {
                            if matches!(op.kind, OpKind::EventWait { .. }) {
                                redundant_waits.push(opref);
                            }
                        } else {
                            cross_stream_edges += 1;
                            join(&mut clocks[t], &rc);
                        }
                    }
                }
            }
            OpKind::HostJoinStream { stream } => {
                if let Some(&s) = track_ids.get(stream) {
                    let sc = clocks[s].clone();
                    join(&mut clocks[t], &sc);
                }
            }
            OpKind::Exec => {
                if !op.accesses.is_empty() {
                    execs.push(ExecInfo {
                        opref,
                        track: t,
                        own,
                        snapshot: clocks[t].clone(),
                        accesses: op.accesses.clone(),
                    });
                }
            }
        }
    }

    // Hazard pass: per buffer, pairwise over the ops touching it. The HB
    // test is O(1) and run first; the (potentially strided) overlap test
    // only runs for the rare unordered pairs.
    let mut by_buffer: HashMap<(u64, MemSpace), Vec<usize>> = HashMap::new();
    for (i, e) in execs.iter().enumerate() {
        let mut seen: Vec<(u64, MemSpace)> = Vec::new();
        for a in &e.accesses {
            let key = (a.buffer, a.space);
            if !seen.contains(&key) {
                seen.push(key);
                by_buffer.entry(key).or_default().push(i);
            }
        }
    }
    let buffers = by_buffer.len();

    let mut hazards: Vec<Hazard> = Vec::new();
    for (&(buffer, space), users) in &by_buffer {
        for (ai, &ia) in users.iter().enumerate() {
            for &ib in &users[ai + 1..] {
                let (a, b) = (&execs[ia], &execs[ib]);
                if b.snapshot[a.track] >= a.own {
                    continue; // a happens-before b
                }
                let conflict = a
                    .accesses
                    .iter()
                    .filter(|x| x.buffer == buffer && x.space == space)
                    .flat_map(|x| {
                        b.accesses
                            .iter()
                            .filter(|y| y.buffer == buffer && y.space == space)
                            .map(move |y| (x, y))
                    })
                    .find(|(x, y)| x.conflicts(y));
                if let Some((x, y)) = conflict {
                    let kind = match (x.mode, y.mode) {
                        (AccessMode::Write, AccessMode::Write) => HazardKind::WriteAfterWrite,
                        (AccessMode::Write, AccessMode::Read) => HazardKind::ReadAfterWrite,
                        (AccessMode::Read, AccessMode::Write) => HazardKind::WriteAfterRead,
                        (AccessMode::Read, AccessMode::Read) => {
                            unreachable!("reads never conflict")
                        }
                    };
                    hazards.push(Hazard {
                        kind,
                        buffer,
                        buffer_label: labels.get(&buffer).cloned(),
                        space,
                        first: a.opref.clone(),
                        second: b.opref.clone(),
                    });
                }
            }
        }
    }
    hazards.sort_by_key(|h| (h.first.seq, h.second.seq, h.buffer));

    AnalysisReport {
        hazards,
        ops: ops.len(),
        tracks,
        buffers,
        cross_stream_edges,
        redundant_waits,
    }
}

/// Convenience wrapper: snapshot + analyze a live [`OrderingLog`].
pub fn analyze_log(log: &OrderingLog) -> AnalysisReport {
    analyze(&log.snapshot(), &log.labels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Access, OpKind, OrderingLog};

    fn exec(log: &OrderingLog, track: &str, name: &str, accesses: Vec<Access>) {
        log.record(track, name, OpKind::Exec, accesses);
    }

    /// The canonical triple-buffer fragment: H2D on the transfer stream,
    /// kernel on the compute stream, D2H back on the transfer stream, with
    /// (or without) the two cross-stream event edges.
    fn pipeline_fragment(with_edges: bool) -> OrderingLog {
        let log = OrderingLog::new();
        log.label_buffer(1, "cbuf");
        exec(
            &log,
            "xfer",
            "memcpyAsync-h2d",
            vec![Access::write(1, MemSpace::Device, 0, 64)],
        );
        log.record(
            "xfer",
            "event-record",
            OpKind::EventRecord {
                event: 10,
                ticket: 1,
            },
            vec![],
        );
        if with_edges {
            log.record(
                "comp",
                "event-wait",
                OpKind::EventWait {
                    event: 10,
                    ticket: 1,
                },
                vec![],
            );
        }
        exec(
            &log,
            "comp",
            "fft-kernel",
            vec![
                Access::read(1, MemSpace::Device, 0, 64),
                Access::write(1, MemSpace::Device, 0, 64),
            ],
        );
        log.record(
            "comp",
            "event-record",
            OpKind::EventRecord {
                event: 11,
                ticket: 1,
            },
            vec![],
        );
        if with_edges {
            log.record(
                "xfer",
                "event-wait",
                OpKind::EventWait {
                    event: 11,
                    ticket: 1,
                },
                vec![],
            );
        }
        exec(
            &log,
            "xfer",
            "memcpyAsync-d2h",
            vec![Access::read(1, MemSpace::Device, 0, 64)],
        );
        log
    }

    #[test]
    fn well_synchronized_fragment_is_clean() {
        let report = analyze_log(&pipeline_fragment(true));
        assert!(report.is_clean(), "{:?}", report.hazards);
        assert_eq!(report.cross_stream_edges, 2);
        assert!(report.redundant_waits.is_empty());
    }

    #[test]
    fn missing_edges_yield_typed_hazards_naming_both_ops() {
        let report = analyze_log(&pipeline_fragment(false));
        assert!(!report.is_clean());
        // H2D vs kernel is both RAW (kernel reads) and WAW (kernel
        // writes); one hazard per op pair is reported.
        let raw = report
            .hazards
            .iter()
            .find(|h| h.first.name == "memcpyAsync-h2d" && h.second.name == "fft-kernel")
            .expect("h2d/kernel hazard");
        assert_eq!(raw.kind, HazardKind::ReadAfterWrite);
        assert_eq!(raw.buffer_label.as_deref(), Some("cbuf"));
        assert_eq!(raw.first.track, "xfer");
        assert_eq!(raw.second.track, "comp");
        let disp = raw.to_string();
        assert!(disp.contains("memcpyAsync-h2d") && disp.contains("fft-kernel"));
        // Kernel vs D2H: the copy may read mid-kernel output.
        assert!(report
            .hazards
            .iter()
            .any(|h| h.first.name == "fft-kernel" && h.second.name == "memcpyAsync-d2h"));
    }

    #[test]
    fn same_stream_waits_are_reported_redundant() {
        let log = OrderingLog::new();
        exec(
            &log,
            "xfer",
            "memcpyAsync-h2d",
            vec![Access::write(1, MemSpace::Device, 0, 8)],
        );
        log.record(
            "xfer",
            "event-record",
            OpKind::EventRecord {
                event: 5,
                ticket: 1,
            },
            vec![],
        );
        // FIFO already orders this; the wait adds nothing.
        log.record(
            "xfer",
            "event-wait",
            OpKind::EventWait {
                event: 5,
                ticket: 1,
            },
            vec![],
        );
        exec(
            &log,
            "xfer",
            "memcpyAsync-d2h",
            vec![Access::read(1, MemSpace::Device, 0, 8)],
        );
        let report = analyze_log(&log);
        assert!(report.is_clean());
        assert_eq!(report.cross_stream_edges, 0);
        assert_eq!(report.redundant_waits.len(), 1);
        assert_eq!(report.redundant_waits[0].track, "xfer");
    }

    #[test]
    fn host_joins_order_staging_access() {
        let log = OrderingLog::new();
        // Host writes staging, stream reads it: ordered by program order.
        exec(
            &log,
            HOST_TRACK,
            "host-stage",
            vec![Access::write(2, MemSpace::Host, 0, 16)],
        );
        exec(
            &log,
            "xfer",
            "memcpyAsync-h2d",
            vec![Access::read(2, MemSpace::Host, 0, 16)],
        );
        // Stream writes host memory; host reads it back...
        exec(
            &log,
            "xfer",
            "memcpyAsync-d2h",
            vec![Access::write(3, MemSpace::Host, 0, 16)],
        );
        // ...without synchronizing first: hazard.
        exec(
            &log,
            HOST_TRACK,
            "host-snapshot",
            vec![Access::read(3, MemSpace::Host, 0, 16)],
        );
        let report = analyze_log(&log);
        assert_eq!(report.hazards.len(), 1);
        assert_eq!(report.hazards[0].kind, HazardKind::ReadAfterWrite);
        assert_eq!(report.hazards[0].second.name, "host-snapshot");

        // Same schedule with the stream-synchronize join: clean.
        let log2 = OrderingLog::new();
        exec(
            &log2,
            "xfer",
            "memcpyAsync-d2h",
            vec![Access::write(3, MemSpace::Host, 0, 16)],
        );
        log2.record(
            HOST_TRACK,
            "stream-synchronize",
            OpKind::HostJoinStream {
                stream: "xfer".to_string(),
            },
            vec![],
        );
        exec(
            &log2,
            HOST_TRACK,
            "host-snapshot",
            vec![Access::read(3, MemSpace::Host, 0, 16)],
        );
        assert!(analyze_log(&log2).is_clean());
    }
}
