//! Cross-rank collective matching: fingerprints and the shared verifier.
//!
//! MPI semantics require every rank of a communicator to issue the *same*
//! sequence of collectives. A divergence — one rank calls `barrier` while
//! another calls `alltoall`, or the orders differ — classically manifests
//! as a hang (each rank blocked in a different exchange) that tools like
//! MUST diagnose at scale. The verifier in `psdns-comm` prepends a
//! fingerprint exchange to every collective; this module holds the
//! runtime-agnostic pieces: the [`CollectiveFingerprint`] wire format, the
//! typed [`CollectiveMismatch`] diagnosis, and the [`CollectiveVerifier`]
//! handle that collects the first mismatch for the driver/test to inspect
//! after the job dies.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use psdns_sync::Mutex;

/// The primitive collectives of the runtime (composites like `allreduce`
/// fingerprint as the primitives they decompose into).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    Barrier,
    Bcast,
    Gather,
    Allgather,
    Scatter,
    Alltoall,
    Alltoallv,
}

impl CollectiveKind {
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Alltoallv => "alltoallv",
        }
    }

    fn code(self) -> u64 {
        match self {
            CollectiveKind::Barrier => 0,
            CollectiveKind::Bcast => 1,
            CollectiveKind::Gather => 2,
            CollectiveKind::Allgather => 3,
            CollectiveKind::Scatter => 4,
            CollectiveKind::Alltoall => 5,
            CollectiveKind::Alltoallv => 6,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            0 => CollectiveKind::Barrier,
            1 => CollectiveKind::Bcast,
            2 => CollectiveKind::Gather,
            3 => CollectiveKind::Allgather,
            4 => CollectiveKind::Scatter,
            5 => CollectiveKind::Alltoall,
            6 => CollectiveKind::Alltoallv,
            _ => return None,
        })
    }

    /// Whether MPI semantics force every rank to pass the same element
    /// count (`alltoall`'s uniform chunk). Rooted collectives and the
    /// vector variants legitimately differ per rank, so only the kind and
    /// position are compared for them.
    pub fn uniform_elems(self) -> bool {
        matches!(self, CollectiveKind::Barrier | CollectiveKind::Alltoall)
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What one rank is about to do: collective kind, local element count,
/// communicator context and the communicator's collective epoch (how many
/// collectives it has completed). Two ranks diverge exactly when their
/// fingerprints at the same verification round disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveFingerprint {
    pub kind: CollectiveKind,
    /// Elements this rank passes (send side).
    pub elems: u64,
    /// Communicator context id (splits get fresh ones).
    pub ctx: u64,
    /// Collective epoch on this communicator at the time of the call.
    pub seq: u64,
}

impl CollectiveFingerprint {
    /// Wire format for the verification exchange.
    pub fn encode(&self) -> Vec<u64> {
        vec![self.kind.code(), self.elems, self.ctx, self.seq]
    }

    pub fn decode(words: &[u64]) -> Option<Self> {
        if words.len() != 4 {
            return None;
        }
        Some(Self {
            kind: CollectiveKind::from_code(words[0])?,
            elems: words[1],
            ctx: words[2],
            seq: words[3],
        })
    }

    /// Do two ranks' views of one round agree? Kind, context and epoch
    /// must match; element counts only for kinds that require uniformity.
    pub fn matches(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.ctx == other.ctx
            && self.seq == other.seq
            && (!self.kind.uniform_elems() || self.elems == other.elems)
    }
}

impl fmt::Display for CollectiveFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} elems] (ctx {:#x}, epoch {})",
            self.kind, self.elems, self.ctx, self.seq
        )
    }
}

/// The typed diagnosis a diverging collective produces instead of a hang.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollectiveMismatch {
    /// Two ranks posted *different* collectives at the same round —
    /// mismatched kinds, contexts, epochs, or (where uniformity is
    /// required) element counts. Classic cause: reordered collective
    /// calls on one rank.
    Mismatched {
        /// Verification round (nth verified collective on the communicator).
        round: u64,
        /// Rank and fingerprint of one side (the verifying root).
        a: (usize, CollectiveFingerprint),
        /// Rank and fingerprint of the disagreeing side.
        b: (usize, CollectiveFingerprint),
    },
    /// A rank never arrived at the round within the verifier's deadline —
    /// it crashed, stalled, or is blocked in a different collective whose
    /// own verification cannot proceed either.
    Missing {
        round: u64,
        /// The absent rank.
        rank: usize,
        /// How long the root waited before diagnosing.
        waited_ms: u64,
        /// What the ranks that *did* arrive were posting.
        posted: (usize, CollectiveFingerprint),
    },
}

impl CollectiveMismatch {
    pub fn round(&self) -> u64 {
        match self {
            CollectiveMismatch::Mismatched { round, .. }
            | CollectiveMismatch::Missing { round, .. } => *round,
        }
    }
}

impl fmt::Display for CollectiveMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveMismatch::Mismatched { round, a, b } => write!(
                f,
                "collective mismatch at round {}: rank {} posted {} but rank {} posted {}",
                round, a.0, a.1, b.0, b.1
            ),
            CollectiveMismatch::Missing {
                round,
                rank,
                waited_ms,
                posted,
            } => write!(
                f,
                "collective mismatch at round {}: rank {} never arrived \
                 (waited {} ms); rank {} posted {}",
                round, rank, waited_ms, posted.0, posted.1
            ),
        }
    }
}

/// Wire format of the root's verdict broadcast: `[1]` for OK, or a
/// mismatch encoded as `[0, round, rank_a, fp_a..., rank_b, fp_b...]`.
/// Used by `psdns-comm`'s verification exchange; not a stable API.
#[doc(hidden)]
pub fn encode_verdict(m: &CollectiveMismatch) -> Vec<u64> {
    match m {
        CollectiveMismatch::Mismatched { round, a, b } => {
            let mut w = vec![0, *round, a.0 as u64];
            w.extend(a.1.encode());
            w.push(b.0 as u64);
            w.extend(b.1.encode());
            w
        }
        // `Missing` never reaches the verdict broadcast (the job is failed
        // instead), but keep the encoding total.
        CollectiveMismatch::Missing {
            round,
            rank,
            waited_ms,
            posted,
        } => {
            let mut w = vec![2, *round, *rank as u64, *waited_ms, posted.0 as u64];
            w.extend(posted.1.encode());
            w
        }
    }
}

#[doc(hidden)]
pub fn decode_verdict(words: &[u64]) -> Option<CollectiveMismatch> {
    match words.first()? {
        0 if words.len() == 12 => Some(CollectiveMismatch::Mismatched {
            round: words[1],
            a: (
                words[2] as usize,
                CollectiveFingerprint::decode(&words[3..7])?,
            ),
            b: (
                words[7] as usize,
                CollectiveFingerprint::decode(&words[8..12])?,
            ),
        }),
        2 if words.len() == 9 => Some(CollectiveMismatch::Missing {
            round: words[1],
            rank: words[2] as usize,
            waited_ms: words[3],
            posted: (
                words[4] as usize,
                CollectiveFingerprint::decode(&words[5..9])?,
            ),
        }),
        _ => None,
    }
}

struct VerifierShared {
    deadline_ms: AtomicU64,
    mismatch: Mutex<Option<CollectiveMismatch>>,
}

/// Shared handle attached to a communicator (and, via `Arc`, typically to
/// *all* ranks' communicators of one job, so the diagnosis survives the
/// job's death): configures the arrival deadline and collects the first
/// [`CollectiveMismatch`].
#[derive(Clone)]
pub struct CollectiveVerifier {
    shared: Arc<VerifierShared>,
}

impl Default for CollectiveVerifier {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectiveVerifier {
    /// Default arrival deadline: generous for tests, far below a CI hang.
    pub const DEFAULT_DEADLINE: Duration = Duration::from_millis(2000);

    pub fn new() -> Self {
        Self {
            shared: Arc::new(VerifierShared {
                deadline_ms: AtomicU64::new(Self::DEFAULT_DEADLINE.as_millis() as u64),
                mismatch: Mutex::new(None),
            }),
        }
    }

    /// How long the verifying root waits for every rank's fingerprint
    /// before diagnosing [`CollectiveMismatch::Missing`].
    pub fn with_deadline(self, deadline: Duration) -> Self {
        self.shared
            .deadline_ms
            .store(deadline.as_millis() as u64, Ordering::Relaxed);
        self
    }

    pub fn deadline(&self) -> Duration {
        Duration::from_millis(self.shared.deadline_ms.load(Ordering::Relaxed))
    }

    /// Record a diagnosis; the first one wins (later ranks re-reporting
    /// the same divergence are ignored).
    pub fn report(&self, m: CollectiveMismatch) {
        let mut slot = self.shared.mismatch.lock();
        if slot.is_none() {
            *slot = Some(m);
        }
    }

    /// The recorded mismatch, if any (clone; the slot is kept).
    pub fn mismatch(&self) -> Option<CollectiveMismatch> {
        self.shared.mismatch.lock().clone()
    }

    /// Take the recorded mismatch, clearing the slot.
    pub fn take_mismatch(&self) -> Option<CollectiveMismatch> {
        self.shared.mismatch.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(kind: CollectiveKind, elems: u64, seq: u64) -> CollectiveFingerprint {
        CollectiveFingerprint {
            kind,
            elems,
            ctx: 0xabc,
            seq,
        }
    }

    #[test]
    fn fingerprint_roundtrip_and_matching() {
        let a = fp(CollectiveKind::Alltoall, 64, 3);
        assert_eq!(CollectiveFingerprint::decode(&a.encode()), Some(a.clone()));
        assert!(a.matches(&a));
        // alltoall requires uniform counts...
        assert!(!a.matches(&fp(CollectiveKind::Alltoall, 32, 3)));
        // ...gather does not (root receives, leaves send).
        let g = fp(CollectiveKind::Gather, 64, 3);
        assert!(g.matches(&fp(CollectiveKind::Gather, 0, 3)));
        // Kind and epoch always compared.
        assert!(!a.matches(&fp(CollectiveKind::Barrier, 64, 3)));
        assert!(!a.matches(&fp(CollectiveKind::Alltoall, 64, 4)));
        assert_eq!(CollectiveFingerprint::decode(&[9, 0, 0, 0]), None);
    }

    #[test]
    fn verdict_roundtrip() {
        let m = CollectiveMismatch::Mismatched {
            round: 7,
            a: (0, fp(CollectiveKind::Alltoall, 8, 7)),
            b: (2, fp(CollectiveKind::Barrier, 0, 7)),
        };
        assert_eq!(decode_verdict(&encode_verdict(&m)), Some(m.clone()));
        assert!(m.to_string().contains("rank 2 posted barrier"));
        let miss = CollectiveMismatch::Missing {
            round: 1,
            rank: 3,
            waited_ms: 250,
            posted: (0, fp(CollectiveKind::Allgather, 4, 1)),
        };
        assert_eq!(decode_verdict(&encode_verdict(&miss)), Some(miss.clone()));
        assert_eq!(miss.round(), 1);
        assert_eq!(decode_verdict(&[1]), None);
    }

    #[test]
    fn verifier_first_report_wins() {
        let v = CollectiveVerifier::new().with_deadline(Duration::from_millis(50));
        assert_eq!(v.deadline(), Duration::from_millis(50));
        assert!(v.mismatch().is_none());
        let first = CollectiveMismatch::Missing {
            round: 0,
            rank: 1,
            waited_ms: 50,
            posted: (0, fp(CollectiveKind::Barrier, 0, 0)),
        };
        v.report(first.clone());
        v.report(CollectiveMismatch::Missing {
            round: 9,
            rank: 2,
            waited_ms: 1,
            posted: (0, fp(CollectiveKind::Barrier, 0, 9)),
        });
        let v2 = v.clone();
        assert_eq!(v2.mismatch(), Some(first.clone()));
        assert_eq!(v2.take_mismatch(), Some(first));
        assert!(v.mismatch().is_none(), "take clears the shared slot");
    }
}
