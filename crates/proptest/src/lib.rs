//! Minimal, deterministic stand-in for the `proptest` crate so the workspace
//! builds and tests fully offline.
//!
//! Implements the subset the workspace tests use: range strategies over
//! integers and floats, tuple strategies, `prop::collection::vec`,
//! `prop_map`/`prop_flat_map`, `ProptestConfig::with_cases`, the `proptest!`
//! macro and the `prop_assert*` macros. Values are drawn from a splitmix64
//! stream seeded by the test name, so every run explores the same cases —
//! failures are reproducible by construction (no shrinking is needed for CI
//! determinism, and none is performed).

use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is meaningful here.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i64, i32, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Length specification for [`collection::vec`]: a fixed size, `lo..hi`, or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop`, e.g. `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{prop, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples every argument `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
        prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n..=n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn int_ranges_in_bounds(a in 1usize..7, b in 0u64..1000) {
            prop_assert!((1..7).contains(&a));
            prop_assert!(b < 1000);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_fixes_length(v in (3usize..9).prop_flat_map(arb_pair)) {
            prop_assert!((3..9).contains(&v.len()));
        }

        #[test]
        fn map_transforms(x in (0usize..4).prop_map(|x| x * 10)) {
            prop_assert_eq!(x % 10, 0);
            prop_assert!(x < 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("fixed");
        let mut b = crate::TestRng::from_name("fixed");
        let s = 0usize..100;
        for _ in 0..16 {
            assert_eq!(
                crate::Strategy::sample(&s, &mut a),
                crate::Strategy::sample(&s, &mut b)
            );
        }
    }
}
