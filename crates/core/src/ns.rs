//! The Navier–Stokes pseudo-spectral integrator (paper §2).
//!
//! Time advance happens entirely in Fourier space: each Runge–Kutta substage
//! transforms the velocity (and vorticity) to physical space, forms the
//! nonlinear term there, transforms back, projects it perpendicular to **k**
//! (mass conservation) and dealiases. Viscosity is treated *exactly* via the
//! integrating factor `exp(−νk²Δt)`; RK2 and RK4 are provided (the paper
//! reports RK2 timings, with RK4 roughly doubling the cost per step).
//!
//! The nonlinear term uses the rotational form `u × ω` with
//! `ω̂ = i k × û` computed spectrally — 6 inverse + 3 forward 3-D transforms
//! per substage, the same transform count as the paper's scheme.

use psdns_fft::{Complex, Real};
use psdns_trace::SpanKind;

use crate::field::{SpectralField, Transform3d};
use crate::forcing::Forcing;
use crate::integrity::{
    self, IntegrityAccumulator, IntegrityConfig, IntegrityError, IntegrityEvent,
};

/// Explicit Runge–Kutta scheme (paper §2: RK2 or RK4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TimeScheme {
    Rk2,
    Rk4,
}

/// Solver parameters.
#[derive(Clone, Debug)]
pub struct NsConfig {
    /// Kinematic viscosity ν.
    pub nu: f64,
    /// Time step Δt.
    pub dt: f64,
    pub scheme: TimeScheme,
    /// Optional low-wavenumber forcing for stationary turbulence.
    pub forcing: Option<Forcing>,
    /// Apply the spherical dealiasing truncation each substage.
    pub dealias: bool,
    /// Evaluate the nonlinear term on a half-cell-shifted grid (Rogallo's
    /// phase shifting, paper §2 \[17\]): removes the leading aliasing error
    /// of the products in combination with the `√2·N/3` truncation.
    pub phase_shift: bool,
}

impl Default for NsConfig {
    fn default() -> Self {
        Self {
            nu: 0.01,
            dt: 1e-2,
            scheme: TimeScheme::Rk2,
            forcing: None,
            dealias: true,
            phase_shift: false,
        }
    }
}

/// The distributed solver, generic over the transform backend (CPU slab,
/// synchronous GPU, asynchronous batched GPU).
pub struct NavierStokes<T: Real, B: Transform3d<T>> {
    pub backend: B,
    pub cfg: NsConfig,
    /// Velocity in Fourier space (z-slab layout), 3 components.
    pub u: [SpectralField<T>; 3],
    pub step_count: usize,
    pub time: f64,
    /// Integrity monitors driving [`Self::step_verified`] (default:
    /// disarmed — the plain `step` path pays nothing).
    integrity: IntegrityConfig,
    /// All-integer log of violations, retries and heals, appended by
    /// [`Self::step_verified`]. Byte-identical across same-seed reruns.
    pub integrity_events: Vec<IntegrityEvent>,
    /// Per-step invariant sums filled by [`Self::nonlinear`] while armed.
    acc: IntegrityAccumulator,
}

impl<T: Real, B: Transform3d<T>> NavierStokes<T, B> {
    pub fn new(backend: B, cfg: NsConfig, u: [SpectralField<T>; 3]) -> Self {
        let shape = backend.shape();
        for f in &u {
            assert_eq!(f.shape, shape, "velocity fields must match backend shape");
        }
        let mut solver = Self {
            backend,
            cfg,
            u,
            step_count: 0,
            time: 0.0,
            integrity: IntegrityConfig::default(),
            integrity_events: Vec::new(),
            acc: IntegrityAccumulator::default(),
        };
        // Make the initial condition admissible: solenoidal and dealiased.
        solver.project_and_dealias_state();
        if let Some(f) = solver.cfg.forcing.clone() {
            let mut forcing = f;
            forcing.prime(&solver.u, solver.backend.comm());
            solver.cfg.forcing = Some(forcing);
        }
        solver
    }

    /// The full nonlinear operator `N(û) = P_k[ F{u × ω} ]`, dealiased.
    /// Public so diagnostics (energy-transfer spectra) can evaluate it.
    pub fn nonlinear(&mut self, u: &[SpectralField<T>; 3]) -> [SpectralField<T>; 3] {
        let tracer = self.backend.tracer().cloned();
        let _span = tracer
            .as_ref()
            .map(|t| t.span(SpanKind::NonlinearTerm, "solver.nl", "nonlinear"));
        // Spectral vorticity ω̂ = i k × û (local, z-slab).
        let w = crate::ops::curl(u);
        // One batched transform of all 6 fields → one all-to-all, like the
        // paper's 3-variable transposes but for the rotational form.
        let mut fields: Vec<SpectralField<T>> = u.iter().chain(w.iter()).cloned().collect();
        if self.cfg.phase_shift {
            for f in fields.iter_mut() {
                apply_phase_shift(f, true);
            }
        }
        // Parseval bookkeeping for [`Self::step_verified`]: the transforms
        // are exact, so the energy entering each direction must come out the
        // other side. Both directions share one accumulator pair.
        let parseval = self.integrity.parseval_tol.is_some();
        if parseval {
            self.acc.spec_energy += integrity::spectral_energy_local(&fields);
        }
        let phys = self.backend.fourier_to_physical(&fields);
        if parseval {
            self.acc.phys_energy += integrity::physical_energy_local(&phys);
        }
        let (up, wp) = phys.split_at(3);

        // Cross product u × ω pointwise in physical space — on the device
        // for accelerator backends (see Transform3d::cross_product).
        let nl = self.backend.cross_product(up, wp);
        if self.integrity.cross_tol.is_some() {
            let r = integrity::cross_orthogonality_local(up, wp, &nl);
            self.acc.ortho_max = self.acc.ortho_max.max(r);
        }
        if parseval {
            self.acc.phys_energy += integrity::physical_energy_local(&nl);
        }
        let mut spec = self.backend.physical_to_fourier(&nl);
        if parseval {
            // Before extraction/projection — those drop energy legitimately.
            self.acc.spec_energy += integrity::spectral_energy_local(&spec);
        }
        let mut out: [SpectralField<T>; 3] = [spec.remove(0), spec.remove(0), spec.remove(0)];
        if self.cfg.phase_shift {
            for f in out.iter_mut() {
                apply_phase_shift(f, false);
            }
        }
        let proj = tracer
            .as_ref()
            .map(|t| t.span(SpanKind::Projection, "solver.proj", "project+dealias"));
        project_and_dealias(&mut out, self.cfg.dealias);
        drop(proj);
        out
    }

    /// CFL-limited time step: `dt = cfl·Δx / max|u_i|`, reduced globally.
    /// Costs one 3-variable transform (one all-to-all), like any physical-
    /// space operation in this code.
    pub fn suggest_dt(&mut self, cfl: f64) -> f64 {
        let s = self.backend.shape();
        let phys = self.backend.fourier_to_physical(&self.u.clone());
        let mut umax = 0.0f64;
        for f in &phys {
            for &v in &f.data {
                umax = umax.max(v.to_f64().abs());
            }
        }
        let umax = self.backend.comm().allreduce(umax, f64::max);
        let dx = 2.0 * std::f64::consts::PI / s.n as f64;
        if umax > 0.0 {
            cfl * dx / umax
        } else {
            f64::INFINITY
        }
    }

    fn project_and_dealias_state(&mut self) {
        project_and_dealias(&mut self.u, self.cfg.dealias);
    }

    /// Integrating factor `exp(−νk²·h)` applied to a field triple.
    fn apply_if(&self, f: &mut [SpectralField<T>; 3], h: f64) {
        let s = self.backend.shape();
        let grid = s.grid();
        let nu = self.cfg.nu;
        for zl in 0..s.mz {
            let z = s.z_global(zl);
            for y in 0..s.n {
                for x in 0..s.nxh {
                    let k2 = grid.k_sqr(x, y, z);
                    let e = T::from_f64((-nu * k2 * h).exp());
                    let i = s.spec_idx(x, y, zl);
                    for c in f.iter_mut() {
                        c.data[i] = c.data[i].scale(e);
                    }
                }
            }
        }
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        let _span = self.backend.tracer().map(|t| {
            t.span(
                SpanKind::Step,
                "solver",
                &format!("step[{}]", self.step_count),
            )
        });
        match self.cfg.scheme {
            TimeScheme::Rk2 => self.step_rk2(),
            TimeScheme::Rk4 => self.step_rk4(),
        }
        if let Some(mut f) = self.cfg.forcing.take() {
            f.apply(&mut self.u, self.backend.comm());
            self.cfg.forcing = Some(f);
        }
        self.step_count += 1;
        self.time += self.cfg.dt;
    }

    /// Arm (or disarm) the integrity monitors used by
    /// [`Self::step_verified`]. Also arms the backend's fused non-finite
    /// staging scan when the config asks for it.
    pub fn set_integrity(&mut self, cfg: IntegrityConfig) {
        self.backend.set_scan_nonfinite(cfg.scan_nonfinite);
        self.integrity = cfg;
    }

    /// The active integrity configuration.
    pub fn integrity(&self) -> &IntegrityConfig {
        &self.integrity
    }

    /// Advance one time step under the integrity monitors: detect a silent
    /// corruption of this step (NaN/Inf, Parseval imbalance, kernel
    /// orthogonality, divergence), localize it to the step, and recover by
    /// re-running the step from the in-memory pre-step state. A transient
    /// fault (an SEU does not repeat) re-executes cleanly and the healed
    /// trajectory is byte-identical to a fault-free run; a persistent fault
    /// exhausts [`IntegrityConfig::max_step_retries`] and surfaces as a
    /// typed [`IntegrityError::RetriesExhausted`] on *every* rank — the
    /// verdict comes from globally reduced sums, so the reduction is the
    /// agreement round and no rank can diverge from the others.
    ///
    /// With the monitors disarmed this is exactly [`Self::step`].
    pub fn step_verified(&mut self) -> Result<(), IntegrityError> {
        if !self.integrity.enabled() {
            self.step();
            return Ok(());
        }
        let snap = (self.u.clone(), self.time, self.cfg.forcing.clone());
        let from_step = self.step_count;
        let mut attempt: u32 = 0;
        loop {
            self.acc = IntegrityAccumulator::default();
            // Discard staging-scan counts from unverified activity (e.g.
            // diagnostics between steps) so they cannot taint this step.
            let _ = self.backend.take_nonfinite();
            self.step();
            match self.check_step() {
                Ok(()) => {
                    if attempt > 0 {
                        self.integrity_events.push(IntegrityEvent::Healed {
                            step: from_step,
                            attempts: attempt,
                        });
                    }
                    return Ok(());
                }
                Err(e) => {
                    self.integrity_events.push(IntegrityEvent::Violation {
                        step: from_step,
                        attempt,
                        check: e.check(),
                    });
                    if attempt >= self.integrity.max_step_retries {
                        // Leave the solver on the pre-step state (not the
                        // corrupted post-step one) so callers escalating to
                        // checkpoint rollback start from something sane.
                        let (u, time, forcing) = snap;
                        self.u = u;
                        self.time = time;
                        self.step_count = from_step;
                        self.cfg.forcing = forcing;
                        return Err(IntegrityError::RetriesExhausted {
                            step: from_step,
                            attempts: attempt + 1,
                            last: e.check(),
                        });
                    }
                    attempt += 1;
                    self.integrity_events.push(IntegrityEvent::Retry {
                        step: from_step,
                        attempt,
                    });
                    let (u, time, forcing) = snap.clone();
                    self.u = u;
                    self.time = time;
                    self.step_count = from_step;
                    self.cfg.forcing = forcing;
                }
            }
        }
    }

    /// Evaluate every armed monitor against the step that just ran. Two
    /// global reductions; all inputs to the verdict are globally agreed
    /// values, so every rank returns the same result.
    fn check_step(&mut self) -> Result<(), IntegrityError> {
        let cfg = self.integrity.clone();
        let mut nf_local = self.backend.take_nonfinite();
        if cfg.scan_nonfinite {
            nf_local += integrity::count_nonfinite_spec(&self.u);
        }
        let (div_num, div_den) = if cfg.divergence_tol.is_some() {
            integrity::divergence_sums_local(&self.u)
        } else {
            (0.0, 0.0)
        };
        let sums = self.backend.comm().allreduce_vec(
            &[
                self.acc.spec_energy,
                self.acc.phys_energy,
                div_num,
                div_den,
                nf_local as f64,
            ],
            |a, b| a + b,
        );
        let ortho = if cfg.cross_tol.is_some() {
            self.backend.comm().allreduce(self.acc.ortho_max, f64::max)
        } else {
            0.0
        };
        // Non-finite first: its count stays a finite integer even when the
        // state is NaN and every residual below is meaningless.
        if sums[4] > 0.0 {
            return Err(IntegrityError::NonFinite {
                count: sums[4] as u64,
            });
        }
        let fails = |resid: f64, tol: f64| !resid.is_finite() || resid > tol;
        if let Some(tol) = cfg.parseval_tol {
            let resid = (sums[0] - sums[1]).abs() / sums[0].abs().max(1e-30);
            if fails(resid, tol) {
                return Err(IntegrityError::Parseval {
                    residual_bits: resid.to_bits(),
                    tol_bits: tol.to_bits(),
                });
            }
        }
        if let Some(tol) = cfg.cross_tol {
            if fails(ortho, tol) {
                return Err(IntegrityError::CrossOrthogonality {
                    residual_bits: ortho.to_bits(),
                    tol_bits: tol.to_bits(),
                });
            }
        }
        if let Some(tol) = cfg.divergence_tol {
            let resid = if sums[3] > 0.0 {
                (sums[2] / sums[3]).sqrt()
            } else {
                0.0
            };
            if fails(resid, tol) {
                return Err(IntegrityError::Divergence {
                    residual_bits: resid.to_bits(),
                    tol_bits: tol.to_bits(),
                });
            }
        }
        Ok(())
    }

    /// Heun RK2 with exact viscous integrating factor:
    /// `v = E·(û + Δt·N(û))`, `û⁺ = E·û + Δt/2·(E·N(û) + N(v))`.
    fn step_rk2(&mut self) {
        let dt = self.cfg.dt;
        let u0 = self.u.clone();
        let n1 = self.nonlinear(&u0);
        // Predictor: full Euler step under the integrating factor.
        let mut v = u0.clone();
        axpy(&mut v, &n1, dt);
        self.apply_if(&mut v, dt);
        let n2 = self.nonlinear(&v);
        // Corrector: û⁺ = E·û + Δt/2·(E·N₁ + N₂).
        let mut unew = u0;
        self.apply_if(&mut unew, dt);
        let mut en1 = n1;
        self.apply_if(&mut en1, dt);
        axpy(&mut unew, &en1, dt / 2.0);
        axpy(&mut unew, &n2, dt / 2.0);
        self.u = unew;
    }

    /// Classical RK4 with integrating factor at half/full steps.
    fn step_rk4(&mut self) {
        let dt = self.cfg.dt;
        let u0 = self.u.clone();

        let k1 = self.nonlinear(&u0);

        let mut s2 = u0.clone();
        axpy(&mut s2, &k1, dt / 2.0);
        self.apply_if(&mut s2, dt / 2.0);
        let k2 = self.nonlinear(&s2);

        let mut s3 = u0.clone();
        self.apply_if(&mut s3, dt / 2.0);
        axpy(&mut s3, &k2, dt / 2.0);
        let k3 = self.nonlinear(&s3);

        let mut s4 = u0.clone();
        self.apply_if(&mut s4, dt / 2.0);
        let mut k3e = k3.clone();
        // k3 enters at the half step; bring both to the full step.
        axpy(&mut s4, &k3e, dt);
        self.apply_if(&mut s4, dt / 2.0);
        let k4 = self.nonlinear(&s4);

        // û⁺ = E·u0 + dt/6·(E·k1 + 2·Eh·k2 + 2·Eh·k3 + k4)
        let mut acc = u0.clone();
        self.apply_if(&mut acc, dt); // E·u0
        let mut k1e = k1;
        self.apply_if(&mut k1e, dt);
        axpy(&mut acc, &k1e, dt / 6.0);
        let mut k2e = k2;
        self.apply_if(&mut k2e, dt / 2.0);
        axpy(&mut acc, &k2e, dt / 3.0);
        self.apply_if(&mut k3e, dt / 2.0);
        axpy(&mut acc, &k3e, dt / 3.0);
        axpy(&mut acc, &k4, dt / 6.0);
        self.u = acc;
    }
}

/// Multiply a spectral field by `exp(±i·(kx+ky+kz)·Δx/2)` — evaluate on a
/// grid shifted by half a cell in each direction (Rogallo 1981). `forward`
/// applies the shift, `!forward` removes it.
pub fn apply_phase_shift<T: Real>(f: &mut SpectralField<T>, forward: bool) {
    let s = f.shape;
    let grid = s.grid();
    let half_dx = std::f64::consts::PI / s.n as f64; // Δx/2 with Δx = 2π/N
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let theta = (kx + ky + kz) * half_dx * if forward { 1.0 } else { -1.0 };
                let i = s.spec_idx(x, y, zl);
                f.data[i] *= Complex::from_f64(theta.cos(), theta.sin());
            }
        }
    }
}

/// `y ← y + a·x` over field triples.
fn axpy<T: Real>(y: &mut [SpectralField<T>; 3], x: &[SpectralField<T>; 3], a: f64) {
    let a = T::from_f64(a);
    for (yc, xc) in y.iter_mut().zip(x.iter()) {
        for (yv, xv) in yc.data.iter_mut().zip(xc.data.iter()) {
            *yv += xv.scale(a);
        }
    }
}

/// Project a spectral vector field perpendicular to **k** (incompressibility)
/// and optionally apply the dealiasing truncation. The k = 0 mode (mean
/// flow) is preserved by projection and zeroed by nonlinear-term callers via
/// its own k·N(0) = 0 structure.
pub fn project_and_dealias<T: Real>(f: &mut [SpectralField<T>; 3], dealias: bool) {
    let s = f[0].shape;
    let grid = s.grid();
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let i = s.spec_idx(x, y, zl);
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let k2 = kx * kx + ky * ky + kz * kz;
                if k2 > 0.0 {
                    let (a, b, c) = (f[0].data[i], f[1].data[i], f[2].data[i]);
                    let kdotf = a.scale(T::from_f64(kx))
                        + b.scale(T::from_f64(ky))
                        + c.scale(T::from_f64(kz));
                    let scale = kdotf.scale(T::from_f64(1.0 / k2));
                    f[0].data[i] = a - scale.scale(T::from_f64(kx));
                    f[1].data[i] = b - scale.scale(T::from_f64(ky));
                    f[2].data[i] = c - scale.scale(T::from_f64(kz));
                }
                if dealias && !grid.keep(x, y, z) {
                    f[0].data[i] = Complex::zero();
                    f[1].data[i] = Complex::zero();
                    f[2].data[i] = Complex::zero();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_fft::SlabFftCpu;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use crate::stats::flow_stats;
    use psdns_comm::Universe;

    fn tg_solver(
        n: usize,
        p: usize,
        comm: psdns_comm::Communicator,
        nu: f64,
        dt: f64,
        scheme: TimeScheme,
    ) -> NavierStokes<f64, SlabFftCpu<f64>> {
        let shape = LocalShape::new(n, p, comm.rank());
        let backend = SlabFftCpu::new(shape, comm);
        let u = taylor_green(shape);
        NavierStokes::new(
            backend,
            NsConfig {
                nu,
                dt,
                scheme,
                forcing: None,
                dealias: true,
                phase_shift: false,
            },
            u,
        )
    }

    /// With ν = 0 (Euler) the rotational form conserves kinetic energy; the
    /// time discretization error is O(dt²) per unit time for RK2.
    #[test]
    fn euler_conserves_energy() {
        let out = Universe::run(2, |comm| {
            let mut ns = tg_solver(16, 2, comm, 0.0, 2e-3, TimeScheme::Rk4);
            let e0 = flow_stats(&ns.u, 0.0, ns.backend.comm()).energy;
            for _ in 0..10 {
                ns.step();
            }
            let e1 = flow_stats(&ns.u, 0.0, ns.backend.comm()).energy;
            (e0, e1)
        });
        for (e0, e1) in out {
            assert!(e0 > 1e-6, "initial energy must be nonzero");
            assert!(
                ((e1 - e0) / e0).abs() < 1e-6,
                "energy drift {} vs {}",
                e1,
                e0
            );
        }
    }

    /// High-viscosity limit: the nonlinear term is negligible and each mode
    /// decays like exp(−νk²t); Taylor–Green has |k|² = 3.
    #[test]
    fn viscous_decay_matches_analytic() {
        let out = Universe::run(2, |comm| {
            let nu = 0.5;
            let dt = 1e-3;
            let steps = 100;
            let mut ns = tg_solver(16, 2, comm, nu, dt, TimeScheme::Rk2);
            // Kill the nonlinear term by scaling velocity tiny: linear decay
            // dominates and is exact under the integrating factor.
            for c in ns.u.iter_mut() {
                for v in c.data.iter_mut() {
                    *v = v.scale(1e-8);
                }
            }
            let e0 = flow_stats(&ns.u, nu, ns.backend.comm()).energy;
            for _ in 0..steps {
                ns.step();
            }
            let e1 = flow_stats(&ns.u, nu, ns.backend.comm()).energy;
            let t = dt * steps as f64;
            let expect = e0 * (-2.0 * nu * 3.0 * t).exp(); // k² = 3 for TG
            (e1, expect)
        });
        for (e1, expect) in out {
            assert!(
                ((e1 - expect) / expect).abs() < 1e-6,
                "decay {} vs analytic {}",
                e1,
                expect
            );
        }
    }

    /// The velocity field must remain solenoidal through time stepping.
    #[test]
    fn divergence_free_is_maintained() {
        let out = Universe::run(2, |comm| {
            let mut ns = tg_solver(12, 2, comm, 0.02, 5e-3, TimeScheme::Rk2);
            for _ in 0..5 {
                ns.step();
            }
            flow_stats(&ns.u, 0.02, ns.backend.comm()).max_divergence
        });
        for d in out {
            assert!(d < 1e-8, "divergence {d}");
        }
    }

    /// Phase-shifted evaluation must agree with plain truncation on a
    /// well-resolved flow (they differ only in aliasing error) and must not
    /// break conservation.
    #[test]
    fn phase_shift_agrees_on_resolved_flow() {
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(16, 2, comm.rank());
            let mk = |shift: bool, comm: &psdns_comm::Communicator| {
                NavierStokes::new(
                    SlabFftCpu::<f64>::new(shape, comm.clone()),
                    NsConfig {
                        nu: 0.05,
                        dt: 2e-3,
                        scheme: TimeScheme::Rk2,
                        forcing: None,
                        dealias: true,
                        phase_shift: shift,
                    },
                    taylor_green(shape),
                )
            };
            let mut plain = mk(false, &comm);
            let mut shifted = mk(true, &comm);
            for _ in 0..10 {
                plain.step();
                shifted.step();
            }
            let ep = flow_stats(&plain.u, 0.05, plain.backend.comm()).energy;
            let es = flow_stats(&shifted.u, 0.05, shifted.backend.comm()).energy;
            let div = flow_stats(&shifted.u, 0.05, shifted.backend.comm()).max_divergence;
            (ep, es, div)
        });
        for (ep, es, div) in out {
            assert!(
                ((ep - es) / ep).abs() < 1e-4,
                "phase shift changed physics: {ep} vs {es}"
            );
            assert!(div < 1e-10, "phase shift broke solenoidality: {div}");
        }
    }

    /// The shift operator must be an exact involution (apply → remove).
    #[test]
    fn phase_shift_roundtrip_is_identity() {
        let shape = LocalShape::new(12, 1, 0);
        let u = taylor_green::<f64>(shape);
        let mut f = u[0].clone();
        apply_phase_shift(&mut f, true);
        apply_phase_shift(&mut f, false);
        for (a, b) in f.data.iter().zip(&u[0].data) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    /// suggest_dt scales like Δx/|u|: doubling the velocity halves dt.
    #[test]
    fn cfl_dt_scales_with_velocity() {
        let out = Universe::run(2, |comm| {
            let mut ns = tg_solver(16, 2, comm, 0.01, 1e-3, TimeScheme::Rk2);
            let dt1 = ns.suggest_dt(0.5);
            for c in ns.u.iter_mut() {
                for v in c.data.iter_mut() {
                    *v = v.scale(2.0);
                }
            }
            let dt2 = ns.suggest_dt(0.5);
            (dt1, dt2)
        });
        for (dt1, dt2) in out {
            assert!(dt1.is_finite() && dt1 > 0.0);
            assert!((dt1 / dt2 - 2.0).abs() < 1e-6, "{dt1} vs {dt2}");
        }
    }

    /// RK4 at the same dt must be closer to a fine-dt reference than RK2.
    #[test]
    fn rk4_more_accurate_than_rk2() {
        let energies = Universe::run(1, |comm| {
            let t_final = 0.2;
            let run = |scheme, dt: f64, comm: &psdns_comm::Communicator| {
                let mut ns = tg_solver(12, 1, comm.clone(), 0.05, dt, scheme);
                let steps = (t_final / dt).round() as usize;
                for _ in 0..steps {
                    ns.step();
                }
                flow_stats(&ns.u, 0.05, ns.backend.comm()).energy
            };
            let reference = run(TimeScheme::Rk4, 1e-3, &comm);
            let rk2 = run(TimeScheme::Rk2, 2e-2, &comm);
            let rk4 = run(TimeScheme::Rk4, 2e-2, &comm);
            (reference, rk2, rk4)
        });
        let (reference, rk2, rk4) = energies[0];
        let err2 = (rk2 - reference).abs();
        let err4 = (rk4 - reference).abs();
        assert!(
            err4 < err2,
            "RK4 error {err4} not smaller than RK2 error {err2}"
        );
    }
}
