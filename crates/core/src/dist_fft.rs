//! Distributed 3-D FFT on the 1-D slab decomposition — host (CPU) path.
//!
//! Fourier → physical (paper Fig. 2 order): inverse c2c in y on the z-slab,
//! one global transpose (all-to-all), inverse c2c in z, inverse c2r in x.
//! Physical → Fourier runs the mirror image. One all-to-all moves all `nv`
//! variables of the call (the paper transposes 3 velocity components per
//! collective, §4.1).
//!
//! [`SlabFftCpu`] is the *reference* implementation the equivalence tests
//! pin the pipeline against. It is no longer the degraded-path executor:
//! since the `DeviceBackend` redesign, [`crate::GpuSlabFft`]'s
//! `cpu_fallback` mode re-runs its own certified schedule on a
//! `psdns_device::HostBackend` device instead of switching algorithms.

use psdns_comm::Communicator;
use psdns_domain::transpose::{apply_chunks, SlabTranspose};
use psdns_fft::{Complex, Direction, ManyPlan, ManyRealPlan, Real};
use psdns_trace::SpanKind;

use crate::field::{LocalShape, PhysicalField, SpectralField, Transform3d};

/// Host implementation of the slab transform. Holds FFT plans and scratch so
/// repeated calls allocate only the send/receive buffers.
pub struct SlabFftCpu<T: Real> {
    shape: LocalShape,
    comm: Communicator,
    plan_y: ManyPlan<T>,
    plan_z: ManyPlan<T>,
    /// Batched x-direction r2c/c2r over every line of the y-slab at once:
    /// `my·n` dense real lines of length `n` against `my·n` dense
    /// half-spectrum lines of length `nxh`.
    plan_x: ManyRealPlan<T>,
    scratch: Vec<Complex<T>>,
    /// Reusable per-call workspaces (sized on first use, then steady-state
    /// reuse: repeated transforms perform no send/slab allocations).
    send: Vec<Complex<T>>,
    yslab: Vec<Complex<T>>,
    /// Within-rank worker threads for the batched 1-D FFTs — the paper's
    /// hybrid MPI+OpenMP layer (§3.1: "a hybrid approach to further
    /// parallelize within a slab").
    threads: usize,
    /// Fused non-finite staging scan (see
    /// [`Transform3d::set_scan_nonfinite`]): when armed, each packed send
    /// buffer is scanned right before its all-to-all, so corruption is
    /// counted at the rank that produced it rather than after it has fanned
    /// out across the decomposition.
    scan_nonfinite: bool,
    nonfinite_count: u64,
}

impl<T: Real> SlabFftCpu<T> {
    pub fn new(shape: LocalShape, comm: Communicator) -> Self {
        assert_eq!(comm.size(), shape.p, "communicator size != decomposition");
        assert_eq!(comm.rank(), shape.rank);
        let LocalShape { n, nxh, my, .. } = shape;
        // y lines on the z-slab: stride nxh, one batch per x, per z-plane.
        let plan_y = ManyPlan::new(n, nxh, 1, nxh);
        // z lines on the y-slab: stride nxh·my, one batch per (x, yl).
        let plan_z = ManyPlan::new(n, nxh * my, 1, nxh * my);
        // x lines: real side dense in the physical field (dist n), complex
        // side dense in the y-slab (dist nxh) — one batch per (yl, z).
        let plan_x = ManyRealPlan::new(n, my * n, 1, n, 1, nxh);
        let scratch_len = plan_y
            .scratch_len()
            .max(plan_z.scratch_len())
            .max(plan_x.scratch_len());
        Self {
            shape,
            comm,
            plan_y,
            plan_z,
            plan_x,
            scratch: vec![Complex::zero(); scratch_len],
            send: Vec::new(),
            yslab: Vec::new(),
            threads: 1,
            scan_nonfinite: false,
            nonfinite_count: 0,
        }
    }

    /// Seeded corruption injection plus (when armed) the fused non-finite
    /// scan, applied to a packed send buffer on its way into an all-to-all.
    fn stage_send(&mut self, class: &str, send: &mut [Complex<T>]) {
        crate::integrity::inject_buf_flip(&self.comm, class, send);
        if self.scan_nonfinite {
            self.nonfinite_count += crate::integrity::count_nonfinite_buf(send);
        }
    }

    /// Enable hybrid within-rank threading: the batched y/z transforms run
    /// on `threads` scoped worker threads (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    fn transpose_map(&self, nv: usize) -> SlabTranspose {
        SlabTranspose::new(self.shape.slab(), self.shape.nxh, nv)
    }

    /// In-place inverse y transform over the whole z-slab buffer.
    fn y_transform(&mut self, buf: &mut [Complex<T>], dir: Direction) {
        let plane = self.shape.nxh * self.shape.n;
        for zl in 0..self.shape.mz {
            let slice = &mut buf[zl * plane..(zl + 1) * plane];
            if self.threads > 1 {
                self.plan_y.execute_parallel(slice, dir, self.threads);
            } else {
                self.plan_y
                    .execute_with_scratch(slice, &mut self.scratch, dir);
            }
        }
    }

    /// In-place z transform over the whole y-slab buffer.
    fn z_transform(&mut self, buf: &mut [Complex<T>], dir: Direction) {
        if self.threads > 1 {
            self.plan_z.execute_parallel(buf, dir, self.threads);
        } else {
            self.plan_z
                .execute_with_scratch(buf, &mut self.scratch, dir);
        }
    }
}

impl<T: Real> Transform3d<T> for SlabFftCpu<T> {
    fn shape(&self) -> LocalShape {
        self.shape
    }

    fn comm(&self) -> &Communicator {
        &self.comm
    }

    fn set_scan_nonfinite(&mut self, on: bool) {
        self.scan_nonfinite = on;
    }

    fn take_nonfinite(&mut self) -> u64 {
        std::mem::take(&mut self.nonfinite_count)
    }

    fn fourier_to_physical(&mut self, specs: &[SpectralField<T>]) -> Vec<PhysicalField<T>> {
        let nv = specs.len();
        assert!(nv > 0);
        let s = self.shape;
        let t = self.transpose_map(nv);
        let tracer = self.comm.tracer().cloned();

        // 1. y-inverse on a working copy of each z-slab.
        let span = tracer
            .as_ref()
            .map(|tr| tr.span(SpanKind::FftCompute, "cpu", "fft-y-inverse"));
        let mut work: Vec<Vec<Complex<T>>> = specs
            .iter()
            .map(|f| {
                assert_eq!(f.shape, s, "field shape mismatch");
                f.data.clone()
            })
            .collect();
        for w in &mut work {
            self.y_transform(w, Direction::Inverse);
        }
        drop(span);

        // 2. Pack and transpose (one all-to-all for all nv variables).
        let span = tracer
            .as_ref()
            .map(|tr| tr.span(SpanKind::PackUnpack, "cpu", "pack-zslab"));
        let mut send = std::mem::take(&mut self.send);
        send.clear();
        send.resize(t.buf_len(), Complex::zero());
        for d in 0..s.p {
            for (v, w) in work.iter().enumerate() {
                apply_chunks(&t.pack_from_zslab(d, v, 0..s.nxh), w, &mut send);
            }
        }
        drop(span);
        self.stage_send("z2y", &mut send);
        let recv = self.comm.alltoall(&send);
        self.send = send; // park for reuse

        // 3. Unpack to y-slabs, z-inverse, then x complex-to-real.
        let span = tracer
            .as_ref()
            .map(|tr| tr.span(SpanKind::FftCompute, "cpu", "fft-z-inverse+x-c2r"));
        let mut out = Vec::with_capacity(nv);
        let mut yslab = std::mem::take(&mut self.yslab);
        yslab.clear();
        yslab.resize(t.yslab_len(), Complex::zero());
        for v in 0..nv {
            for src in 0..s.p {
                apply_chunks(&t.unpack_to_yslab(src, v, 0..s.my), &recv, &mut yslab);
            }
            self.z_transform(&mut yslab, Direction::Inverse);
            let mut phys = PhysicalField::zeros(s);
            // Batched x c2r: every (yl, z) line of the slab in one call,
            // written in place into the physical field.
            if self.threads > 1 {
                self.plan_x
                    .inverse_parallel(&yslab, &mut phys.data, self.threads);
            } else {
                self.plan_x
                    .inverse_with_scratch(&yslab, &mut phys.data, &mut self.scratch);
            }
            out.push(phys);
        }
        self.yslab = yslab;
        drop(span);
        out
    }

    fn physical_to_fourier(&mut self, phys: &[PhysicalField<T>]) -> Vec<SpectralField<T>> {
        let nv = phys.len();
        assert!(nv > 0);
        let s = self.shape;
        let t = self.transpose_map(nv);
        let tracer = self.comm.tracer().cloned();

        // 1. x real-to-complex and z-forward per variable; pack as we go.
        let span = tracer
            .as_ref()
            .map(|tr| tr.span(SpanKind::FftCompute, "cpu", "fft-x-r2c+z-forward"));
        let mut send = std::mem::take(&mut self.send);
        send.clear();
        send.resize(t.buf_len(), Complex::zero());
        let mut yslab = std::mem::take(&mut self.yslab);
        yslab.clear();
        yslab.resize(t.yslab_len(), Complex::zero());
        for (v, f) in phys.iter().enumerate() {
            assert_eq!(f.shape, s, "field shape mismatch");
            // Batched x r2c: the whole physical slab into the y-slab's
            // half-spectrum lines in one call.
            if self.threads > 1 {
                self.plan_x
                    .forward_parallel(&f.data, &mut yslab, self.threads);
            } else {
                self.plan_x
                    .forward_with_scratch(&f.data, &mut yslab, &mut self.scratch);
            }
            self.z_transform(&mut yslab, Direction::Forward);
            for d in 0..s.p {
                apply_chunks(&t.pack_from_yslab(d, v, 0..s.my), &yslab, &mut send);
            }
        }

        drop(span);

        // 2. Transpose back.
        self.stage_send("y2z", &mut send);
        let recv = self.comm.alltoall(&send);
        self.send = send;
        self.yslab = yslab;

        // 3. Unpack to z-slabs and y-forward.
        let span = tracer
            .as_ref()
            .map(|tr| tr.span(SpanKind::FftCompute, "cpu", "unpack+fft-y-forward"));
        let mut out = Vec::with_capacity(nv);
        for v in 0..nv {
            let mut zslab = vec![Complex::<T>::zero(); t.zslab_len()];
            for src in 0..s.p {
                apply_chunks(&t.unpack_to_zslab(src, v, 0..s.nxh), &recv, &mut zslab);
            }
            self.y_transform(&mut zslab, Direction::Forward);
            out.push(SpectralField::from_data(s, zslab));
        }
        drop(span);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdns_comm::Universe;
    use psdns_fft::{fft_3d, Complex64, Dims3};

    /// Gathered distributed inverse transform must equal the serial one.
    #[test]
    fn matches_serial_fft3d() {
        let n = 8;
        let p = 4;
        // Global spectral field with conjugate symmetry (so physical space
        // is real): build from a real field by serial forward transform.
        let dims = Dims3::cube(n);
        let real_field: Vec<f64> = (0..dims.len())
            .map(|i| ((i as f64) * 0.17).sin() + ((i as f64) * 0.045).cos())
            .collect();
        let mut full_spec: Vec<Complex64> =
            real_field.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        fft_3d(&mut full_spec, dims, Direction::Forward);

        let physical = Universe::run(p, |comm| {
            let shape = LocalShape::new(n, p, comm.rank());
            let mut fft = SlabFftCpu::<f64>::new(shape, comm);
            // Extract this rank's half-spectrum z-slab.
            let mut spec = SpectralField::zeros(shape);
            for zl in 0..shape.mz {
                let z = shape.z_global(zl);
                for y in 0..n {
                    for x in 0..shape.nxh {
                        *spec.at_mut(x, y, zl) = full_spec[dims.idx(x, y, z)];
                    }
                }
            }
            let phys = fft.fourier_to_physical(std::slice::from_ref(&spec));
            phys.into_iter().next().unwrap()
        });

        // Reassemble the physical field from y-slabs and compare.
        for (rank, slab) in physical.iter().enumerate() {
            let shape = LocalShape::new(n, p, rank);
            for z in 0..n {
                for yl in 0..shape.my {
                    let y = rank * shape.my + yl;
                    for x in 0..n {
                        let got = slab.at(x, yl, z);
                        let expect = real_field[dims.idx(x, y, z)];
                        assert!(
                            (got - expect).abs() < 1e-9,
                            "rank {rank} ({x},{y},{z}): {got} vs {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_threaded_matches_serial() {
        // The paper's MPI+OpenMP hybrid: same answer with fewer ranks and
        // more threads per rank.
        let n = 12;
        let p = 2;
        let out = Universe::run(p, move |comm| {
            let shape = LocalShape::new(n, p, comm.rank());
            let mut serial = SlabFftCpu::<f64>::new(shape, comm.clone());
            let mut hybrid = SlabFftCpu::<f64>::new(shape, comm).with_threads(4);
            let phys: Vec<PhysicalField<f64>> = (0..2)
                .map(|v| {
                    let data = (0..shape.phys_len())
                        .map(|i| ((i + v * 19) as f64 * 0.021).sin())
                        .collect();
                    PhysicalField::from_data(shape, data)
                })
                .collect();
            let a = serial.physical_to_fourier(&phys);
            let b = hybrid.physical_to_fourier(&phys);
            let mut err = 0.0f64;
            for (x, y) in a.iter().zip(&b) {
                for (u, v) in x.data.iter().zip(&y.data) {
                    err = err.max((*u - *v).abs());
                }
            }
            err
        });
        for e in out {
            assert!(e < 1e-12, "hybrid differs from serial: {e}");
        }
    }

    #[test]
    fn roundtrip_identity_multi_variable() {
        let n = 12;
        let p = 3;
        let nv = 3;
        let max_err = Universe::run(p, move |comm| {
            let shape = LocalShape::new(n, p, comm.rank());
            let mut fft = SlabFftCpu::<f64>::new(shape, comm);
            // Random-ish physical fields, distinct per rank and variable.
            let phys: Vec<PhysicalField<f64>> = (0..nv)
                .map(|v| {
                    let data: Vec<f64> = (0..shape.phys_len())
                        .map(|i| ((i + v * 37 + shape.rank * 101) as f64 * 0.013).sin())
                        .collect();
                    PhysicalField::from_data(shape, data)
                })
                .collect();
            let specs = fft.physical_to_fourier(&phys);
            let back = fft.fourier_to_physical(&specs);
            let mut err = 0.0f64;
            for (a, b) in back.iter().zip(&phys) {
                for (x, y) in a.data.iter().zip(&b.data) {
                    err = err.max((x - y).abs());
                }
            }
            err
        });
        for e in max_err {
            assert!(e < 1e-9, "roundtrip error {e}");
        }
    }

    #[test]
    fn single_mode_becomes_plane_wave() {
        // û at (kx,ky,kz) = (1,2,-1) (stored value N³/2 so the physical
        // amplitude is cos-like of unit size under our convention).
        let n = 8;
        let p = 2;
        let out = Universe::run(p, |comm| {
            let shape = LocalShape::new(n, p, comm.rank());
            let rank = comm.rank();
            let mut fft = SlabFftCpu::<f64>::new(shape, comm);
            let mut spec = SpectralField::zeros(shape);
            let (kx, ky, kz) = (1usize, 2usize, n - 1); // kz index for -1
            let owner = kz / shape.mz;
            if rank == owner {
                *spec.at_mut(kx, ky, kz - owner * shape.mz) =
                    Complex64::new((n * n * n) as f64 / 2.0, 0.0);
            }
            fft.fourier_to_physical(std::slice::from_ref(&spec))
                .remove(0)
        });
        for (rank, slab) in out.iter().enumerate() {
            let shape = LocalShape::new(n, p, rank);
            for z in 0..n {
                for yl in 0..shape.my {
                    let y = rank * shape.my + yl;
                    for x in 0..n {
                        let phase = 2.0 * std::f64::consts::PI / n as f64
                            * (x as f64 + 2.0 * y as f64 - z as f64);
                        // cos because conjugate symmetry supplies the -k mode
                        let expect = phase.cos();
                        let got = slab.at(x, yl, z);
                        assert!(
                            (got - expect).abs() < 1e-9,
                            "({x},{y},{z}): {got} vs {expect}"
                        );
                    }
                }
            }
        }
    }
}
