//! Global flow statistics (reduced across ranks).
//!
//! Corruption-aware: a NaN/Inf mode would classically poison every moment
//! and print as a wall of `NaN` — here non-finite contributions are skipped
//! and *counted*, the count rides the same global reduction as the sums
//! (keeping every rank's collective sequence identical), and callers choose
//! between the `try_` variants (typed [`IntegrityError::NonFinite`]) and
//! the plain ones (best-effort stats over the finite modes, with a traced
//! warning span and fault count).

use psdns_comm::Communicator;
use psdns_fft::Real;

use crate::field::SpectralField;
use crate::integrity::IntegrityError;

/// Bulk statistics of a velocity field, in mathematical units
/// (`E = ½⟨|u|²⟩` over the 2π-periodic box).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FlowStats {
    /// Kinetic energy `½⟨|u|²⟩`.
    pub energy: f64,
    /// Enstrophy `½⟨|ω|²⟩ = Σ k²E(k)`.
    pub enstrophy: f64,
    /// Dissipation rate `ε = 2ν·Σ k²E(k)`.
    pub dissipation: f64,
    /// Energy-weighted relative divergence,
    /// `√(Σ w|k·û|² / Σ w k²|û|²)` — solenoidality check (≈ 0).
    pub max_divergence: f64,
    /// rms of one velocity component, `u' = √(2E/3)`.
    pub u_rms: f64,
    /// Taylor-scale Reynolds number given ν (0 when ν = 0).
    pub re_lambda: f64,
}

/// Compute [`FlowStats`] for a spectral velocity triple, tolerating
/// corrupted modes: non-finite contributions are skipped (the returned
/// stats cover the finite modes only) and reported through a traced
/// warning span plus the tracer's fault counter. Use [`try_flow_stats`] to
/// get a typed error instead.
pub fn flow_stats<T: Real>(u: &[SpectralField<T>; 3], nu: f64, comm: &Communicator) -> FlowStats {
    let (stats, nf) = flow_stats_impl(u, nu, comm);
    if nf > 0 {
        if let Some(t) = comm.tracer() {
            t.incr_faults();
            t.span(
                psdns_trace::SpanKind::Fault,
                "stats",
                &format!("nonfinite-skipped[{nf}]"),
            )
            .finish();
        }
    }
    stats
}

/// Like [`flow_stats`] but a non-finite mode anywhere in the (global)
/// field is a typed [`IntegrityError::NonFinite`] instead of a silently
/// partial answer.
pub fn try_flow_stats<T: Real>(
    u: &[SpectralField<T>; 3],
    nu: f64,
    comm: &Communicator,
) -> Result<FlowStats, IntegrityError> {
    let (stats, count) = flow_stats_impl(u, nu, comm);
    if count > 0 {
        return Err(IntegrityError::NonFinite { count });
    }
    Ok(stats)
}

fn flow_stats_impl<T: Real>(
    u: &[SpectralField<T>; 3],
    nu: f64,
    comm: &Communicator,
) -> (FlowStats, u64) {
    let s = u[0].shape;
    let grid = s.grid();
    let n6 = ((s.n as f64).powi(3)).powi(2);
    let mut energy = 0.0f64;
    let mut enstrophy = 0.0f64;
    let mut div_sq = 0.0f64;
    let mut nf = 0u64;
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let k2 = kx * kx + ky * ky + kz * kz;
                let w = if x == 0 || (s.n.is_multiple_of(2) && x == s.nxh - 1) {
                    1.0
                } else {
                    2.0
                };
                let i = s.spec_idx(x, y, zl);
                let (a, b, c) = (u[0].data[i], u[1].data[i], u[2].data[i]);
                let e = a.norm_sqr().to_f64() + b.norm_sqr().to_f64() + c.norm_sqr().to_f64();
                if !e.is_finite() {
                    nf += 1;
                    continue;
                }
                energy += 0.5 * w * e / n6;
                enstrophy += 0.5 * w * k2 * e / n6;
                if k2 > 0.0 {
                    let kdotu = a.scale(T::from_f64(kx))
                        + b.scale(T::from_f64(ky))
                        + c.scale(T::from_f64(kz));
                    div_sq += w * kdotu.norm_sqr().to_f64() / n6;
                }
            }
        }
    }
    // One reduction for sums *and* the skip count: every rank sees the same
    // totals and the same corruption verdict with an identical collective
    // sequence, corrupt data or not.
    let sums = comm.allreduce_vec(&[energy, enstrophy, div_sq, nf as f64], |a, b| a + b);
    let (energy, enstrophy, div_sq, nf) = (sums[0], sums[1], sums[2], sums[3] as u64);
    let max_divergence = if enstrophy > 0.0 {
        (div_sq / (2.0 * enstrophy)).sqrt()
    } else {
        0.0
    };
    let dissipation = 2.0 * nu * enstrophy;
    let u_rms = (2.0 * energy / 3.0).sqrt();
    let re_lambda = if nu > 0.0 && dissipation > 0.0 {
        // λ = u'·√(15ν/ε); Re_λ = u'λ/ν
        let lambda = u_rms * (15.0 * nu / dissipation).sqrt();
        u_rms * lambda / nu
    } else {
        0.0
    };
    (
        FlowStats {
            energy,
            enstrophy,
            dissipation,
            max_divergence,
            u_rms,
            re_lambda,
        },
        nf,
    )
}

/// Longitudinal velocity-gradient moments: `(skewness, flatness)` of
/// `∂u/∂x`, averaged over the three longitudinal gradients. These are the
/// classic small-scale turbulence statistics behind the paper's science
/// driver ("extreme events in computational turbulence", its ref. \[23\]):
/// skewness ≈ −0.5 in developed turbulence (vortex stretching), flatness
/// > 3 signalling intermittency. Costs one 3-variable transform.
pub fn gradient_moments<T: Real, B: crate::field::Transform3d<T>>(
    backend: &mut B,
    u: &[SpectralField<T>; 3],
) -> (f64, f64) {
    let s = backend.shape();
    let grid = s.grid();
    // Longitudinal gradients: ∂u/∂x, ∂v/∂y, ∂w/∂z (spectral i·k_c·û_c).
    let mut grads = Vec::with_capacity(3);
    for (c, comp) in u.iter().enumerate() {
        let mut g = SpectralField::zeros(s);
        for zl in 0..s.mz {
            let z = s.z_global(zl);
            for y in 0..s.n {
                for x in 0..s.nxh {
                    let k = grid.k_vec(x, y, z)[c];
                    let i = s.spec_idx(x, y, zl);
                    g.data[i] = comp.data[i].scale(T::from_f64(k)).mul_i();
                }
            }
        }
        grads.push(g);
    }
    let phys = backend.fourier_to_physical(&grads);
    let (mut m2, mut m3, mut m4, mut count) = (0.0f64, 0.0, 0.0, 0.0);
    for f in &phys {
        for &v in &f.data {
            let v = v.to_f64();
            if !v.is_finite() {
                continue;
            }
            m2 += v * v;
            m3 += v * v * v;
            m4 += v * v * v * v;
            count += 1.0;
        }
    }
    let sums = backend
        .comm()
        .allreduce_vec(&[m2, m3, m4, count], |a, b| a + b);
    let (m2, m3, m4, count) = (sums[0], sums[1], sums[2], sums[3]);
    if m2 <= 0.0 || count <= 0.0 {
        return (0.0, 0.0);
    }
    let var = m2 / count;
    ((m3 / count) / var.powf(1.5), (m4 / count) / (var * var))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use psdns_comm::Universe;

    #[test]
    fn taylor_green_exact_statistics() {
        // TG: E = 1/8 (⟨u²⟩ = ⟨v²⟩ = 1/8 each... total ½⟨u²+v²⟩ = 1/8),
        // all modes at k² = 3 → enstrophy = 3·E.
        let out = Universe::run(4, |comm| {
            let shape = LocalShape::new(16, 4, comm.rank());
            let u = taylor_green::<f64>(shape);
            flow_stats(&u, 0.1, &comm)
        });
        for st in out {
            assert!((st.energy - 0.125).abs() < 1e-12, "E {}", st.energy);
            assert!((st.enstrophy - 0.375).abs() < 1e-12, "Ω {}", st.enstrophy);
            assert!((st.dissipation - 2.0 * 0.1 * 0.375).abs() < 1e-12);
            assert!(st.max_divergence < 1e-12);
            assert!((st.u_rms - (2.0 * 0.125 / 3.0f64).sqrt()).abs() < 1e-12);
            assert!(st.re_lambda > 0.0);
        }
    }

    /// The Taylor–Green field has symmetric gradients: zero skewness and a
    /// computable flatness (⟨g⁴⟩/⟨g²⟩² of cos x·cos y·cos z = (3/2)³ · … =
    /// 27/8 · (E[c⁴]/E[c²]²-like factorization) → exactly 3.375).
    #[test]
    fn taylor_green_gradient_moments() {
        use crate::dist_fft::SlabFftCpu;
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(16, 2, comm.rank());
            let mut fft = SlabFftCpu::<f64>::new(shape, comm);
            let u = taylor_green(shape);
            gradient_moments(&mut fft, &u)
        });
        for (skew, flat) in out {
            assert!(skew.abs() < 1e-10, "TG skewness must vanish: {skew}");
            // ∂u/∂x = cos x cos y cos z has flatness 1.5³ = 3.375 per
            // component; pooling the three longitudinal gradients (one of
            // which, ∂w/∂z, is identically zero since w = 0) rescales it by
            // 3/2 → 5.0625 exactly.
            assert!((flat - 5.0625).abs() < 1e-9, "TG flatness {flat}");
        }
    }

    /// Decaying turbulence develops negative longitudinal skewness (vortex
    /// stretching / the energy cascade) — a stringent end-to-end physics
    /// check of solver + transforms + statistics.
    #[test]
    fn turbulence_develops_negative_skewness() {
        use crate::dist_fft::SlabFftCpu;
        use crate::ns::{NavierStokes, NsConfig, TimeScheme};
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(24, 2, comm.rank());
            let mut u = crate::init::random_solenoidal::<f64>(shape, 3.0, 2);
            crate::init::normalize_energy(&mut u, 0.5, &comm);
            let mut ns = NavierStokes::new(
                SlabFftCpu::<f64>::new(shape, comm),
                NsConfig {
                    nu: 8e-3,
                    dt: 2e-3,
                    scheme: TimeScheme::Rk2,
                    forcing: None,
                    dealias: true,
                    phase_shift: false,
                },
                u,
            );
            let u0 = ns.u.clone();
            let (skew0, _) = gradient_moments(&mut ns.backend, &u0);
            for _ in 0..40 {
                ns.step();
            }
            let uf = ns.u.clone();
            let (skew1, flat1) = gradient_moments(&mut ns.backend, &uf);
            (skew0, skew1, flat1)
        });
        for (skew0, skew1, flat1) in out {
            assert!(skew0.abs() < 0.15, "random phases ≈ symmetric: {skew0}");
            assert!(skew1 < -0.15, "no cascade skewness developed: {skew1}");
            assert!(flat1 > 2.5, "gradient flatness collapsed: {flat1}");
        }
    }

    /// A single NaN mode must not print as a wall of NaN: the plain API
    /// saturates to the finite modes, the `try_` API reports it as a typed
    /// error, and both agree across ranks.
    #[test]
    fn nan_mode_is_skipped_and_typed() {
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(16, 2, comm.rank());
            let mut u = taylor_green::<f64>(shape);
            if comm.rank() == 1 {
                u[0].data[3] = psdns_fft::Complex::new(f64::NAN, 0.0);
            }
            let st = flow_stats(&u, 0.1, &comm);
            let err = try_flow_stats(&u, 0.1, &comm).unwrap_err();
            (st, err)
        });
        for (st, err) in out {
            assert!(st.energy.is_finite() && st.enstrophy.is_finite());
            assert!(st.energy > 0.0, "finite modes still counted");
            assert_eq!(err, IntegrityError::NonFinite { count: 1 });
        }
    }

    #[test]
    fn gradient_moments_tolerate_nan_mode() {
        use crate::dist_fft::SlabFftCpu;
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(16, 2, comm.rank());
            let mut fft = SlabFftCpu::<f64>::new(shape, comm);
            let mut u = taylor_green(shape);
            // An Inf spectral mode smears over all of physical space after
            // the transform; the moments must still come back finite (here:
            // zeroed, since every physical point is poisoned).
            u[1].data[0] = psdns_fft::Complex::new(f64::INFINITY, 0.0);
            gradient_moments(&mut fft, &u)
        });
        for (skew, flat) in out {
            assert!(skew.is_finite() && flat.is_finite());
        }
    }

    #[test]
    fn stats_match_spectrum_total() {
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(12, 2, comm.rank());
            let u = crate::init::random_solenoidal::<f64>(shape, 3.0, 5);
            let st = flow_stats(&u, 0.0, &comm);
            let spec = crate::spectrum::energy_spectrum(&u, &comm);
            (st.energy, spec.iter().sum::<f64>())
        });
        for (e, se) in out {
            assert!((e - se).abs() < 1e-10 * e.max(1e-30), "{e} vs {se}");
        }
    }
}
