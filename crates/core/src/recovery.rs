//! Checkpoint-based failure recovery.
//!
//! The paper's production campaigns survive node failures the classic HPC
//! way: periodic checkpoints plus restart from the last good file. This
//! module provides the runtime side of that contract for the simulated
//! stack — an in-memory [`CheckpointStore`] standing in for the parallel
//! file system (with chaos-injectable write failures, truncation and
//! bit-rot), a coordinated [`restore_or_init`] that either resumes *all*
//! ranks from a consistent checkpoint set or initializes *all* ranks fresh,
//! and [`run_checkpointed`] to drive a solver with periodic saves.

use std::collections::HashMap;
use std::sync::Arc;

use psdns_chaos::{ChaosEngine, FaultKind};
use psdns_fft::Real;
use psdns_sync::Mutex;

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::field::{SpectralField, Transform3d};
use crate::ns::{NavierStokes, NsConfig};

/// One checkpoint slot per rank, shared by all clones — the stand-in for a
/// restart directory on the parallel file system. When built
/// [`with_chaos`](Self::with_chaos), saves are subject to injected I/O
/// faults: transient write failures (retried per the engine's
/// [`psdns_chaos::RetryPolicy`], surfacing [`CheckpointError::WriteFailed`]
/// when the budget is exhausted), truncation (a partial write that lost the
/// tail) and bit-rot (silent corruption caught by the v2 CRC at load).
#[derive(Clone, Default)]
pub struct CheckpointStore {
    slots: Arc<Mutex<HashMap<usize, Vec<u8>>>>,
    chaos: Option<ChaosEngine>,
}

impl CheckpointStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// A store whose writes go through the fault-injection engine.
    pub fn with_chaos(engine: &ChaosEngine) -> Self {
        Self {
            slots: Arc::default(),
            chaos: Some(engine.clone()),
        }
    }

    /// Serialize and store `ck` under `rank`, applying any injected I/O
    /// faults. A transient write fault is retried with linear backoff; an
    /// injected truncation or corruption damages the stored bytes exactly
    /// the way a torn write or bit-rot would — detected at load, not here.
    pub fn save(&self, rank: usize, ck: &Checkpoint) -> Result<(), CheckpointError> {
        let site = format!("ckpt:r{rank}");
        if let Some(ch) = &self.chaos {
            let policy = ch.retry();
            let mut lost = true;
            for attempt in 0..=policy.max_retries {
                if !ch.check(rank, &site, FaultKind::WriteFault) {
                    lost = false;
                    break;
                }
                if attempt < policy.max_retries {
                    std::thread::sleep(policy.backoff * (attempt + 1));
                }
            }
            if lost {
                return Err(CheckpointError::WriteFailed);
            }
        }
        let mut bytes = ck.encode();
        if let Some(ch) = &self.chaos {
            if ch.check(rank, &site, FaultKind::TruncateCheckpoint) {
                let keep = bytes.len() * 3 / 4;
                bytes.truncate(keep);
            }
            if ch.check(rank, &site, FaultKind::CorruptCheckpoint) {
                let i = bytes.len() / 2;
                bytes[i] ^= 0x10;
            }
        }
        self.slots.lock().insert(rank, bytes);
        Ok(())
    }

    /// Decode `rank`'s slot. `None` when no checkpoint was ever stored;
    /// `Some(Err(..))` when the stored bytes are damaged (truncated file,
    /// CRC mismatch).
    pub fn load(&self, rank: usize) -> Option<Result<Checkpoint, CheckpointError>> {
        let bytes = self.slots.lock().get(&rank).cloned()?;
        Some(Checkpoint::decode(&bytes))
    }

    /// Ranks with a stored (not necessarily valid) checkpoint.
    pub fn ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.slots.lock().keys().copied().collect();
        r.sort_unstable();
        r
    }
}

/// Capture the solver's velocity state and save it under its rank.
pub fn save_solver<T: Real, B: Transform3d<T>>(
    ns: &NavierStokes<T, B>,
    store: &CheckpointStore,
) -> Result<(), CheckpointError> {
    let ck = Checkpoint::capture(&[&ns.u[0], &ns.u[1], &ns.u[2]], ns.time, ns.step_count);
    store.save(ns.backend.shape().rank, &ck)
}

/// Build a solver from the last good checkpoint, or from `init` when no
/// consistent set exists. Returns `(solver, resumed)`.
///
/// The decision is **collective**: every rank reports whether its own slot
/// decodes, restores, and from which step; an allgather then lets all ranks
/// agree — resume only when *every* rank holds a valid checkpoint from the
/// *same* step. Anything less (one rank's file corrupt, a stale slot from
/// an earlier save) makes all ranks fall back to `init` together, keeping
/// the collective sequence in lockstep.
///
/// On resume the spectral state is restored bit-exactly (the saved state
/// was already solenoidal and dealiased, so the constructor's projection is
/// bypassed): a resumed trajectory continues exactly where the failed run
/// left off.
pub fn restore_or_init<T, B, F>(
    store: &CheckpointStore,
    backend: B,
    cfg: NsConfig,
    init: F,
) -> (NavierStokes<T, B>, bool)
where
    T: Real,
    B: Transform3d<T>,
    F: FnOnce() -> [SpectralField<T>; 3],
{
    let shape = backend.shape();
    let local: Option<([SpectralField<T>; 3], usize, f64)> =
        store.load(shape.rank).and_then(|r| r.ok()).and_then(|ck| {
            let (step, time) = (ck.step, ck.time);
            let fields = ck.restore::<T>(shape).ok()?;
            let u: [SpectralField<T>; 3] = fields.try_into().ok()?;
            Some((u, step, time))
        });
    let my_state = match &local {
        Some((_, step, _)) => (true, *step as i64),
        None => (false, -1),
    };
    let states = backend.comm().allgather(&[my_state]);
    let usable = states.iter().all(|&(ok, step)| ok && step == my_state.1);
    match (usable, local) {
        (true, Some((u, step, time))) => {
            let mut ns = NavierStokes::new(backend, cfg, u.clone());
            // Bypass the constructor's re-projection: the checkpointed
            // state is already admissible, and bit-exact resume keeps the
            // recovered trajectory identical to an uninterrupted one.
            ns.u = u;
            ns.step_count = step;
            ns.time = time;
            (ns, true)
        }
        _ => (NavierStokes::new(backend, cfg, init()), false),
    }
}

/// Advance the solver to `until_step`, saving a checkpoint every `every`
/// steps (and at the final step). Returns the number of successful saves;
/// a failed save aborts with the typed error so the driver can decide
/// whether to continue without protection.
pub fn run_checkpointed<T: Real, B: Transform3d<T>>(
    ns: &mut NavierStokes<T, B>,
    store: &CheckpointStore,
    until_step: usize,
    every: usize,
) -> Result<usize, CheckpointError> {
    assert!(every >= 1, "checkpoint interval must be at least 1");
    let mut saves = 0;
    while ns.step_count < until_step {
        ns.step();
        if ns.step_count.is_multiple_of(every) || ns.step_count == until_step {
            save_solver(ns, store)?;
            saves += 1;
        }
    }
    Ok(saves)
}

/// [`run_checkpointed`] with a pre-flight schedule check: before stepping,
/// the backend's planned transform schedule is certified race-free via
/// [`Transform3d::verify_schedule`] (for [`crate::GpuSlabFft`] a full
/// happens-before replay of the pencil DAG, see
/// [`crate::GpuSlabFft::analyze_schedule`]). A defective schedule surfaces
/// as [`crate::Error::Hazard`] *before* any step runs — turning a would-be
/// silent data race into a typed pre-execution failure.
pub fn run_checkpointed_checked<T: Real, B: Transform3d<T>>(
    ns: &mut NavierStokes<T, B>,
    store: &CheckpointStore,
    until_step: usize,
    every: usize,
) -> Result<usize, crate::error::Error> {
    ns.backend.verify_schedule()?;
    run_checkpointed(ns, store, until_step, every).map_err(crate::error::Error::Checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_fft::SlabFftCpu;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use crate::ns::TimeScheme;
    use psdns_chaos::{ChaosConfig, FaultPlan};
    use psdns_comm::Universe;

    fn cfg() -> NsConfig {
        NsConfig {
            nu: 0.05,
            dt: 1e-3,
            scheme: TimeScheme::Rk2,
            forcing: None,
            dealias: true,
            phase_shift: false,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let shape = LocalShape::new(8, 1, 0);
        let u = taylor_green::<f64>(shape);
        let ck = Checkpoint::capture(&[&u[0], &u[1], &u[2]], 0.5, 12);
        let store = CheckpointStore::new();
        store.save(0, &ck).unwrap();
        assert_eq!(store.load(0).unwrap().unwrap(), ck);
        assert!(store.load(1).is_none());
        assert_eq!(store.ranks(), vec![0]);
    }

    #[test]
    fn injected_write_fault_exhausts_retries() {
        let mut c = ChaosConfig::new(9);
        c.write_fault = FaultPlan::with_prob(1.0);
        c.retry.backoff = std::time::Duration::ZERO;
        let store = CheckpointStore::with_chaos(&ChaosEngine::new(c));
        let shape = LocalShape::new(8, 1, 0);
        let u = taylor_green::<f64>(shape);
        let ck = Checkpoint::capture(&[&u[0]], 0.0, 0);
        assert_eq!(store.save(0, &ck), Err(CheckpointError::WriteFailed));
        assert!(store.load(0).is_none(), "failed write must not store bytes");
    }

    #[test]
    fn injected_truncation_and_corruption_detected_at_load() {
        let shape = LocalShape::new(8, 1, 0);
        let u = taylor_green::<f64>(shape);
        let ck = Checkpoint::capture(&[&u[0]], 0.0, 0);

        let mut c = ChaosConfig::new(4);
        c.truncate_checkpoint = FaultPlan::with_prob(1.0);
        let store = CheckpointStore::with_chaos(&ChaosEngine::new(c));
        store.save(0, &ck).unwrap();
        assert_eq!(store.load(0), Some(Err(CheckpointError::Truncated)));

        let mut c = ChaosConfig::new(4);
        c.corrupt_checkpoint = FaultPlan::with_prob(1.0);
        let store = CheckpointStore::with_chaos(&ChaosEngine::new(c));
        store.save(0, &ck).unwrap();
        assert!(matches!(
            store.load(0),
            Some(Err(CheckpointError::Corrupt { .. }))
        ));
    }

    #[test]
    fn restore_or_init_resumes_bit_exactly() {
        let store = CheckpointStore::new();
        let out = Universe::run(2, {
            let store = store.clone();
            move |comm| {
                let shape = LocalShape::new(8, 2, comm.rank());
                let mk = || taylor_green::<f64>(shape);
                let (mut ns, resumed) =
                    restore_or_init(&store, SlabFftCpu::<f64>::new(shape, comm), cfg(), mk);
                assert!(!resumed);
                run_checkpointed(&mut ns, &store, 3, 2).unwrap();
                (ns.step_count, ns.u[0].data.clone())
            }
        });
        // Second "job": must resume from step 3 with identical state.
        let resumed = Universe::run(2, {
            let store = store.clone();
            move |comm| {
                let shape = LocalShape::new(8, 2, comm.rank());
                let mk = || taylor_green::<f64>(shape);
                let (ns, resumed) =
                    restore_or_init(&store, SlabFftCpu::<f64>::new(shape, comm), cfg(), mk);
                assert!(resumed);
                (ns.step_count, ns.u[0].data.clone())
            }
        });
        for (a, b) in out.iter().zip(&resumed) {
            assert_eq!(a.0, 3);
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1, "resume must be bit-exact");
        }
    }

    #[test]
    fn inconsistent_checkpoint_set_falls_back_to_init() {
        // Rank 1's slot is corrupted: both ranks must agree to start fresh.
        let store = CheckpointStore::new();
        let shape0 = LocalShape::new(8, 2, 0);
        let u = taylor_green::<f64>(shape0);
        store
            .save(0, &Checkpoint::capture(&[&u[0], &u[1], &u[2]], 1.0, 5))
            .unwrap();
        store.slots.lock().insert(1, vec![0xde, 0xad]);
        let out = Universe::run(2, move |comm| {
            let shape = LocalShape::new(8, 2, comm.rank());
            let mk = || taylor_green::<f64>(shape);
            let (ns, resumed) =
                restore_or_init(&store, SlabFftCpu::<f64>::new(shape, comm), cfg(), mk);
            (resumed, ns.step_count)
        });
        for (resumed, step) in out {
            assert!(!resumed);
            assert_eq!(step, 0);
        }
    }
}
