//! Checkpoint-based failure recovery and self-healing campaigns.
//!
//! The paper's production campaigns survive node failures the classic HPC
//! way: periodic checkpoints plus restart from the last good file. This
//! module provides the runtime side of that contract for the simulated
//! stack — an in-memory [`CheckpointStore`] standing in for the parallel
//! file system (with chaos-injectable write failures, truncation and
//! bit-rot), a coordinated [`restore_or_init`] that either resumes *all*
//! ranks from a consistent checkpoint set or initializes *all* ranks fresh,
//! and [`run_checkpointed`] to drive a solver with periodic saves.
//!
//! On top of that sits the ULFM-style *shrink-and-continue* path: a
//! diskless [`BuddyStore`] replicates each rank's checkpoint in memory to K
//! partner ranks every N steps, and [`run_self_healing`] drives a campaign
//! that survives rank death without touching stable storage — detect (typed
//! [`psdns_comm::CommError::RankFailed`] out of the failure detector),
//! agree ([`psdns_comm::Communicator::agree_on_failures`]), rebuild
//! ([`psdns_comm::Communicator::shrink`]), reassemble the global state from
//! buddy copies ([`crate::checkpoint::reslice`]), re-plan the transform
//! backend for the surviving rank count, and resume the time loop at the
//! last protected step.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use psdns_chaos::{ChaosEngine, FaultKind};
use psdns_comm::{CommError, Communicator};
use psdns_fft::Real;
use psdns_sync::Mutex;

use crate::checkpoint::{reslice, Checkpoint, CheckpointError};
use crate::field::{LocalShape, SpectralField, Transform3d};
use crate::integrity::{IntegrityConfig, IntegrityError, IntegrityEvent};
use crate::ns::{NavierStokes, NsConfig};

/// One checkpoint slot per rank, shared by all clones — the stand-in for a
/// restart directory on the parallel file system. When built
/// [`with_chaos`](Self::with_chaos), saves are subject to injected I/O
/// faults: transient write failures (retried per the engine's
/// [`psdns_chaos::RetryPolicy`], surfacing [`CheckpointError::WriteFailed`]
/// when the budget is exhausted), truncation (a partial write that lost the
/// tail) and bit-rot (silent corruption caught by the v2 CRC at load).
#[derive(Clone, Default)]
pub struct CheckpointStore {
    slots: Arc<Mutex<HashMap<usize, Vec<u8>>>>,
    chaos: Option<ChaosEngine>,
}

impl CheckpointStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// A store whose writes go through the fault-injection engine.
    pub fn with_chaos(engine: &ChaosEngine) -> Self {
        Self {
            slots: Arc::default(),
            chaos: Some(engine.clone()),
        }
    }

    /// Serialize and store `ck` under `rank`, applying any injected I/O
    /// faults. A transient write fault is retried under the engine's
    /// [`psdns_chaos::RetryPolicy`] (jittered exponential backoff, the
    /// same policy the comm and device layers use); an injected truncation
    /// or corruption damages the stored bytes exactly the way a torn write
    /// or bit-rot would — detected at load, not here.
    pub fn save(&self, rank: usize, ck: &Checkpoint) -> Result<(), CheckpointError> {
        let site = format!("ckpt:r{rank}");
        if let Some(ch) = &self.chaos {
            let policy = ch.retry();
            let salt = psdns_chaos::site_salt(&site);
            let mut lost = true;
            for attempt in 0..=policy.max_retries {
                if !ch.check(rank, &site, FaultKind::WriteFault) {
                    lost = false;
                    break;
                }
                if attempt < policy.max_retries {
                    std::thread::sleep(policy.backoff_for(attempt, salt));
                }
            }
            if lost {
                return Err(CheckpointError::WriteFailed);
            }
        }
        let mut bytes = ck.encode();
        if let Some(ch) = &self.chaos {
            if ch.check(rank, &site, FaultKind::TruncateCheckpoint) {
                let keep = bytes.len() * 3 / 4;
                bytes.truncate(keep);
            }
            if ch.check(rank, &site, FaultKind::CorruptCheckpoint) {
                let i = bytes.len() / 2;
                bytes[i] ^= 0x10;
            }
        }
        self.slots.lock().insert(rank, bytes);
        Ok(())
    }

    /// Decode `rank`'s slot. `None` when no checkpoint was ever stored;
    /// `Some(Err(..))` when the stored bytes are damaged (truncated file,
    /// CRC mismatch).
    pub fn load(&self, rank: usize) -> Option<Result<Checkpoint, CheckpointError>> {
        let bytes = self.slots.lock().get(&rank).cloned()?;
        Some(Checkpoint::decode(&bytes))
    }

    /// Ranks with a stored (not necessarily valid) checkpoint.
    pub fn ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.slots.lock().keys().copied().collect();
        r.sort_unstable();
        r
    }
}

/// Capture the solver's velocity state and save it under its rank.
pub fn save_solver<T: Real, B: Transform3d<T>>(
    ns: &NavierStokes<T, B>,
    store: &CheckpointStore,
) -> Result<(), CheckpointError> {
    let ck = Checkpoint::capture(&[&ns.u[0], &ns.u[1], &ns.u[2]], ns.time, ns.step_count);
    store.save(ns.backend.shape().rank, &ck)
}

/// Build a solver from the last good checkpoint, or from `init` when no
/// consistent set exists. Returns `(solver, resumed)`.
///
/// The decision is **collective**: every rank reports whether its own slot
/// decodes, restores, and from which step; an allgather then lets all ranks
/// agree — resume only when *every* rank holds a valid checkpoint from the
/// *same* step. Anything less (one rank's file corrupt, a stale slot from
/// an earlier save) makes all ranks fall back to `init` together, keeping
/// the collective sequence in lockstep.
///
/// On resume the spectral state is restored bit-exactly (the saved state
/// was already solenoidal and dealiased, so the constructor's projection is
/// bypassed): a resumed trajectory continues exactly where the failed run
/// left off.
pub fn restore_or_init<T, B, F>(
    store: &CheckpointStore,
    backend: B,
    cfg: NsConfig,
    init: F,
) -> (NavierStokes<T, B>, bool)
where
    T: Real,
    B: Transform3d<T>,
    F: FnOnce() -> [SpectralField<T>; 3],
{
    let shape = backend.shape();
    let local: Option<([SpectralField<T>; 3], usize, f64)> =
        store.load(shape.rank).and_then(|r| r.ok()).and_then(|ck| {
            let (step, time) = (ck.step, ck.time);
            let fields = ck.restore::<T>(shape).ok()?;
            let u: [SpectralField<T>; 3] = fields.try_into().ok()?;
            Some((u, step, time))
        });
    let my_state = match &local {
        Some((_, step, _)) => (true, *step as i64),
        None => (false, -1),
    };
    let states = backend.comm().allgather(&[my_state]);
    let usable = states.iter().all(|&(ok, step)| ok && step == my_state.1);
    match (usable, local) {
        (true, Some((u, step, time))) => {
            let mut ns = NavierStokes::new(backend, cfg, u.clone());
            // Bypass the constructor's re-projection: the checkpointed
            // state is already admissible, and bit-exact resume keeps the
            // recovered trajectory identical to an uninterrupted one.
            ns.u = u;
            ns.step_count = step;
            ns.time = time;
            (ns, true)
        }
        _ => (NavierStokes::new(backend, cfg, init()), false),
    }
}

/// Advance the solver to `until_step`, saving a checkpoint every `every`
/// steps (and at the final step). Returns the number of successful saves;
/// a failed save aborts with the typed error so the driver can decide
/// whether to continue without protection.
pub fn run_checkpointed<T: Real, B: Transform3d<T>>(
    ns: &mut NavierStokes<T, B>,
    store: &CheckpointStore,
    until_step: usize,
    every: usize,
) -> Result<usize, CheckpointError> {
    assert!(every >= 1, "checkpoint interval must be at least 1");
    let mut saves = 0;
    while ns.step_count < until_step {
        ns.step();
        if ns.step_count.is_multiple_of(every) || ns.step_count == until_step {
            save_solver(ns, store)?;
            saves += 1;
        }
    }
    Ok(saves)
}

/// [`run_checkpointed`] with a pre-flight schedule check: before stepping,
/// the backend's planned transform schedule is certified race-free via
/// [`Transform3d::verify_schedule`] (for [`crate::GpuSlabFft`] a full
/// happens-before replay of the pencil DAG, see
/// [`crate::GpuSlabFft::analyze_schedule`]). A defective schedule surfaces
/// as [`crate::Error::Hazard`] *before* any step runs — turning a would-be
/// silent data race into a typed pre-execution failure.
pub fn run_checkpointed_checked<T: Real, B: Transform3d<T>>(
    ns: &mut NavierStokes<T, B>,
    store: &CheckpointStore,
    until_step: usize,
    every: usize,
) -> Result<usize, crate::error::Error> {
    ns.backend.verify_schedule()?;
    run_checkpointed(ns, store, until_step, every).map_err(crate::error::Error::Checkpoint)
}

// ---------------------------------------------------------------------------
// Diskless buddy checkpoints + shrink-and-continue supervisor
// ---------------------------------------------------------------------------

/// Diskless buddy checkpointing: each rank replicates its encoded
/// [`Checkpoint`] in memory to its `replicas` cyclic successor ranks (and
/// keeps its own copy), so after a rank dies the survivors can reassemble
/// the full global state without a parallel file system. A writer's state
/// survives as long as at least one of `{writer, successor_1, …,
/// successor_K}` survives — K+1 simultaneous failures in one replication
/// neighborhood lose coverage, which [`run_self_healing`] surfaces as the
/// typed [`RecoveryError::CoverageLost`].
///
/// Consistency comes from the step structure, not from extra protocol: a
/// protection round sits between two time steps, chaos crashes fire only at
/// collective boundaries inside a step, and a rank can only enter step
/// `S+1` after *sending* all its step-`S` copies (buffered sends). A
/// survivor's receive therefore always completes — the failure-aware
/// system-message receive drains anything a dead buddy sent before dying.
pub struct BuddyStore {
    replicas: usize,
    /// writer's decomposition rank → (step, encoded checkpoint).
    held: HashMap<usize, (usize, Vec<u8>)>,
}

impl BuddyStore {
    /// A store replicating to `replicas` cyclic successors (clamped to the
    /// communicator size at protect time).
    pub fn new(replicas: usize) -> Self {
        assert!(
            replicas >= 1,
            "buddy checkpointing needs at least 1 replica"
        );
        Self {
            replicas,
            held: HashMap::new(),
        }
    }

    /// Configured replication factor K.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Decomposition ranks whose state this rank currently holds (its own
    /// plus its predecessors'), sorted.
    pub fn held_ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.held.keys().copied().collect();
        r.sort_unstable();
        r
    }

    /// Forget everything held — called when the decomposition changes
    /// (post-shrink reslice), since old-layout slabs are useless to the new
    /// layout and their rank keys would collide with it.
    pub fn reset(&mut self) {
        self.held.clear();
    }

    /// Capture the solver's state and replicate it to the buddies.
    pub fn protect<T: Real, B: Transform3d<T>>(
        &mut self,
        comm: &Communicator,
        ns: &NavierStokes<T, B>,
    ) -> Result<(), CommError> {
        let ck = Checkpoint::capture(&[&ns.u[0], &ns.u[1], &ns.u[2]], ns.time, ns.step_count);
        self.protect_checkpoint(comm, &ck)
    }

    /// Replicate one encoded checkpoint: send to the K cyclic successors,
    /// receive the K cyclic predecessors' copies, keep the latest per
    /// writer. Uses the runtime's system tag namespace (tag = step), so
    /// replication traffic never collides with solver collectives.
    pub fn protect_checkpoint(
        &mut self,
        comm: &Communicator,
        ck: &Checkpoint,
    ) -> Result<(), CommError> {
        let size = comm.size();
        let me = comm.rank();
        let k = self.replicas.min(size.saturating_sub(1));
        let tag = ck.step as u64;
        let bytes = ck.encode();
        for i in 1..=k {
            comm.send_system((me + i) % size, tag, bytes.clone());
        }
        self.held.insert(ck.rank, (ck.step, bytes));
        for i in 1..=k {
            let src = (me + size - i) % size;
            let blob = comm.recv_system::<u8>(src, tag)?;
            if let Ok(peer) = Checkpoint::decode(&blob) {
                self.held.insert(peer.rank, (peer.step, blob));
            }
        }
        Ok(())
    }

    /// The protected step and blob this rank holds for decomposition rank
    /// `rank`, if any — used by the integrity escalation path to roll its
    /// own slab back without a collective.
    pub fn held_blob(&self, rank: usize) -> Option<(usize, &[u8])> {
        self.held.get(&rank).map(|(s, b)| (*s, b.as_slice()))
    }

    /// Frame every held blob for the reassembly gather: `count` then
    /// `len, crc32(bytes), bytes` per entry, in writer-rank order. The
    /// per-entry CRC protects the *framing* across the exchange — the blob
    /// itself also carries the checkpoint container's own trailing CRC, so
    /// a corrupted entry is dropped at decode instead of desynchronizing
    /// the whole stream.
    fn encode_held(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.held.len() as u64).to_le_bytes());
        for rank in self.held_ranks() {
            let (_, bytes) = &self.held[&rank];
            buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            buf.extend_from_slice(&(crate::checkpoint::crc32(bytes) as u64).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
        buf
    }
}

/// Parse a concatenation of [`BuddyStore::encode_held`] frames (the result
/// of an allgather over survivors) back into individual checkpoint blobs.
/// Ignores zero padding appended to equalize per-rank frame lengths.
fn decode_held_stream(data: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let read_u64 = |pos: &mut usize| -> Option<u64> {
        let s = data.get(*pos..*pos + 8)?;
        *pos += 8;
        Some(u64::from_le_bytes(<[u8; 8]>::try_from(s).ok()?))
    };
    while pos < data.len() {
        let Some(count) = read_u64(&mut pos) else {
            break;
        };
        if count == 0 {
            // Either an empty frame or the start of padding; padding is all
            // zeros, and an empty frame encodes identically — both safe to
            // skip over.
            continue;
        }
        for _ in 0..count {
            let Some(len) = read_u64(&mut pos) else {
                return out;
            };
            let Some(crc) = read_u64(&mut pos) else {
                return out;
            };
            let Some(bytes) = data.get(pos..pos + len as usize) else {
                return out;
            };
            pos += len as usize;
            // Verify the frame sidecar; a corrupted entry is skipped (its
            // writer's state is recovered from another replica or surfaces
            // as CoverageLost) rather than decoded into garbage.
            if u64::from(crate::checkpoint::crc32(bytes)) == crc {
                out.push(bytes.to_vec());
            }
        }
    }
    out
}

/// Largest divisor of `n` that is at most `cap` — the biggest slab
/// decomposition the survivors can host. At least 1 for any `n ≥ 1`.
fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
    (1..=cap.min(n))
        .rev()
        .find(|d| n.is_multiple_of(*d))
        .unwrap_or(1)
}

/// One entry of the recovery log: the shrink-recovery state machine's
/// transitions, all-integer so a same-seed rerun produces a byte-identical
/// log (compare with `format!("{events:?}")`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// The failure detector surfaced dead ranks: `(global rank, collective
    /// epoch at death)`, the full set known at detection time.
    Detect { failed: Vec<(usize, u64)> },
    /// Survivors agreed on the failure set.
    Agree { failed: Vec<(usize, u64)> },
    /// The shrunken communicator was built.
    Rebuild { survivors: usize },
    /// Global state reassembled from buddy copies and re-cut.
    Reslice {
        step: usize,
        old_p: usize,
        new_p: usize,
    },
    /// Time loop resumed at `step` on the new decomposition.
    Resume { step: usize },
}

/// Typed failure modes of [`run_self_healing`]. Everything here is a
/// deliberate abort — the supervisor never hangs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The agreement round failed (an alive peer stayed silent past its
    /// deadline).
    Agreement(CommError),
    /// Buddy replication failed.
    Protect(CommError),
    /// No protected step has full coverage among the survivors: more than
    /// K adjacent ranks died in one replication neighborhood.
    CoverageLost { survivors: usize },
    /// A reassembled buddy checkpoint did not restore cleanly.
    Restore(CheckpointError),
    /// More failures than the configured budget.
    TooManyFailures { heals: u32 },
    /// A persistent integrity violation survived both in-place step retries
    /// and the configured rollback budget (see
    /// [`SelfHealingConfig::max_rollbacks`]).
    Integrity(IntegrityError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Agreement(e) => write!(f, "failure agreement failed: {e}"),
            RecoveryError::Protect(e) => write!(f, "buddy replication failed: {e}"),
            RecoveryError::CoverageLost { survivors } => write!(
                f,
                "no protected step has full buddy coverage among {survivors} survivors"
            ),
            RecoveryError::Restore(e) => write!(f, "buddy checkpoint restore failed: {e}"),
            RecoveryError::TooManyFailures { heals } => {
                write!(f, "aborting after {heals} recoveries")
            }
            RecoveryError::Integrity(e) => write!(f, "integrity rollback budget exhausted: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Knobs of the self-healing supervisor.
#[derive(Debug, Clone)]
pub struct SelfHealingConfig {
    /// Run until the solver reaches this step count.
    pub until_step: usize,
    /// Buddy-protect every N steps (and at the final step).
    pub protect_every: usize,
    /// Replication factor K of the [`BuddyStore`].
    pub replicas: usize,
    /// Per-peer deadline of the agreement rounds; an alive-but-silent peer
    /// past this converts into a typed abort instead of a hang.
    pub agree_deadline: Duration,
    /// Abort (typed) after this many successful recoveries.
    pub max_heals: u32,
    /// Numerical-integrity monitors for the step loop (default: disarmed).
    /// When armed, the campaign escalates detect → in-place step retry
    /// ([`crate::NavierStokes::step_verified`]) → buddy-checkpoint rollback.
    pub integrity: IntegrityConfig,
    /// Abort (typed) after this many integrity-driven rollbacks to the last
    /// buddy checkpoint.
    pub max_rollbacks: u32,
}

impl Default for SelfHealingConfig {
    fn default() -> Self {
        Self {
            until_step: 0,
            protect_every: 1,
            replicas: 1,
            agree_deadline: Duration::from_secs(10),
            max_heals: 4,
            integrity: IntegrityConfig::default(),
            max_rollbacks: 2,
        }
    }
}

/// What a surviving rank carries out of a healed campaign.
pub struct HealedRun<T: Real> {
    /// Final spectral velocity state of this rank's slab.
    pub u: [SpectralField<T>; 3],
    pub step: usize,
    pub time: f64,
    /// Final decomposition size and this rank's slab index within it.
    pub p: usize,
    pub rank: usize,
    /// Number of shrink-recoveries performed.
    pub heals: u32,
    /// The recovery state machine's transition log.
    pub events: Vec<RecoveryEvent>,
    /// The integrity monitors' violation/retry/heal/rollback log, spanning
    /// every solver incarnation of the campaign. All-integer — a same-seed
    /// rerun's log is byte-identical.
    pub integrity_events: Vec<IntegrityEvent>,
}

/// Record one recovery-epoch span with a *logical* timestamp, so the trace
/// of a same-seed rerun is byte-identical (wall clocks are not).
fn recovery_span(comm: &Communicator, logical: &mut u64, name: &str) {
    if let Some(t) = comm.tracer() {
        t.record(
            psdns_trace::SpanKind::Recovery,
            "recovery",
            name,
            *logical,
            *logical + 1,
        );
    }
    *logical += 1;
}

enum StepOutcome {
    Done,
    /// This rank is surplus after a shrink (the new decomposition is
    /// smaller than the survivor count) and has left the campaign.
    Idle,
}

/// Drive a self-healing campaign: run the solver to
/// [`SelfHealingConfig::until_step`] under diskless buddy protection,
/// surviving rank death by shrink-and-continue. Must run under
/// [`psdns_comm::Universe::run_resilient`].
///
/// The recovery state machine (per surviving rank):
///
/// 1. **detect** — a collective panics with the failure detector's typed
///    `RankFailed`; the supervisor catches it (a rank that finds *itself*
///    departed re-panics and dies for real);
/// 2. **agree** — all survivors converge on the same `(rank, epoch)` set;
/// 3. **rebuild** — shrink to the survivor communicator (fresh context, new
///    collective epoch, fresh verifier namespace);
/// 4. **reslice** — allgather the buddy blobs, pick the newest step with
///    full coverage, re-cut the global field to the largest divisor of `n`
///    that fits the survivors (surplus ranks go idle and return `None`);
/// 5. **resume** — rebuild the transform backend via `make_backend` for the
///    new rank count, restore bit-exactly, re-protect, continue stepping.
///
/// A second failure during recovery re-enters the machine at step 1; an
/// unrecoverable situation (coverage lost, agreement timeout, failure
/// budget exhausted) is a typed [`RecoveryError`] — never a hang.
pub fn run_self_healing<T, B, MB, FI>(
    comm: Communicator,
    n: usize,
    cfg: NsConfig,
    heal: SelfHealingConfig,
    make_backend: MB,
    init: FI,
) -> Result<Option<HealedRun<T>>, RecoveryError>
where
    T: Real,
    B: Transform3d<T>,
    MB: Fn(LocalShape, Communicator) -> B,
    FI: FnOnce(LocalShape) -> [SpectralField<T>; 3],
{
    assert!(heal.protect_every >= 1);
    let mut active_comm = comm;
    let mut p = active_comm.size();
    assert!(n.is_multiple_of(p), "initial rank count must divide n");
    let mut heals = 0u32;
    let mut rollbacks = 0u32;
    let mut events: Vec<RecoveryEvent> = Vec::new();
    let mut integrity_log: Vec<IntegrityEvent> = Vec::new();
    let mut logical = 0u64;
    let mut known_failed = active_comm.departed().len();
    let mut buddy = BuddyStore::new(heal.replicas);
    let mut pending_recovery = false;

    let shape = LocalShape::new(n, p, active_comm.rank());
    let mut ns = NavierStokes::new(
        make_backend(shape, active_comm.clone()),
        cfg.clone(),
        init(shape),
    );
    ns.set_integrity(heal.integrity.clone());
    buddy
        .protect(&active_comm, &ns)
        .map_err(RecoveryError::Protect)?;

    loop {
        let attempt = catch_unwind(AssertUnwindSafe(
            || -> Result<StepOutcome, RecoveryError> {
                if pending_recovery {
                    // -- agree ------------------------------------------------
                    let agreed = active_comm
                        .agree_on_failures(heal.agree_deadline)
                        .map_err(RecoveryError::Agreement)?;
                    events.push(RecoveryEvent::Agree {
                        failed: agreed.clone(),
                    });
                    recovery_span(&active_comm, &mut logical, "agree");

                    // -- rebuild ----------------------------------------------
                    active_comm = active_comm.shrink(&agreed);
                    let survivors = active_comm.size();
                    events.push(RecoveryEvent::Rebuild { survivors });
                    recovery_span(&active_comm, &mut logical, "rebuild");

                    // -- reslice ----------------------------------------------
                    // Gather every survivor's buddy blobs. Two rounds keep the
                    // payload length uniform per rank (collective verifiers
                    // fingerprint lengths): first the frame sizes, then the
                    // zero-padded frames.
                    let frame = buddy.encode_held();
                    let lens = active_comm.allgather(&[frame.len() as u64]);
                    let max_len = lens.iter().copied().max().unwrap_or(0) as usize;
                    let mut padded = frame;
                    padded.resize(max_len, 0);
                    let gathered = active_comm.allgather(&padded);
                    let mut parts: Vec<Checkpoint> = Vec::new();
                    for blob in decode_held_stream(&gathered) {
                        if let Ok(ck) = Checkpoint::decode(&blob) {
                            // Only slabs of the current decomposition can be
                            // reassembled; stale pre-shrink layouts are skipped.
                            if ck.n == n && ck.p == p {
                                parts.push(ck);
                            }
                        }
                    }
                    // Newest step with full old-rank coverage wins.
                    let mut best: Option<usize> = None;
                    for step in parts.iter().map(|c| c.step) {
                        let covered =
                            (0..p).all(|r| parts.iter().any(|c| c.step == step && c.rank == r));
                        if covered && best.is_none_or(|b| step > b) {
                            best = Some(step);
                        }
                    }
                    let best = best.ok_or(RecoveryError::CoverageLost { survivors })?;
                    let mut chosen: Vec<Checkpoint> = Vec::new();
                    for r in 0..p {
                        // The coverage scan above proved every rank has a
                        // part at `best`; surface a typed error anyway
                        // rather than trusting the invariant with a panic.
                        let ck = parts
                            .iter()
                            .find(|c| c.step == best && c.rank == r)
                            .ok_or(RecoveryError::CoverageLost { survivors })?;
                        chosen.push(ck.clone());
                    }
                    let new_p = largest_divisor_at_most(n, survivors);
                    events.push(RecoveryEvent::Reslice {
                        step: best,
                        old_p: p,
                        new_p,
                    });
                    recovery_span(&active_comm, &mut logical, "reslice");
                    let resliced = reslice(&chosen, new_p);

                    // -- resume -----------------------------------------------
                    // Surplus survivors (new_p < survivors) leave the campaign;
                    // the active ranks split into their own communicator so
                    // later recoveries only involve participants.
                    let local = active_comm.rank();
                    let active = local < new_p;
                    let sub = active_comm.split(usize::from(!active), local);
                    if !active {
                        return Ok(StepOutcome::Idle);
                    }
                    active_comm = sub;
                    p = new_p;
                    let shape = LocalShape::new(n, new_p, local);
                    let mine = &resliced[local];
                    let fields = mine.restore::<T>(shape).map_err(RecoveryError::Restore)?;
                    let u: [SpectralField<T>; 3] = fields
                        .try_into()
                        .map_err(|_| RecoveryError::Restore(CheckpointError::Truncated))?;
                    // Carry the integrity log across solver incarnations.
                    integrity_log.append(&mut ns.integrity_events);
                    ns = NavierStokes::new(
                        make_backend(shape, active_comm.clone()),
                        cfg.clone(),
                        u.clone(),
                    );
                    ns.set_integrity(heal.integrity.clone());
                    // Bit-exact resume, as in restore_or_init: bypass the
                    // constructor's re-projection.
                    ns.u = u;
                    ns.step_count = mine.step;
                    ns.time = mine.time;
                    buddy.reset();
                    buddy
                        .protect(&active_comm, &ns)
                        .map_err(RecoveryError::Protect)?;
                    events.push(RecoveryEvent::Resume { step: mine.step });
                    recovery_span(&active_comm, &mut logical, "resume");
                    pending_recovery = false;
                }

                while ns.step_count < heal.until_step {
                    if let Err(e) = ns.step_verified() {
                        // In-place step retries are exhausted: escalate to
                        // the last buddy checkpoint. The verdict came from
                        // globally reduced sums, so every active rank takes
                        // this branch together — the rollback is lockstep
                        // without any extra agreement round.
                        rollbacks += 1;
                        if rollbacks > heal.max_rollbacks {
                            return Err(RecoveryError::Integrity(e));
                        }
                        let shape = ns.backend.shape();
                        let from_step = ns.step_count;
                        let ck = {
                            let (_, blob) = buddy
                                .held_blob(shape.rank)
                                .ok_or(RecoveryError::Restore(CheckpointError::Truncated))?;
                            Checkpoint::decode(blob).map_err(RecoveryError::Restore)?
                        };
                        let fields = ck.restore::<T>(shape).map_err(RecoveryError::Restore)?;
                        let u: [SpectralField<T>; 3] = fields
                            .try_into()
                            .map_err(|_| RecoveryError::Restore(CheckpointError::Truncated))?;
                        ns.u = u;
                        ns.step_count = ck.step;
                        ns.time = ck.time;
                        ns.integrity_events.push(IntegrityEvent::Rollback {
                            from_step,
                            to_step: ck.step,
                        });
                        recovery_span(&active_comm, &mut logical, "integrity-rollback");
                        continue;
                    }
                    if ns.step_count.is_multiple_of(heal.protect_every)
                        || ns.step_count == heal.until_step
                    {
                        buddy
                            .protect(&active_comm, &ns)
                            .map_err(RecoveryError::Protect)?;
                    }
                }
                Ok(StepOutcome::Done)
            },
        ));
        match attempt {
            Ok(Ok(StepOutcome::Done)) => {
                integrity_log.append(&mut ns.integrity_events);
                return Ok(Some(HealedRun {
                    rank: active_comm.rank(),
                    u: ns.u,
                    step: ns.step_count,
                    time: ns.time,
                    p,
                    heals,
                    events,
                    integrity_events: integrity_log,
                }));
            }
            Ok(Ok(StepOutcome::Idle)) => return Ok(None),
            Ok(Err(typed)) => return Err(typed),
            Err(payload) => {
                let me = active_comm.global_rank(active_comm.rank());
                let departed = active_comm.departed();
                if departed.iter().any(|&(r, _)| r == me) {
                    // This rank *is* the dead one (its own injected crash
                    // unwound into the supervisor): die for real.
                    resume_unwind(payload);
                }
                if !active_comm.resilient() || departed.len() == known_failed {
                    // Not a failure-detection panic (genuine bug, or a
                    // non-resilient job): propagate.
                    resume_unwind(payload);
                }
                known_failed = departed.len();
                heals += 1;
                events.push(RecoveryEvent::Detect {
                    failed: departed.clone(),
                });
                recovery_span(&active_comm, &mut logical, "detect");
                if heals > heal.max_heals {
                    return Err(RecoveryError::TooManyFailures { heals });
                }
                pending_recovery = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_fft::SlabFftCpu;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use crate::ns::TimeScheme;
    use psdns_chaos::{ChaosConfig, FaultPlan};
    use psdns_comm::Universe;

    fn cfg() -> NsConfig {
        NsConfig {
            nu: 0.05,
            dt: 1e-3,
            scheme: TimeScheme::Rk2,
            forcing: None,
            dealias: true,
            phase_shift: false,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let shape = LocalShape::new(8, 1, 0);
        let u = taylor_green::<f64>(shape);
        let ck = Checkpoint::capture(&[&u[0], &u[1], &u[2]], 0.5, 12);
        let store = CheckpointStore::new();
        store.save(0, &ck).unwrap();
        assert_eq!(store.load(0).unwrap().unwrap(), ck);
        assert!(store.load(1).is_none());
        assert_eq!(store.ranks(), vec![0]);
    }

    #[test]
    fn injected_write_fault_exhausts_retries() {
        let mut c = ChaosConfig::new(9);
        c.write_fault = FaultPlan::with_prob(1.0);
        c.retry.backoff = std::time::Duration::ZERO;
        let store = CheckpointStore::with_chaos(&ChaosEngine::new(c));
        let shape = LocalShape::new(8, 1, 0);
        let u = taylor_green::<f64>(shape);
        let ck = Checkpoint::capture(&[&u[0]], 0.0, 0);
        assert_eq!(store.save(0, &ck), Err(CheckpointError::WriteFailed));
        assert!(store.load(0).is_none(), "failed write must not store bytes");
    }

    #[test]
    fn injected_truncation_and_corruption_detected_at_load() {
        let shape = LocalShape::new(8, 1, 0);
        let u = taylor_green::<f64>(shape);
        let ck = Checkpoint::capture(&[&u[0]], 0.0, 0);

        let mut c = ChaosConfig::new(4);
        c.truncate_checkpoint = FaultPlan::with_prob(1.0);
        let store = CheckpointStore::with_chaos(&ChaosEngine::new(c));
        store.save(0, &ck).unwrap();
        assert_eq!(store.load(0), Some(Err(CheckpointError::Truncated)));

        let mut c = ChaosConfig::new(4);
        c.corrupt_checkpoint = FaultPlan::with_prob(1.0);
        let store = CheckpointStore::with_chaos(&ChaosEngine::new(c));
        store.save(0, &ck).unwrap();
        assert!(matches!(
            store.load(0),
            Some(Err(CheckpointError::Corrupt { .. }))
        ));
    }

    #[test]
    fn restore_or_init_resumes_bit_exactly() {
        let store = CheckpointStore::new();
        let out = Universe::run(2, {
            let store = store.clone();
            move |comm| {
                let shape = LocalShape::new(8, 2, comm.rank());
                let mk = || taylor_green::<f64>(shape);
                let (mut ns, resumed) =
                    restore_or_init(&store, SlabFftCpu::<f64>::new(shape, comm), cfg(), mk);
                assert!(!resumed);
                run_checkpointed(&mut ns, &store, 3, 2).unwrap();
                (ns.step_count, ns.u[0].data.clone())
            }
        });
        // Second "job": must resume from step 3 with identical state.
        let resumed = Universe::run(2, {
            let store = store.clone();
            move |comm| {
                let shape = LocalShape::new(8, 2, comm.rank());
                let mk = || taylor_green::<f64>(shape);
                let (ns, resumed) =
                    restore_or_init(&store, SlabFftCpu::<f64>::new(shape, comm), cfg(), mk);
                assert!(resumed);
                (ns.step_count, ns.u[0].data.clone())
            }
        });
        for (a, b) in out.iter().zip(&resumed) {
            assert_eq!(a.0, 3);
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1, "resume must be bit-exact");
        }
    }

    #[test]
    fn inconsistent_checkpoint_set_falls_back_to_init() {
        // Rank 1's slot is corrupted: both ranks must agree to start fresh.
        let store = CheckpointStore::new();
        let shape0 = LocalShape::new(8, 2, 0);
        let u = taylor_green::<f64>(shape0);
        store
            .save(0, &Checkpoint::capture(&[&u[0], &u[1], &u[2]], 1.0, 5))
            .unwrap();
        store.slots.lock().insert(1, vec![0xde, 0xad]);
        let out = Universe::run(2, move |comm| {
            let shape = LocalShape::new(8, 2, comm.rank());
            let mk = || taylor_green::<f64>(shape);
            let (ns, resumed) =
                restore_or_init(&store, SlabFftCpu::<f64>::new(shape, comm), cfg(), mk);
            (resumed, ns.step_count)
        });
        for (resumed, step) in out {
            assert!(!resumed);
            assert_eq!(step, 0);
        }
    }

    #[test]
    fn buddy_store_replicates_to_cyclic_successors() {
        let out = Universe::run(3, |comm| {
            let shape = LocalShape::new(6, 3, comm.rank());
            let u = taylor_green::<f64>(shape);
            let ck = Checkpoint::capture(&[&u[0], &u[1], &u[2]], 0.0, 0);
            let mut buddy = BuddyStore::new(1);
            buddy.protect_checkpoint(&comm, &ck).unwrap();
            let one = buddy.held_ranks();
            let mut wide = BuddyStore::new(5); // clamps to size - 1
            wide.protect_checkpoint(&comm, &ck).unwrap();
            (one, wide.held_ranks())
        });
        // K = 1: own slab plus the cyclic predecessor's.
        assert_eq!(out[0].0, vec![0, 2]);
        assert_eq!(out[1].0, vec![0, 1]);
        assert_eq!(out[2].0, vec![1, 2]);
        // K clamped to size - 1: everyone holds everything.
        for (_, wide) in &out {
            assert_eq!(*wide, vec![0, 1, 2]);
        }
    }

    #[test]
    fn held_stream_roundtrips_through_padding() {
        let shape = LocalShape::new(6, 1, 0);
        let u = taylor_green::<f64>(shape);
        let ck = Checkpoint::capture(&[&u[0], &u[1], &u[2]], 0.25, 7);
        let mut buddy = BuddyStore::new(1);
        buddy.held.insert(ck.rank, (ck.step, ck.encode()));
        let mut frame = buddy.encode_held();
        frame.resize(frame.len() + 64, 0); // allgather padding
        let blobs = decode_held_stream(&frame);
        assert_eq!(blobs.len(), 1);
        assert_eq!(Checkpoint::decode(&blobs[0]).unwrap(), ck);
    }

    #[test]
    fn largest_divisor_picks_biggest_fit() {
        assert_eq!(largest_divisor_at_most(8, 3), 2);
        assert_eq!(largest_divisor_at_most(8, 8), 8);
        assert_eq!(largest_divisor_at_most(12, 5), 4);
        assert_eq!(largest_divisor_at_most(8, 1), 1);
    }

    #[test]
    fn self_healing_without_failures_completes() {
        let out = Universe::run(2, |comm| {
            let heal = SelfHealingConfig {
                until_step: 3,
                ..Default::default()
            };
            let run = run_self_healing(
                comm,
                8,
                cfg(),
                heal,
                SlabFftCpu::<f64>::new,
                taylor_green::<f64>,
            )
            .unwrap()
            .expect("no shrink, every rank stays active");
            (run.step, run.p, run.heals, run.events.len())
        });
        for r in out {
            assert_eq!(r, (3, 2, 0, 0));
        }
    }

    #[test]
    fn self_healing_survives_rank_loss() {
        let mut c = ChaosConfig::new(11);
        c.crash_rank = Some(1);
        c.crash = FaultPlan::at(10);
        let out = Universe::run_resilient(2, ChaosEngine::new(c), |comm| {
            let heal = SelfHealingConfig {
                until_step: 4,
                ..Default::default()
            };
            run_self_healing(
                comm,
                8,
                cfg(),
                heal,
                SlabFftCpu::<f64>::new,
                taylor_green::<f64>,
            )
            .map(|opt| opt.map(|r| (r.step, r.p, r.heals, format!("{:?}", r.events))))
        })
        .expect("job survives");
        assert!(out[1].is_none(), "crashed rank leaves a None slot");
        let r0 = out[0]
            .as_ref()
            .expect("survivor finishes")
            .as_ref()
            .expect("no recovery error")
            .as_ref()
            .expect("survivor stays active");
        assert_eq!((r0.0, r0.1, r0.2), (4, 1, 1));
        for kind in ["Detect", "Agree", "Rebuild", "Reslice", "Resume"] {
            assert!(r0.3.contains(kind), "missing {kind} in {}", r0.3);
        }
    }
}
