//! Initial conditions, constructed directly in Fourier space so they are
//! exactly reproducible for any rank count.

use psdns_fft::{Complex, Real};

use crate::field::{LocalShape, SpectralField};

/// Taylor–Green vortex:
/// `u = sin x · cos y · cos z`, `v = −cos x · sin y · cos z`, `w = 0`.
///
/// Exactly four spectral modes per component at `kx = 1`, `ky = ±1`,
/// `kz = ±1`; solenoidal by construction. The classical validation flow for
/// pseudo-spectral Navier–Stokes codes.
pub fn taylor_green<T: Real>(shape: LocalShape) -> [SpectralField<T>; 3] {
    let mut u = SpectralField::zeros(shape);
    let mut v = SpectralField::zeros(shape);
    let w = SpectralField::zeros(shape);
    let n = shape.n;
    let n3 = (n * n * n) as f64;
    // Stored coefficients are N³ × mathematical ones (see Transform3d docs).
    // û(1, ±1, ±1) = −i/8 ; v̂(1, s_y, s_z) = s_y·i/8.
    for sy in [1i64, -1] {
        for sz in [1i64, -1] {
            let iy = if sy == 1 { 1 } else { n - 1 };
            let iz_global = if sz == 1 { 1 } else { n - 1 };
            let owner = iz_global / shape.mz;
            if owner != shape.rank {
                continue;
            }
            let zl = iz_global - owner * shape.mz;
            *u.at_mut(1, iy, zl) = Complex::from_f64(0.0, -n3 / 8.0);
            *v.at_mut(1, iy, zl) = Complex::from_f64(0.0, sy as f64 * n3 / 8.0);
        }
    }
    [u, v, w]
}

/// Deterministic hash → uniform floats in [0, 1) for mode-seeded phases.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Random solenoidal field with prescribed energy spectrum shape
/// `E(k) ∝ k⁴·exp(−2(k/k0)²)` (normalize afterwards with
/// [`normalize_energy`] if a specific total energy is needed).
///
/// Phases come from a hash of `(seed, kx, ky, kz)` using the canonical
/// (sign-normalized) representative of each conjugate pair, so the field is
/// identical for every rank count — a must for the cross-backend and
/// cross-decomposition equivalence tests.
pub fn random_solenoidal<T: Real>(shape: LocalShape, k0: f64, seed: u64) -> [SpectralField<T>; 3] {
    let s = shape;
    let grid = s.grid();
    let mut f = [
        SpectralField::zeros(s),
        SpectralField::zeros(s),
        SpectralField::zeros(s),
    ];
    let spectrum = |k: f64| k.powi(4) * (-2.0 * (k / k0) * (k / k0)).exp();

    let n = s.n;
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..n {
            for x in 0..s.nxh {
                if !grid.keep(x, y, z) {
                    continue;
                }
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let kmag = (kx * kx + ky * ky + kz * kz).sqrt();
                if kmag == 0.0 {
                    continue;
                }
                // Canonical representative of the conjugate pair: kx > 0 is
                // already canonical (half spectrum); on the kx = 0 plane use
                // the lexicographically positive member.
                let (ckx, cky, ckz, conj) = if kx > 0.0 {
                    (kx as i64, ky as i64, kz as i64, false)
                } else {
                    let (a, b) = (ky as i64, kz as i64);
                    if (a, b) > (-a, -b) {
                        (0, a, b, false)
                    } else {
                        (0, -a, -b, true)
                    }
                };
                let h = splitmix(
                    seed ^ (ckx as u64).wrapping_mul(0x1000_0000_01B3)
                        ^ ((cky + n as i64) as u64).wrapping_mul(0x0100_0191)
                        ^ ((ckz + n as i64) as u64).wrapping_mul(0x5DEECE66D),
                );
                let amp = spectrum(kmag).sqrt();
                for (c, comp) in f.iter_mut().enumerate() {
                    let hc = splitmix(h ^ (c as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                    let phase = 2.0 * std::f64::consts::PI * unit_f64(hc);
                    let re = amp * phase.cos();
                    let im = amp * phase.sin();
                    let val = if conj {
                        Complex::from_f64(re, -im)
                    } else {
                        Complex::from_f64(re, im)
                    };
                    let i = s.spec_idx(x, y, zl);
                    comp.data[i] = val;
                }
            }
        }
    }
    // Project to solenoidal.
    crate::ns::project_and_dealias(&mut f, true);
    // Fix conjugate-symmetry self-pairs on the kx = 0 plane where
    // (0, ky, kz) == (0, -ky, -kz) (i.e. ky, kz ∈ {0, n/2}): force real.
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for &y in &[0usize, n / 2] {
            if z == 0 || z == n / 2 {
                for comp in f.iter_mut() {
                    let i = s.spec_idx(0, y, zl);
                    let v = comp.data[i];
                    comp.data[i] = Complex::new(v.re, T::ZERO);
                }
            }
        }
    }
    f
}

/// Scale a field triple so total kinetic energy (in mathematical units,
/// `E = ½⟨|u|²⟩`) equals `e_total`. Requires a communicator for the global
/// reduction; exposed separately so callers control when reductions happen.
pub fn normalize_energy<T: Real>(
    f: &mut [SpectralField<T>; 3],
    e_total: f64,
    comm: &psdns_comm::Communicator,
) {
    let current = crate::stats::flow_stats(f, 0.0, comm).energy;
    if current > 0.0 {
        let scale = T::from_f64((e_total / current).sqrt());
        for c in f.iter_mut() {
            for v in c.data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdns_comm::Universe;

    #[test]
    fn taylor_green_is_divergence_free() {
        let shape = LocalShape::new(16, 1, 0);
        let u = taylor_green::<f64>(shape);
        let grid = shape.grid();
        for zl in 0..shape.mz {
            for y in 0..shape.n {
                for x in 0..shape.nxh {
                    let [kx, ky, kz] = grid.k_vec(x, y, zl);
                    let i = shape.spec_idx(x, y, zl);
                    let div =
                        u[0].data[i].scale(kx) + u[1].data[i].scale(ky) + u[2].data[i].scale(kz);
                    assert!(div.abs() < 1e-9, "div at ({x},{y},{zl})");
                }
            }
        }
    }

    #[test]
    fn taylor_green_matches_closed_form_in_physical_space() {
        use crate::dist_fft::SlabFftCpu;
        use crate::field::Transform3d;
        let n = 16;
        let out = Universe::run(2, move |comm| {
            let shape = LocalShape::new(n, 2, comm.rank());
            let mut fft = SlabFftCpu::<f64>::new(shape, comm);
            let u = taylor_green(shape);
            let phys = fft.fourier_to_physical(&u);
            let h = 2.0 * std::f64::consts::PI / n as f64;
            let mut err = 0.0f64;
            for z in 0..n {
                for yl in 0..shape.my {
                    let y = shape.y_global(yl);
                    for x in 0..n {
                        let (xx, yy, zz) = (x as f64 * h, y as f64 * h, z as f64 * h);
                        let eu = xx.sin() * yy.cos() * zz.cos();
                        let ev = -xx.cos() * yy.sin() * zz.cos();
                        err = err.max((phys[0].at(x, yl, z) - eu).abs());
                        err = err.max((phys[1].at(x, yl, z) - ev).abs());
                        err = err.max(phys[2].at(x, yl, z).abs());
                    }
                }
            }
            err
        });
        for e in out {
            assert!(e < 1e-10, "TG physical error {e}");
        }
    }

    #[test]
    fn random_field_is_rank_invariant() {
        let n = 12;
        let gather = |p: usize| -> Vec<psdns_fft::Complex64> {
            let slabs = Universe::run(p, move |comm| {
                let shape = LocalShape::new(n, p, comm.rank());
                let f = random_solenoidal::<f64>(shape, 3.0, 42);
                f[0].data.clone()
            });
            slabs.concat()
        };
        let one = gather(1);
        let four = gather(4);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn random_field_transforms_to_real_data() {
        // If conjugate symmetry were broken, the c2r transform would not be
        // the true inverse and a roundtrip would drift.
        use crate::dist_fft::SlabFftCpu;
        use crate::field::Transform3d;
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(12, 2, comm.rank());
            let mut fft = SlabFftCpu::<f64>::new(shape, comm);
            let f = random_solenoidal::<f64>(shape, 3.0, 7);
            let phys = fft.fourier_to_physical(&f);
            let back = fft.physical_to_fourier(&phys);
            let mut err = 0.0f64;
            for (a, b) in back.iter().zip(&f) {
                for (x, y) in a.data.iter().zip(&b.data) {
                    err = err.max((*x - *y).abs());
                }
            }
            err
        });
        for e in out {
            assert!(e < 1e-9, "symmetry violation: roundtrip error {e}");
        }
    }
}
