//! Spectral differential operators on z-slab fields — the building blocks
//! of the pseudo-spectral method: differentiation is multiplication by
//! `i·k` in Fourier space (paper §2).
//!
//! All operators are local to a rank (no communication): the z-slab layout
//! keeps complete `(kx, ky)` planes per local `kz`.

use psdns_fft::Real;

use crate::field::SpectralField;

/// `∇f`: returns the three components `i·k_j·f̂`.
pub fn gradient<T: Real>(f: &SpectralField<T>) -> [SpectralField<T>; 3] {
    let s = f.shape;
    let grid = s.grid();
    let mut out = [
        SpectralField::zeros(s),
        SpectralField::zeros(s),
        SpectralField::zeros(s),
    ];
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let i = s.spec_idx(x, y, zl);
                let v = f.data[i];
                out[0].data[i] = v.scale(T::from_f64(kx)).mul_i();
                out[1].data[i] = v.scale(T::from_f64(ky)).mul_i();
                out[2].data[i] = v.scale(T::from_f64(kz)).mul_i();
            }
        }
    }
    out
}

/// `∇·u`: `i·k·û`.
pub fn divergence<T: Real>(u: &[SpectralField<T>; 3]) -> SpectralField<T> {
    let s = u[0].shape;
    let grid = s.grid();
    let mut out = SpectralField::zeros(s);
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let i = s.spec_idx(x, y, zl);
                out.data[i] = (u[0].data[i].scale(T::from_f64(kx))
                    + u[1].data[i].scale(T::from_f64(ky))
                    + u[2].data[i].scale(T::from_f64(kz)))
                .mul_i();
            }
        }
    }
    out
}

/// `∇×u`: the spectral curl `i·k×û` — vorticity when applied to velocity
/// (the quantity the solver pairs with `u` in the rotational-form nonlinear
/// term).
pub fn curl<T: Real>(u: &[SpectralField<T>; 3]) -> [SpectralField<T>; 3] {
    let s = u[0].shape;
    let grid = s.grid();
    let mut w = [
        SpectralField::zeros(s),
        SpectralField::zeros(s),
        SpectralField::zeros(s),
    ];
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let i = s.spec_idx(x, y, zl);
                let (ux, uy, uz) = (u[0].data[i], u[1].data[i], u[2].data[i]);
                w[0].data[i] = (uz.scale(T::from_f64(ky)) - uy.scale(T::from_f64(kz))).mul_i();
                w[1].data[i] = (ux.scale(T::from_f64(kz)) - uz.scale(T::from_f64(kx))).mul_i();
                w[2].data[i] = (uy.scale(T::from_f64(kx)) - ux.scale(T::from_f64(ky))).mul_i();
            }
        }
    }
    w
}

/// `∇²f`: `−k²·f̂`.
pub fn laplacian<T: Real>(f: &SpectralField<T>) -> SpectralField<T> {
    let s = f.shape;
    let grid = s.grid();
    let mut out = SpectralField::zeros(s);
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let i = s.spec_idx(x, y, zl);
                out.data[i] = f.data[i].scale(T::from_f64(-grid.k_sqr(x, y, z)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use psdns_fft::Complex64;

    fn single_mode(shape: LocalShape, kx: usize, iy: usize, izg: usize) -> SpectralField<f64> {
        let mut f = SpectralField::zeros(shape);
        let owner = izg / shape.mz;
        if owner == shape.rank {
            *f.at_mut(kx, iy, izg - owner * shape.mz) = Complex64::new(1.0, 0.0);
        }
        f
    }

    #[test]
    fn gradient_of_plane_wave() {
        // f̂ at k = (2, 3, -1): ∇f components are i·k_j at that mode.
        let n = 8;
        let shape = LocalShape::new(n, 1, 0);
        let f = single_mode(shape, 2, 3, n - 1);
        let g = gradient(&f);
        let i = shape.spec_idx(2, 3, n - 1);
        assert_eq!(g[0].data[i], Complex64::new(0.0, 2.0));
        assert_eq!(g[1].data[i], Complex64::new(0.0, 3.0));
        assert_eq!(g[2].data[i], Complex64::new(0.0, -1.0));
        // all other modes zero
        let total: f64 = g.iter().map(|c| c.mode_energy_local()).sum();
        let at_mode: f64 = 2.0 * (4.0 + 9.0 + 1.0); // conjugate weight 2 (kx>0)
        assert!((total - at_mode).abs() < 1e-12);
    }

    #[test]
    fn divergence_of_solenoidal_is_zero() {
        let shape = LocalShape::new(16, 1, 0);
        let u = taylor_green::<f64>(shape);
        let d = divergence(&u);
        assert!(d.mode_energy_local() < 1e-18);
    }

    #[test]
    fn curl_of_gradient_is_zero() {
        let shape = LocalShape::new(8, 1, 0);
        let f = single_mode(shape, 1, 2, 3);
        let g = gradient(&f);
        let c = curl(&g);
        let total: f64 = c.iter().map(|x| x.mode_energy_local()).sum();
        assert!(total < 1e-24, "∇×∇f must vanish: {total}");
    }

    #[test]
    fn divergence_of_curl_is_zero() {
        let shape = LocalShape::new(8, 1, 0);
        // Arbitrary (non-solenoidal) vector field, one mode per component.
        let u = [
            single_mode(shape, 1, 1, 0),
            single_mode(shape, 2, 0, 1),
            single_mode(shape, 0, 3, 2),
        ];
        let w = curl(&u);
        let d = divergence(&w);
        assert!(d.mode_energy_local() < 1e-24);
    }

    #[test]
    fn laplacian_matches_k_squared() {
        let n = 8;
        let shape = LocalShape::new(n, 1, 0);
        let f = single_mode(shape, 2, 1, 1);
        let l = laplacian(&f);
        let i = shape.spec_idx(2, 1, 1);
        assert_eq!(l.data[i], Complex64::new(-6.0, 0.0)); // k² = 4+1+1
    }

    #[test]
    fn curl_matches_solver_vorticity() {
        // Taylor–Green: ω = ∇×u must have enstrophy 3·E = 0.375·2 = …
        let shape = LocalShape::new(16, 1, 0);
        let u = taylor_green::<f64>(shape);
        let w = curl(&u);
        let n6 = ((shape.n as f64).powi(3)).powi(2);
        let enstrophy: f64 = w.iter().map(|c| 0.5 * c.mode_energy_local() / n6).sum();
        assert!((enstrophy - 0.375).abs() < 1e-12, "enstrophy {enstrophy}");
    }
}
