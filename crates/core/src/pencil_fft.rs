//! 2-D pencil-decomposed distributed 3-D FFT on the CPU — the traditional
//! design used by state-of-the-art CPU turbulence codes ([10, 11, 23] in the
//! paper) and by the synchronous CPU baseline of Table 3.
//!
//! Ranks form a `pr × pc` Cartesian grid with *row* communicators (size pc,
//! fixed row coordinate) and *column* communicators (size pr, fixed column
//! coordinate); two smaller all-to-alls replace the slab code's single
//! global one (paper §3.1).
//!
//! Layouts (x fastest):
//! * **Fourier (z-pencils)**: `(xw_r, yw, n)` — x distributed over rows
//!   (uneven: `nxh` is odd), y distributed over columns, z complete;
//! * **mid (y-pencils)**: `(xw_r, n, zw)` — after the row exchange
//!   (z ↔ y within a row);
//! * **physical (x-pencils)**: `(n, my, zw)` real — after the column
//!   exchange (y ↔ x within a column) and the c2r transform in x.

use psdns_comm::Communicator;
use psdns_domain::decomp::{split_even, Pencil2d};
use psdns_fft::{Complex, Direction, ManyPlan, ManyRealPlan, Real};

use crate::field::LocalShape;

/// Pencil-decomposed transform state for one rank.
pub struct PencilFftCpu<T: Real> {
    pub decomp: Pencil2d,
    /// This rank's (row, col) coordinates.
    pub coords: (usize, usize),
    world: Communicator,
    row_comm: Communicator,
    col_comm: Communicator,
    nxh: usize,
    /// x range owned in the Fourier/mid phases (split of nxh over pr).
    xr: std::ops::Range<usize>,
    /// Batched x r2c/c2r over every (yl, zl) line of an x-pencil at once:
    /// dense real lines (dist n) against dense half-spectrum lines
    /// (dist nxh).
    plan_x: ManyRealPlan<T>,
    /// y lines on y-pencils: stride xw, one batch per x (per z plane).
    plan_y: ManyPlan<T>,
    /// z lines on z-pencils: stride xw·yw, one batch per (x, yl).
    plan_z: ManyPlan<T>,
    scratch: Vec<Complex<T>>,
    /// Shared workspace for the batched y/z transforms.
    cscratch: Vec<Complex<T>>,
    /// Reusable alltoallv staging buffer.
    sendv: Vec<Complex<T>>,
    /// Within-rank worker threads for the batched 1-D FFTs (1 = serial).
    threads: usize,
}

impl<T: Real> PencilFftCpu<T> {
    pub fn new(n: usize, pr: usize, pc: usize, world: Communicator) -> Self {
        let decomp = Pencil2d::new(n, pr, pc);
        assert_eq!(world.size(), decomp.size(), "communicator != pr·pc");
        let coords = decomp.coords(world.rank());
        // Row communicator: same row, ordered by column (and vice versa).
        let row_comm = world.split(coords.0, coords.1);
        let col_comm = world.split(pr + coords.1, coords.0);
        let nxh = n / 2 + 1;
        let xr = split_even(nxh, pr, coords.0);
        let my2 = n / pr;
        let zw = n / pc;
        let plan_x = ManyRealPlan::new(n, my2 * zw, 1, n, 1, nxh);
        let scratch = vec![Complex::zero(); plan_x.scratch_len() + 4 * n];
        let xw = xr.len();
        let yw = n / pc;
        let plan_y = ManyPlan::new(n, xw, 1, xw);
        let plan_z = ManyPlan::new(n, xw * yw, 1, xw * yw);
        let cscratch = vec![Complex::zero(); plan_y.scratch_len().max(plan_z.scratch_len())];
        Self {
            decomp,
            coords,
            world,
            row_comm,
            col_comm,
            nxh,
            xr,
            plan_x,
            plan_y,
            plan_z,
            scratch,
            cscratch,
            sendv: Vec::new(),
            threads: 1,
        }
    }

    /// Enable hybrid within-rank threading: the batched y/z transforms fan
    /// out over the persistent worker pool (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    /// In-place z transform of one z-pencil (all lines, stride xw·yw).
    fn z_transform(&mut self, buf: &mut [Complex<T>], dir: Direction) {
        if self.threads > 1 {
            self.plan_z.execute_parallel(buf, dir, self.threads);
        } else {
            self.plan_z
                .execute_with_scratch(buf, &mut self.cscratch, dir);
        }
    }

    /// In-place y transform of one z plane of a y-pencil (stride xw).
    fn y_transform(&mut self, plane: &mut [Complex<T>], dir: Direction) {
        if self.threads > 1 {
            self.plan_y.execute_parallel(plane, dir, self.threads);
        } else {
            self.plan_y
                .execute_with_scratch(plane, &mut self.cscratch, dir);
        }
    }

    pub fn world(&self) -> &Communicator {
        &self.world
    }

    /// A [`LocalShape`]-style summary (note: pencil layouts differ from the
    /// slab shapes; this is for problem-size metadata only).
    pub fn shape_meta(&self) -> LocalShape {
        LocalShape::new(self.decomp.n, 1, 0)
    }

    /// x width owned in the spectral phases.
    pub fn xw(&self) -> usize {
        self.xr.len()
    }

    /// y width in the Fourier/mid phases (split of n over pc).
    pub fn yw(&self) -> usize {
        self.decomp.n / self.decomp.pc
    }

    /// Fourier-space local length (z-pencil) per variable.
    pub fn spec_len(&self) -> usize {
        self.xw() * self.yw() * self.decomp.n
    }

    /// Physical-space local length (x-pencil) per variable.
    pub fn phys_len(&self) -> usize {
        self.decomp.n * self.decomp.my() * self.decomp.mz()
    }

    /// Index into the Fourier z-pencil: `(xl, yl, z)`.
    #[inline]
    pub fn spec_idx(&self, xl: usize, yl: usize, z: usize) -> usize {
        xl + self.xw() * (yl + self.yw() * z)
    }

    /// Index into the physical x-pencil: `(x, yl, zl)`.
    #[inline]
    pub fn phys_idx(&self, x: usize, yl: usize, zl: usize) -> usize {
        x + self.decomp.n * (yl + self.decomp.my() * zl)
    }

    /// Fourier → physical for `nv` variables (two all-to-alls total…
    /// per variable set, like the slab code's single one).
    pub fn fourier_to_physical(&mut self, specs: &[Vec<Complex<T>>]) -> Vec<Vec<T>> {
        let nv = specs.len();
        let n = self.decomp.n;
        let yw = self.yw();
        let (xw, pc, pr) = (self.xw(), self.decomp.pc, self.decomp.pr);

        // 1. z-inverse on z-pencils (full z, stride xw·yw).
        let mut work: Vec<Vec<Complex<T>>> = Vec::with_capacity(nv);
        for f in specs {
            assert_eq!(f.len(), self.spec_len());
            let mut w = f.clone();
            self.z_transform(&mut w, Direction::Inverse);
            work.push(w);
        }
        let work = work;

        // 2. Row exchange (z ↔ y): send z-range d to row member d.
        //    Block order within a chunk: (v, zl, yl, xl).
        let zw = n / pc;
        let chunk = nv * xw * yw * zw;
        let mut send = vec![Complex::<T>::zero(); pc * chunk];
        for d in 0..pc {
            for (v, w) in work.iter().enumerate() {
                for zl in 0..zw {
                    let z = d * zw + zl;
                    for yl in 0..yw {
                        let src = self.spec_idx(0, yl, z);
                        let dst = d * chunk + xw * (yl + yw * (zl + zw * v));
                        send[dst..dst + xw].copy_from_slice(&w[src..src + xw]);
                    }
                }
            }
        }
        crate::integrity::inject_buf_flip(&self.row_comm, "row-inv", &mut send);
        let recv = self.row_comm.alltoall(&send);
        // Mid layout (y-pencils): (xw, n, zw); y from source s covers s·yw….
        let mid_len = xw * n * zw;
        let mut mid: Vec<Vec<Complex<T>>> =
            (0..nv).map(|_| vec![Complex::zero(); mid_len]).collect();
        for (v, m) in mid.iter_mut().enumerate() {
            for s in 0..pc {
                for zl in 0..zw {
                    for yl in 0..yw {
                        let y = s * yw + yl;
                        let src = s * chunk + xw * (yl + yw * (zl + zw * v));
                        let dst = xw * (y + n * zl);
                        m[dst..dst + xw].copy_from_slice(&recv[src..src + xw]);
                    }
                }
            }
        }

        // 3. y-inverse (stride xw) on each z plane of the y-pencils.
        for m in &mut mid {
            for zl in 0..zw {
                let base = zl * xw * n;
                self.y_transform(&mut m[base..base + xw * n], Direction::Inverse);
            }
        }

        // 4. Column exchange (y ↔ x): uneven x widths → alltoallv.
        //    Send to column member d its y-range, all of our x.
        let my2 = n / pr; // y per rank after this exchange (= my)
        let mut sendv = std::mem::take(&mut self.sendv);
        sendv.clear();
        let mut counts = Vec::with_capacity(pr);
        for d in 0..pr {
            let before = sendv.len();
            for m in &mid {
                for zl in 0..zw {
                    for yl in 0..my2 {
                        let y = d * my2 + yl;
                        let src = xw * (y + n * zl);
                        sendv.extend_from_slice(&m[src..src + xw]);
                    }
                }
            }
            counts.push(sendv.len() - before);
        }
        let (recvv, rcounts) = self.col_comm.alltoallv(&sendv, &counts);
        self.sendv = sendv; // park for reuse

        // Assemble full-x spectral pencils (nxh, my2, zw) and c2r transform.
        let mut out = Vec::with_capacity(nv);
        let mut lines: Vec<Vec<Complex<T>>> = (0..nv)
            .map(|_| vec![Complex::zero(); self.nxh * my2 * zw])
            .collect();
        let mut offset = 0;
        #[allow(clippy::needless_range_loop)]
        for s in 0..pr {
            let sxr = split_even(self.nxh, pr, s);
            let sxw = sxr.len();
            assert_eq!(rcounts[s], nv * sxw * my2 * zw, "alltoallv count mismatch");
            for (v, l) in lines.iter_mut().enumerate() {
                for zl in 0..zw {
                    for yl in 0..my2 {
                        let dst = sxr.start + self.nxh * (yl + my2 * zl);
                        let src = offset + sxw * (yl + my2 * (zl + zw * v));
                        l[dst..dst + sxw].copy_from_slice(&recvv[src..src + sxw]);
                    }
                }
            }
            offset += rcounts[s];
        }
        for l in &lines {
            let mut phys = vec![T::ZERO; self.phys_len()];
            // Batched x c2r: every (yl, zl) line of the pencil in one call.
            if self.threads > 1 {
                self.plan_x.inverse_parallel(l, &mut phys, self.threads);
            } else {
                self.plan_x
                    .inverse_with_scratch(l, &mut phys, &mut self.scratch);
            }
            out.push(phys);
        }
        out
    }

    /// Physical → Fourier (mirror of
    /// [`fourier_to_physical`](Self::fourier_to_physical)).
    pub fn physical_to_fourier(&mut self, phys: &[Vec<T>]) -> Vec<Vec<Complex<T>>> {
        let nv = phys.len();
        let n = self.decomp.n;
        let yw = self.yw();
        let (xw, pc, pr) = (self.xw(), self.decomp.pc, self.decomp.pr);
        let zw = n / pc;
        let my2 = n / pr;

        // 1. x r2c on x-pencils — batched over every (yl, zl) line at once.
        let mut lines: Vec<Vec<Complex<T>>> = Vec::with_capacity(nv);
        for f in phys {
            assert_eq!(f.len(), self.phys_len());
            let mut l = vec![Complex::<T>::zero(); self.nxh * my2 * zw];
            if self.threads > 1 {
                self.plan_x.forward_parallel(f, &mut l, self.threads);
            } else {
                self.plan_x
                    .forward_with_scratch(f, &mut l, &mut self.scratch);
            }
            lines.push(l);
        }

        // 2. Column exchange (x ↔ y): send x-range of member d, keep our y.
        let mut sendv = std::mem::take(&mut self.sendv);
        sendv.clear();
        let mut counts = Vec::with_capacity(pr);
        for d in 0..pr {
            let dxr = split_even(self.nxh, pr, d);
            let before = sendv.len();
            for l in &lines {
                for zl in 0..zw {
                    for yl in 0..my2 {
                        let src = dxr.start + self.nxh * (yl + my2 * zl);
                        sendv.extend_from_slice(&l[src..src + dxr.len()]);
                    }
                }
            }
            counts.push(sendv.len() - before);
        }
        let (recvv, rcounts) = self.col_comm.alltoallv(&sendv, &counts);
        self.sendv = sendv; // park for reuse
                            // Mid layout (xw, n, zw): y from source s at s·my2….
        let mid_len = xw * n * zw;
        let mut mid: Vec<Vec<Complex<T>>> =
            (0..nv).map(|_| vec![Complex::zero(); mid_len]).collect();
        let mut offset = 0;
        #[allow(clippy::needless_range_loop)]
        for s in 0..pr {
            assert_eq!(rcounts[s], nv * xw * my2 * zw);
            for (v, m) in mid.iter_mut().enumerate() {
                for zl in 0..zw {
                    for yl in 0..my2 {
                        let y = s * my2 + yl;
                        let src = offset + xw * (yl + my2 * (zl + zw * v));
                        let dst = xw * (y + n * zl);
                        m[dst..dst + xw].copy_from_slice(&recvv[src..src + xw]);
                    }
                }
            }
            offset += rcounts[s];
        }

        // 3. y-forward.
        for m in &mut mid {
            for zl in 0..zw {
                let base = zl * xw * n;
                self.y_transform(&mut m[base..base + xw * n], Direction::Forward);
            }
        }

        // 4. Row exchange (y ↔ z): send y-range of member d.
        let chunk = nv * xw * yw * zw;
        let mut send = vec![Complex::<T>::zero(); pc * chunk];
        for d in 0..pc {
            for (v, m) in mid.iter().enumerate() {
                for zl in 0..zw {
                    for yl in 0..yw {
                        let y = d * yw + yl;
                        let src = xw * (y + n * zl);
                        let dst = d * chunk + xw * (yl + yw * (zl + zw * v));
                        send[dst..dst + xw].copy_from_slice(&m[src..src + xw]);
                    }
                }
            }
        }
        crate::integrity::inject_buf_flip(&self.row_comm, "row-fwd", &mut send);
        let recv = self.row_comm.alltoall(&send);
        let mut out: Vec<Vec<Complex<T>>> = (0..nv)
            .map(|_| vec![Complex::zero(); self.spec_len()])
            .collect();
        for (v, o) in out.iter_mut().enumerate() {
            for s in 0..pc {
                for zl in 0..zw {
                    let z = s * zw + zl;
                    for yl in 0..yw {
                        let src = s * chunk + xw * (yl + yw * (zl + zw * v));
                        let dst = self.spec_idx(0, yl, z);
                        o[dst..dst + xw].copy_from_slice(&recv[src..src + xw]);
                    }
                }
            }
        }

        // 5. z-forward.
        for o in &mut out {
            self.z_transform(o, Direction::Forward);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdns_comm::Universe;
    use psdns_fft::{fft_3d, Complex64, Dims3};

    /// Physical → Fourier → physical must be the identity, and the Fourier
    /// coefficients must match a serial transform of the gathered field.
    #[test]
    fn pencil_transform_matches_serial() {
        let n = 8;
        let (pr, pc) = (2, 2);
        let results = Universe::run(pr * pc, move |comm| {
            let mut fft = PencilFftCpu::<f64>::new(n, pr, pc, comm);
            let (row, col) = fft.coords;
            let (my, mz) = (fft.decomp.my(), fft.decomp.mz());
            // Global physical field f(x,y,z); this rank owns y in
            // [row·my, …), z in [col·mz, …).
            let f = |x: usize, y: usize, z: usize| {
                ((x as f64 * 0.7 + y as f64 * 1.3 + z as f64 * 2.1).sin()) + 0.25
            };
            let mut phys = vec![0.0f64; fft.phys_len()];
            for zl in 0..mz {
                for yl in 0..my {
                    for x in 0..n {
                        phys[fft.phys_idx(x, yl, zl)] = f(x, row * my + yl, col * mz + zl);
                    }
                }
            }
            let spec = fft.physical_to_fourier(std::slice::from_ref(&phys));
            let back = fft.fourier_to_physical(&spec);
            let mut err = 0.0f64;
            for (a, b) in back[0].iter().zip(&phys) {
                err = err.max((a - b).abs());
            }
            // Return spectral data + ownership info for the serial check.
            (err, spec.into_iter().next().unwrap(), fft.xw(), row, col)
        });

        // Serial reference.
        let dims = Dims3::cube(n);
        let mut full: Vec<Complex64> = (0..dims.len())
            .map(|i| {
                let x = i % n;
                let y = (i / n) % n;
                let z = i / (n * n);
                Complex64::new(
                    ((x as f64 * 0.7 + y as f64 * 1.3 + z as f64 * 2.1).sin()) + 0.25,
                    0.0,
                )
            })
            .collect();
        fft_3d(&mut full, dims, Direction::Forward);

        let nxh = n / 2 + 1;
        for (err, spec, xw, row, col) in &results {
            assert!(*err < 1e-9, "roundtrip error {err}");
            let xr = split_even(nxh, 2, *row);
            assert_eq!(*xw, xr.len());
            let my = n / 2; // pc = 2 → Fourier y width n/pc
            for z in 0..n {
                for yl in 0..my {
                    let y = col * my + yl;
                    for (xi, x) in xr.clone().enumerate() {
                        let got = spec[xi + xw * (yl + my * z)];
                        let expect = full[dims.idx(x, y, z)];
                        assert!(
                            (got - expect).abs() < 1e-8,
                            "row {row} col {col} ({x},{y},{z}): {got:?} vs {expect:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_pencil_matches_serial() {
        // Hybrid within-rank threading must be bit-compatible with the
        // serial path at the comparison tolerance.
        let n = 12;
        let (pr, pc) = (2, 2);
        let errs = Universe::run(pr * pc, move |comm| {
            let mut serial = PencilFftCpu::<f64>::new(n, pr, pc, comm.clone());
            let mut hybrid = PencilFftCpu::<f64>::new(n, pr, pc, comm).with_threads(4);
            let phys: Vec<Vec<f64>> = (0..2)
                .map(|v| {
                    (0..serial.phys_len())
                        .map(|i| ((i + v * 17) as f64 * 0.037).sin())
                        .collect()
                })
                .collect();
            let a = serial.physical_to_fourier(&phys);
            let b = hybrid.physical_to_fourier(&phys);
            let mut err = 0.0f64;
            for (x, y) in a.iter().zip(&b) {
                for (u, v) in x.iter().zip(y) {
                    err = err.max((*u - *v).abs());
                }
            }
            let back = hybrid.fourier_to_physical(&b);
            for (x, y) in back.iter().zip(&phys) {
                for (u, v) in x.iter().zip(y) {
                    err = err.max((u - v).abs());
                }
            }
            err
        });
        for e in errs {
            assert!(e < 1e-9, "threaded pencil differs: {e}");
        }
    }

    #[test]
    fn rectangular_process_grid() {
        // pr ≠ pc exercises both communicators asymmetrically.
        let n = 12;
        let (pr, pc) = (3, 2);
        let errs = Universe::run(pr * pc, move |comm| {
            let mut fft = PencilFftCpu::<f64>::new(n, pr, pc, comm);
            let phys: Vec<Vec<f64>> = (0..2)
                .map(|v| {
                    (0..fft.phys_len())
                        .map(|i| ((i + v * 31) as f64 * 0.029).cos())
                        .collect()
                })
                .collect();
            let spec = fft.physical_to_fourier(&phys);
            let back = fft.fourier_to_physical(&spec);
            let mut err = 0.0f64;
            for (a, b) in back.iter().zip(&phys) {
                for (x, y) in a.iter().zip(b) {
                    err = err.max((x - y).abs());
                }
            }
            err
        });
        for e in errs {
            assert!(e < 1e-9, "roundtrip error {e}");
        }
    }
}
