//! Passive-scalar transport — the natural extension of the paper's code
//! lineage (Clay et al. \[5\] in the paper accelerate exactly this problem,
//! turbulent mixing at high Schmidt number, on GPUs).
//!
//! A passive scalar θ obeys `∂θ/∂t + u·∇θ = κ∇²θ`. In Fourier space with
//! the advection term in conservative (divergence) form:
//! `∂θ̂/∂t = −i k·F{u·θ} − κk²θ̂`, treated with the same integrating-factor
//! RK2 as the momentum equations. The scalar rides along the velocity
//! transforms: one extra variable per transpose (the paper's `nv` knob).

use psdns_fft::{Complex, Real};

use crate::field::{PhysicalField, SpectralField, Transform3d};
use crate::ns::NavierStokes;

/// A passive scalar coupled to a [`NavierStokes`] solver.
pub struct PassiveScalar<T> {
    /// Scalar diffusivity κ (Schmidt number Sc = ν/κ).
    pub kappa: f64,
    /// Scalar field in Fourier space (z-slab layout).
    pub theta: SpectralField<T>,
}

impl<T: Real> PassiveScalar<T> {
    pub fn new(kappa: f64, theta: SpectralField<T>) -> Self {
        assert!(kappa >= 0.0);
        Self { kappa, theta }
    }

    /// Scalar variance `½⟨θ²⟩`, reduced globally.
    pub fn variance(&self, comm: &psdns_comm::Communicator) -> f64 {
        let n6 = ((self.theta.shape.n as f64).powi(3)).powi(2);
        let local = self.theta.mode_energy_local() / n6 * 0.5;
        comm.allreduce(local, |a, b| a + b)
    }

    /// Advance θ by one RK2 step with the *frozen* velocity of `ns` (the
    /// standard operator split for passive scalars: update θ with uⁿ, then
    /// step the velocity).
    pub fn step<B: Transform3d<T>>(&mut self, ns: &mut NavierStokes<T, B>) {
        let dt = ns.cfg.dt;
        let t0 = self.theta.clone();
        let n1 = self.rhs(ns, &t0);
        // Predictor with integrating factor exp(−κk²Δt).
        let mut mid = t0.clone();
        axpy_scalar(&mut mid, &n1, dt);
        self.apply_if(&mut mid, dt, ns);
        let n2 = self.rhs(ns, &mid);
        // Corrector.
        let mut new = t0;
        self.apply_if(&mut new, dt, ns);
        let mut en1 = n1;
        self.apply_if(&mut en1, dt, ns);
        axpy_scalar(&mut new, &en1, dt / 2.0);
        axpy_scalar(&mut new, &n2, dt / 2.0);
        self.theta = new;
    }

    /// `−i k·F{u θ}` with dealiasing.
    fn rhs<B: Transform3d<T>>(
        &self,
        ns: &mut NavierStokes<T, B>,
        theta: &SpectralField<T>,
    ) -> SpectralField<T> {
        let s = ns.backend.shape();
        let grid = s.grid();
        // Transform u (3) + θ (1) together: nv = 4 per transpose.
        let fields: Vec<SpectralField<T>> =
            ns.u.iter()
                .cloned()
                .chain(std::iter::once(theta.clone()))
                .collect();
        let phys = ns.backend.fourier_to_physical(&fields);
        let (up, tp) = phys.split_at(3);
        let mut flux = vec![
            PhysicalField::zeros(s),
            PhysicalField::zeros(s),
            PhysicalField::zeros(s),
        ];
        for i in 0..s.phys_len() {
            let th = tp[0].data[i];
            flux[0].data[i] = up[0].data[i] * th;
            flux[1].data[i] = up[1].data[i] * th;
            flux[2].data[i] = up[2].data[i] * th;
        }
        let spec = ns.backend.physical_to_fourier(&flux);
        let mut out = SpectralField::zeros(s);
        for zl in 0..s.mz {
            let z = s.z_global(zl);
            for y in 0..s.n {
                for x in 0..s.nxh {
                    let i = s.spec_idx(x, y, zl);
                    if !grid.keep(x, y, z) {
                        continue; // dealias
                    }
                    let [kx, ky, kz] = grid.k_vec(x, y, z);
                    let div = spec[0].data[i].scale(T::from_f64(kx))
                        + spec[1].data[i].scale(T::from_f64(ky))
                        + spec[2].data[i].scale(T::from_f64(kz));
                    // −i·(k·F{uθ})
                    out.data[i] = div.mul_neg_i();
                }
            }
        }
        out
    }

    fn apply_if<B: Transform3d<T>>(
        &self,
        f: &mut SpectralField<T>,
        h: f64,
        ns: &NavierStokes<T, B>,
    ) {
        let s = ns.backend.shape();
        let grid = s.grid();
        for zl in 0..s.mz {
            let z = s.z_global(zl);
            for y in 0..s.n {
                for x in 0..s.nxh {
                    let k2 = grid.k_sqr(x, y, z);
                    let e = T::from_f64((-self.kappa * k2 * h).exp());
                    let i = s.spec_idx(x, y, zl);
                    f.data[i] = f.data[i].scale(e);
                }
            }
        }
    }
}

fn axpy_scalar<T: Real>(y: &mut SpectralField<T>, x: &SpectralField<T>, a: f64) {
    let a = T::from_f64(a);
    for (yv, xv) in y.data.iter_mut().zip(x.data.iter()) {
        *yv += xv.scale(a);
    }
}

/// A single-mode scalar initial condition `θ = cos(k₀·x)` (stored spectral
/// convention: N³/2 at the ±k₀ pair).
pub fn scalar_single_mode<T: Real>(shape: crate::field::LocalShape, k0: usize) -> SpectralField<T> {
    let mut th = SpectralField::zeros(shape);
    let n3 = (shape.n * shape.n * shape.n) as f64;
    // kx = k0 mode (half spectrum; conjugate implied).
    if shape.rank == 0 {
        *th.at_mut(k0, 0, 0) = Complex::from_f64(n3 / 2.0, 0.0);
    }
    th
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_fft::SlabFftCpu;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use crate::ns::{NsConfig, TimeScheme};
    use psdns_comm::Universe;

    fn solver(
        n: usize,
        p: usize,
        comm: psdns_comm::Communicator,
        nu: f64,
        dt: f64,
    ) -> NavierStokes<f64, SlabFftCpu<f64>> {
        let shape = LocalShape::new(n, p, comm.rank());
        NavierStokes::new(
            SlabFftCpu::new(shape, comm),
            NsConfig {
                nu,
                dt,
                scheme: TimeScheme::Rk2,
                forcing: None,
                dealias: true,
                phase_shift: false,
            },
            taylor_green(shape),
        )
    }

    #[test]
    fn pure_diffusion_matches_analytic() {
        // Zero velocity: θ(k0) decays as exp(−κk0²t) exactly (integrating
        // factor), for the k0 = 2 mode.
        let out = Universe::run(2, |comm| {
            let kappa = 0.3;
            let dt = 5e-3;
            let steps = 40;
            let mut ns = solver(16, 2, comm, 0.0, dt);
            for c in ns.u.iter_mut() {
                for v in c.data.iter_mut() {
                    *v = psdns_fft::Complex64::zero();
                }
            }
            let shape = ns.backend.shape();
            let mut sc = PassiveScalar::new(kappa, scalar_single_mode(shape, 2));
            let v0 = sc.variance(ns.backend.comm());
            for _ in 0..steps {
                sc.step(&mut ns);
            }
            let v1 = sc.variance(ns.backend.comm());
            let t = dt * steps as f64;
            (v1, v0 * (-2.0 * kappa * 4.0 * t).exp())
        });
        for (got, expect) in out {
            assert!(
                ((got - expect) / expect).abs() < 1e-9,
                "variance {got} vs analytic {expect}"
            );
        }
    }

    #[test]
    fn advection_conserves_variance_when_nondiffusive() {
        // κ = 0 and incompressible u: scalar variance is conserved by the
        // conservative-form advection (up to time-discretization error).
        let out = Universe::run(2, |comm| {
            let mut ns = solver(16, 2, comm, 0.0, 1e-3);
            let shape = ns.backend.shape();
            let mut sc = PassiveScalar::new(0.0, scalar_single_mode(shape, 1));
            let v0 = sc.variance(ns.backend.comm());
            for _ in 0..10 {
                sc.step(&mut ns);
                ns.step();
            }
            let v1 = sc.variance(ns.backend.comm());
            (v0, v1)
        });
        for (v0, v1) in out {
            assert!(v0 > 0.0);
            assert!(((v1 - v0) / v0).abs() < 2e-3, "variance drift {v0} → {v1}");
        }
    }

    #[test]
    fn advection_spreads_scalar_across_modes() {
        let out = Universe::run(2, |comm| {
            let mut ns = solver(16, 2, comm, 0.01, 2e-3);
            let shape = ns.backend.shape();
            let mut sc = PassiveScalar::new(0.01, scalar_single_mode(shape, 1));
            for _ in 0..10 {
                sc.step(&mut ns);
                ns.step();
            }
            // Count excited modes (above noise floor).
            let count = sc
                .theta
                .data
                .iter()
                .filter(|c| c.norm_sqr() > 1e-12)
                .count();
            count
        });
        // The initial condition excites 1 local mode; advection must spread.
        assert!(out.iter().sum::<usize>() > 20, "modes: {out:?}");
    }
}
