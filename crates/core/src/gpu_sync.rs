//! The basic *synchronous* GPU algorithm of paper Fig. 2: the whole slab is
//! copied to the device at once, transformed, packed on the GPU, copied back
//! for a blocking all-to-all, and so on. It requires the entire slab (plus
//! work buffers) to fit in device memory — the limitation that motivates the
//! batched asynchronous algorithm of §3.4 ([`crate::GpuSlabFft`]).

use std::sync::Arc;

use psdns_comm::Communicator;
use psdns_device::{Copy2d, Device, PinnedBuffer, Stream};
use psdns_domain::transpose::SlabTranspose;
use psdns_fft::{Complex, Direction, ManyPlan, ManyRealPlan, Real};

use crate::error::Error;
use crate::field::{LocalShape, PhysicalField, SpectralField, Transform3d};

/// Synchronous whole-slab GPU transform (Fig. 2).
pub struct GpuSyncSlabFft<T: Real> {
    shape: LocalShape,
    comm: Communicator,
    device: Device,
    stream: Stream,
    plan_y: Arc<ManyPlan<T>>,
    plan_z: Arc<ManyPlan<T>>,
    /// Batched x r2c/c2r over one variable's whole slab (`my·n` dense
    /// lines) per call — the cuFFT-style many-plan the paper uses on device.
    plan_x: Arc<ManyRealPlan<T>>,
    /// Fused non-finite staging scan of the D2H'd send buffers (see
    /// [`Transform3d::set_scan_nonfinite`]).
    scan_nonfinite: bool,
    nonfinite_count: u64,
}

impl<T: Real> GpuSyncSlabFft<T> {
    pub fn new(shape: LocalShape, comm: Communicator, device: Device) -> Self {
        let LocalShape { n, nxh, my, .. } = shape;
        let stream = device.create_stream(&format!("sync-r{}", shape.rank));
        Self {
            shape,
            comm,
            device,
            stream,
            plan_y: Arc::new(ManyPlan::new(n, nxh, 1, nxh)),
            plan_z: Arc::new(ManyPlan::new(n, nxh * my, 1, nxh * my)),
            plan_x: Arc::new(ManyRealPlan::new(n, my * n, 1, n, 1, nxh)),
            scan_nonfinite: false,
            nonfinite_count: 0,
        }
    }

    /// Seeded corruption injection plus (when armed) the fused non-finite
    /// scan, applied to a D2H'd send buffer on its way into an all-to-all.
    fn stage_send(&mut self, class: &str, send: &mut [Complex<T>]) {
        crate::integrity::inject_buf_flip(&self.comm, class, send);
        if self.scan_nonfinite {
            self.nonfinite_count += crate::integrity::count_nonfinite_buf(send);
        }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Attach a tracer: wires a rank-tagged handle into this backend's
    /// communicator (all-to-all spans) and its device (stream span
    /// bridging), mirroring [`crate::GpuFftBuilder::tracer`].
    pub fn with_tracer(mut self, tracer: &psdns_trace::Tracer) -> Self {
        self.comm.set_tracer(tracer);
        let rank_tracer = self.comm.tracer().cloned().expect("tracer just attached");
        self.device.attach_tracer(&rank_tracer);
        self
    }

    /// Fallible variant: surfaces
    /// [`Error::Device`]`(`[`psdns_device::DeviceError::OutOfMemory`]`)` when
    /// the slab does not fit on the device (the paper's motivation for
    /// batching).
    pub fn try_fourier_to_physical(
        &mut self,
        specs: &[SpectralField<T>],
    ) -> Result<Vec<PhysicalField<T>>, Error> {
        let nv = specs.len();
        assert!(nv > 0);
        let s = self.shape;
        let t = SlabTranspose::new(s.slab(), s.nxh, nv);
        let (zlen, ylen, plen) = (t.zslab_len(), t.yslab_len(), s.phys_len());

        // Host staging (pinned, as required for async copies).
        let mut host_spec = Vec::with_capacity(nv * zlen);
        for f in specs {
            assert_eq!(f.shape, s);
            host_spec.extend_from_slice(&f.data);
        }
        let host_spec = PinnedBuffer::from_vec(host_spec);
        let host_send = PinnedBuffer::<Complex<T>>::new(t.buf_len());
        let host_recv = PinnedBuffer::<Complex<T>>::new(t.buf_len());
        let host_phys = PinnedBuffer::<T>::new(nv * plen);

        // Device buffers for the whole slab — this is where Fig. 2 fails at
        // large N and why Fig. 4 exists.
        let dev_spec = self.device.alloc::<Complex<T>>(nv * zlen)?;
        let dev_pack = self.device.alloc::<Complex<T>>(t.buf_len())?;
        let dev_yslab = self.device.alloc::<Complex<T>>(nv * ylen)?;
        let dev_phys = self.device.alloc::<T>(nv * plen)?;

        // H2D of the full slab.
        self.stream
            .memcpy_h2d_async(&host_spec, 0, &dev_spec, 0, nv * zlen);

        // y-inverse on the device.
        let (plan_y, buf, shape) = (Arc::clone(&self.plan_y), dev_spec.clone(), s);
        self.stream.launch("fft-y-inverse", move || {
            let mut d = buf.lock_mut();
            let plane = shape.nxh * shape.n;
            let mut scratch = vec![Complex::<T>::zero(); plan_y.scratch_len()];
            for v in 0..nv {
                for zl in 0..shape.mz {
                    let base = v * plane * shape.mz + zl * plane;
                    plan_y.execute_with_scratch(
                        &mut d[base..base + plane],
                        &mut scratch,
                        Direction::Inverse,
                    );
                }
            }
        });

        // Pack on the GPU (the fastest option found in §3.3), then D2H.
        let (src, dst) = (dev_spec.clone(), dev_pack.clone());
        self.stream.launch("pack-zslab", move || {
            let a = src.lock();
            let mut b = dst.lock_mut();
            for d in 0..shape.p {
                for v in 0..nv {
                    for (so, dofs, len) in t.pack_from_zslab(d, v, 0..shape.nxh) {
                        let so = so + v * zlen;
                        b[dofs..dofs + len].copy_from_slice(&a[so..so + len]);
                    }
                }
            }
        });
        self.stream
            .memcpy_d2h_async(&dev_pack, 0, &host_send, 0, t.buf_len());
        self.stream.synchronize()?;

        // Blocking all-to-all on the host (Fig. 2 has no overlap).
        let mut send = host_send.snapshot();
        self.stage_send("z2y", &mut send);
        let recv = self.comm.alltoall(&send);
        host_recv.write_from(&recv);

        // H2D of the transposed data, unpack on the device.
        self.stream
            .memcpy_h2d_async(&host_recv, 0, &dev_pack, 0, t.buf_len());
        let (src, dst) = (dev_pack.clone(), dev_yslab.clone());
        self.stream.launch("unpack-yslab", move || {
            let a = src.lock();
            let mut b = dst.lock_mut();
            for srcr in 0..shape.p {
                for v in 0..nv {
                    for (so, dofs, len) in t.unpack_to_yslab(srcr, v, 0..shape.my) {
                        let dofs = dofs + v * ylen;
                        b[dofs..dofs + len].copy_from_slice(&a[so..so + len]);
                    }
                }
            }
        });

        // z-inverse then x complex-to-real.
        let (plan_z, buf) = (Arc::clone(&self.plan_z), dev_yslab.clone());
        self.stream.launch("fft-z-inverse", move || {
            let mut d = buf.lock_mut();
            let mut scratch = vec![Complex::<T>::zero(); plan_z.scratch_len()];
            for v in 0..nv {
                let base = v * ylen;
                plan_z.execute_with_scratch(
                    &mut d[base..base + ylen],
                    &mut scratch,
                    Direction::Inverse,
                );
            }
        });
        let (plan_x, cin, rout) = (
            Arc::clone(&self.plan_x),
            dev_yslab.clone(),
            dev_phys.clone(),
        );
        self.stream.launch("fft-x-c2r", move || {
            let a = cin.lock();
            let mut b = rout.lock_mut();
            let mut scratch = vec![Complex::<T>::zero(); plan_x.scratch_len()];
            // Batched c2r: one call per variable covers every (yl, z) line.
            for v in 0..nv {
                plan_x.inverse_with_scratch(
                    &a[v * ylen..(v + 1) * ylen],
                    &mut b[v * plen..(v + 1) * plen],
                    &mut scratch,
                );
            }
        });
        self.stream
            .memcpy_d2h_async(&dev_phys, 0, &host_phys, 0, nv * plen);
        self.stream.synchronize()?;

        let flat = host_phys.snapshot();
        Ok((0..nv)
            .map(|v| PhysicalField::from_data(s, flat[v * plen..(v + 1) * plen].to_vec()))
            .collect())
    }

    /// Fallible inverse direction.
    pub fn try_physical_to_fourier(
        &mut self,
        phys: &[PhysicalField<T>],
    ) -> Result<Vec<SpectralField<T>>, Error> {
        let nv = phys.len();
        assert!(nv > 0);
        let s = self.shape;
        let t = SlabTranspose::new(s.slab(), s.nxh, nv);
        let (zlen, ylen, plen) = (t.zslab_len(), t.yslab_len(), s.phys_len());

        let mut host_in = Vec::with_capacity(nv * plen);
        for f in phys {
            assert_eq!(f.shape, s);
            host_in.extend_from_slice(&f.data);
        }
        let host_phys = PinnedBuffer::from_vec(host_in);
        let host_send = PinnedBuffer::<Complex<T>>::new(t.buf_len());
        let host_recv = PinnedBuffer::<Complex<T>>::new(t.buf_len());
        let host_spec = PinnedBuffer::<Complex<T>>::new(nv * zlen);

        let dev_phys = self.device.alloc::<T>(nv * plen)?;
        let dev_yslab = self.device.alloc::<Complex<T>>(nv * ylen)?;
        let dev_pack = self.device.alloc::<Complex<T>>(t.buf_len())?;
        let dev_spec = self.device.alloc::<Complex<T>>(nv * zlen)?;

        self.stream
            .memcpy_h2d_async(&host_phys, 0, &dev_phys, 0, nv * plen);

        // x real-to-complex, z-forward.
        let shape = s;
        let (plan_x, rin, cout) = (
            Arc::clone(&self.plan_x),
            dev_phys.clone(),
            dev_yslab.clone(),
        );
        self.stream.launch("fft-x-r2c", move || {
            let a = rin.lock();
            let mut b = cout.lock_mut();
            let mut scratch = vec![Complex::<T>::zero(); plan_x.scratch_len()];
            // Batched r2c: one call per variable covers every (yl, z) line.
            for v in 0..nv {
                plan_x.forward_with_scratch(
                    &a[v * plen..(v + 1) * plen],
                    &mut b[v * ylen..(v + 1) * ylen],
                    &mut scratch,
                );
            }
        });
        let (plan_z, buf) = (Arc::clone(&self.plan_z), dev_yslab.clone());
        self.stream.launch("fft-z-forward", move || {
            let mut d = buf.lock_mut();
            let mut scratch = vec![Complex::<T>::zero(); plan_z.scratch_len()];
            for v in 0..nv {
                let base = v * ylen;
                plan_z.execute_with_scratch(
                    &mut d[base..base + ylen],
                    &mut scratch,
                    Direction::Forward,
                );
            }
        });

        // Pack, D2H, all-to-all.
        let (srcb, dstb) = (dev_yslab.clone(), dev_pack.clone());
        self.stream.launch("pack-yslab", move || {
            let a = srcb.lock();
            let mut b = dstb.lock_mut();
            for d in 0..shape.p {
                for v in 0..nv {
                    for (so, dofs, len) in t.pack_from_yslab(d, v, 0..shape.my) {
                        let so = so + v * ylen;
                        b[dofs..dofs + len].copy_from_slice(&a[so..so + len]);
                    }
                }
            }
        });
        self.stream
            .memcpy_d2h_async(&dev_pack, 0, &host_send, 0, t.buf_len());
        self.stream.synchronize()?;
        let mut send = host_send.snapshot();
        self.stage_send("y2z", &mut send);
        let recv = self.comm.alltoall(&send);
        host_recv.write_from(&recv);

        // H2D, unpack, y-forward, D2H.
        self.stream
            .memcpy_h2d_async(&host_recv, 0, &dev_pack, 0, t.buf_len());
        let (srcb, dstb) = (dev_pack.clone(), dev_spec.clone());
        self.stream.launch("unpack-zslab", move || {
            let a = srcb.lock();
            let mut b = dstb.lock_mut();
            for srcr in 0..shape.p {
                for v in 0..nv {
                    for (so, dofs, len) in t.unpack_to_zslab(srcr, v, 0..shape.nxh) {
                        let dofs = dofs + v * zlen;
                        b[dofs..dofs + len].copy_from_slice(&a[so..so + len]);
                    }
                }
            }
        });
        let (plan_y, buf) = (Arc::clone(&self.plan_y), dev_spec.clone());
        self.stream.launch("fft-y-forward", move || {
            let mut d = buf.lock_mut();
            let plane = shape.nxh * shape.n;
            let mut scratch = vec![Complex::<T>::zero(); plan_y.scratch_len()];
            for v in 0..nv {
                for zl in 0..shape.mz {
                    let base = v * plane * shape.mz + zl * plane;
                    plan_y.execute_with_scratch(
                        &mut d[base..base + plane],
                        &mut scratch,
                        Direction::Forward,
                    );
                }
            }
        });
        self.stream
            .memcpy_d2h_async(&dev_spec, 0, &host_spec, 0, nv * zlen);
        self.stream.synchronize()?;

        let flat = host_spec.snapshot();
        Ok((0..nv)
            .map(|v| SpectralField::from_data(s, flat[v * zlen..(v + 1) * zlen].to_vec()))
            .collect())
    }
}

impl<T: Real> Transform3d<T> for GpuSyncSlabFft<T> {
    fn shape(&self) -> LocalShape {
        self.shape
    }

    fn comm(&self) -> &Communicator {
        &self.comm
    }

    fn set_scan_nonfinite(&mut self, on: bool) {
        self.scan_nonfinite = on;
    }

    fn take_nonfinite(&mut self) -> u64 {
        std::mem::take(&mut self.nonfinite_count)
    }

    fn fourier_to_physical(&mut self, specs: &[SpectralField<T>]) -> Vec<PhysicalField<T>> {
        self.try_fourier_to_physical(specs)
            .expect("slab does not fit in device memory — use GpuSlabFft (batched)")
    }

    fn physical_to_fourier(&mut self, phys: &[PhysicalField<T>]) -> Vec<SpectralField<T>> {
        self.try_physical_to_fourier(phys)
            .expect("slab does not fit in device memory — use GpuSlabFft (batched)")
    }
}

// A small helper so the pack kernels can reuse the chunk math without
// recomputing `Copy2d` shapes; kept for the benchmark harness.
#[allow(dead_code)]
pub(crate) fn whole_slab_copy(len: usize) -> Copy2d {
    Copy2d::linear(len, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_fft::SlabFftCpu;
    use psdns_comm::Universe;
    use psdns_device::DeviceConfig;

    #[test]
    fn matches_cpu_backend() {
        let n = 8;
        let p = 2;
        let nv = 2;
        let errs = Universe::run(p, move |comm| {
            let shape = LocalShape::new(n, p, comm.rank());
            let device = Device::new(DeviceConfig::tiny(1 << 22));
            let mut gpu = GpuSyncSlabFft::<f64>::new(shape, comm.clone(), device);
            let mut cpu = SlabFftCpu::<f64>::new(shape, comm);

            let phys: Vec<PhysicalField<f64>> = (0..nv)
                .map(|v| {
                    let data = (0..shape.phys_len())
                        .map(|i| ((i * (v + 2) + shape.rank * 13) as f64 * 0.01).sin())
                        .collect();
                    PhysicalField::from_data(shape, data)
                })
                .collect();

            // CPU forward, GPU inverse, compare with original.
            let specs = cpu.physical_to_fourier(&phys);
            let back = gpu.fourier_to_physical(&specs);
            let mut err = 0.0f64;
            for (a, b) in back.iter().zip(&phys) {
                for (x, y) in a.data.iter().zip(&b.data) {
                    err = err.max((x - y).abs());
                }
            }
            // GPU forward must match CPU forward too.
            let specs_gpu = gpu.physical_to_fourier(&phys);
            for (a, b) in specs_gpu.iter().zip(&specs) {
                for (x, y) in a.data.iter().zip(&b.data) {
                    err = err.max((*x - *y).abs().to_f64());
                }
            }
            err
        });
        for e in errs {
            assert!(e < 1e-9, "mismatch {e}");
        }
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let n = 16;
        let out = Universe::run(1, move |comm| {
            let shape = LocalShape::new(n, 1, 0);
            // Device too small for a whole 16³ slab of complex f64.
            let device = Device::new(DeviceConfig::tiny(4096));
            let mut gpu = GpuSyncSlabFft::<f64>::new(shape, comm, device);
            let spec = SpectralField::zeros(shape);
            gpu.try_fourier_to_physical(std::slice::from_ref(&spec))
                .err()
        });
        match &out[0] {
            Some(Error::Device(psdns_device::DeviceError::OutOfMemory { .. })) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
