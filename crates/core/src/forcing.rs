//! Deterministic large-scale forcing.
//!
//! Stationary isotropic turbulence (the paper's production workload, §1)
//! needs energy injection at the large scales to balance viscous
//! dissipation. We implement the classical *spectral velocity rescaling*
//! scheme: after each time step, the energy content of all modes with
//! `|k| ≤ k_f` is rescaled to its initial value. Deterministic, solenoidal
//! (rescaling preserves incompressibility), and independent of rank count.

use psdns_comm::Communicator;
use psdns_fft::Real;

use crate::field::SpectralField;

/// Band-rescaling forcing state.
#[derive(Clone, Debug)]
pub struct Forcing {
    /// Forcing radius: modes with `|k| ≤ k_f` are held at constant energy.
    pub kf: f64,
    /// Target band energy (captured from the initial condition by
    /// [`prime`](Self::prime), or set explicitly).
    pub target: Option<f64>,
}

impl Forcing {
    pub fn new(kf: f64) -> Self {
        assert!(kf >= 1.0, "forcing band must include at least |k| = 1");
        Self { kf, target: None }
    }

    pub fn with_target(kf: f64, target: f64) -> Self {
        Self {
            kf,
            target: Some(target),
        }
    }

    /// Energy (in stored-coefficient units, see [`crate::Transform3d`]
    /// conventions) of the forced band, reduced over all ranks.
    pub fn band_energy<T: Real>(&self, u: &[SpectralField<T>; 3], comm: &Communicator) -> f64 {
        let s = u[0].shape;
        let grid = s.grid();
        let mut local = 0.0f64;
        for zl in 0..s.mz {
            let z = s.z_global(zl);
            for y in 0..s.n {
                for x in 0..s.nxh {
                    let k2 = grid.k_sqr(x, y, z);
                    if k2 > 0.0 && k2.sqrt() <= self.kf {
                        let w = if x == 0 || (s.n.is_multiple_of(2) && x == s.nxh - 1) {
                            1.0
                        } else {
                            2.0
                        };
                        let i = s.spec_idx(x, y, zl);
                        for c in u.iter() {
                            local += w * c.data[i].norm_sqr().to_f64();
                        }
                    }
                }
            }
        }
        comm.allreduce(local, |a, b| a + b)
    }

    /// Capture the current band energy as the target.
    pub fn prime<T: Real>(&mut self, u: &[SpectralField<T>; 3], comm: &Communicator) {
        if self.target.is_none() {
            self.target = Some(self.band_energy(u, comm));
        }
    }

    /// Rescale the band back to the target energy. No-op when the band is
    /// empty or the target is zero.
    pub fn apply<T: Real>(&mut self, u: &mut [SpectralField<T>; 3], comm: &Communicator) {
        let target = match self.target {
            Some(t) if t > 0.0 => t,
            _ => return,
        };
        let current = self.band_energy(u, comm);
        if current <= 0.0 {
            return;
        }
        let scale = T::from_f64((target / current).sqrt());
        let s = u[0].shape;
        let grid = s.grid();
        for zl in 0..s.mz {
            let z = s.z_global(zl);
            for y in 0..s.n {
                for x in 0..s.nxh {
                    let k2 = grid.k_sqr(x, y, z);
                    if k2 > 0.0 && k2.sqrt() <= self.kf {
                        let i = s.spec_idx(x, y, zl);
                        for c in u.iter_mut() {
                            c.data[i] = c.data[i].scale(scale);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use psdns_comm::Universe;

    #[test]
    fn rescaling_restores_band_energy() {
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(8, 2, comm.rank());
            let mut u = taylor_green::<f64>(shape);
            let mut f = Forcing::new(2.0);
            f.prime(&u, &comm);
            let target = f.target.unwrap();
            assert!(target > 0.0);
            // Damp everything, then force: band energy must return exactly.
            for c in u.iter_mut() {
                for v in c.data.iter_mut() {
                    *v = v.scale(0.5);
                }
            }
            f.apply(&mut u, &comm);
            let after = f.band_energy(&u, &comm);
            (target, after)
        });
        for (target, after) in out {
            assert!(((after - target) / target).abs() < 1e-12);
        }
    }

    #[test]
    fn forcing_is_rank_count_invariant() {
        let band = |p: usize| {
            Universe::run(p, move |comm| {
                let shape = LocalShape::new(8, p, comm.rank());
                let u = taylor_green::<f64>(shape);
                Forcing::new(2.0).band_energy(&u, &comm)
            })[0]
        };
        let e1 = band(1);
        let e2 = band(2);
        let e4 = band(4);
        assert!((e1 - e2).abs() < 1e-9 * e1.abs().max(1.0));
        assert!((e1 - e4).abs() < 1e-9 * e1.abs().max(1.0));
    }

    #[test]
    fn zero_target_is_noop() {
        let out = Universe::run(1, |comm| {
            let shape = LocalShape::new(8, 1, 0);
            let mut u = [
                SpectralField::<f64>::zeros(shape),
                SpectralField::zeros(shape),
                SpectralField::zeros(shape),
            ];
            let mut f = Forcing::new(2.0);
            f.prime(&u, &comm);
            f.apply(&mut u, &comm);
            u[0].data.iter().all(|v| v.norm_sqr() == 0.0)
        });
        assert!(out[0]);
    }
}
