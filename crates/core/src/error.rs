//! Unified error hierarchy for the solver crate.
//!
//! The transform backends touch three fallible subsystems — the device
//! runtime ([`DeviceError`]), the communication runtime ([`CommError`]) and
//! pipeline configuration ([`PipelineError`]). [`Error`] wraps all of them so
//! callers of `try_fourier_to_physical` / `try_physical_to_fourier` and
//! [`crate::GpuFftBuilder::build`] handle one type with `?`.

use std::fmt;

use psdns_comm::CommError;
use psdns_device::DeviceError;

use crate::checkpoint::CheckpointError;
use crate::io::CsvError;

/// An invalid pipeline configuration, reported by
/// [`crate::GpuFftBuilder::build`] before any device work starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The builder was never given a communicator.
    MissingComm,
    /// The builder was given an empty device list.
    NoDevices,
    /// `np` must be at least 1.
    InvalidNp { np: usize },
    /// The slot buffers for `np` pencils × `nv` variables do not fit in the
    /// smallest device's free memory (paper §3.5: the ×3 buffer budget).
    /// `suggested_np` is the smallest pencil count that would fit, if any
    /// (see [`crate::GpuSlabFft::auto_np`]).
    InsufficientDeviceMemory {
        np: usize,
        nv: usize,
        required_bytes: usize,
        free_bytes: usize,
        suggested_np: Option<usize>,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::MissingComm => write!(f, "pipeline builder needs a communicator"),
            PipelineError::NoDevices => write!(f, "pipeline builder needs at least one device"),
            PipelineError::InvalidNp { np } => {
                write!(f, "invalid pencil count np = {np}; need np >= 1")
            }
            PipelineError::InsufficientDeviceMemory {
                np,
                nv,
                required_bytes,
                free_bytes,
                suggested_np,
            } => {
                write!(
                    f,
                    "np = {np} with nv = {nv} needs {required_bytes} B of device memory \
                     but only {free_bytes} B are free"
                )?;
                match suggested_np {
                    Some(s) => write!(f, "; smallest np that fits is {s}"),
                    None => write!(f, "; no pencil count fits this device"),
                }
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Any error a `psdns-core` transform can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    Comm(CommError),
    Device(DeviceError),
    Pipeline(PipelineError),
    Checkpoint(CheckpointError),
    Csv(CsvError),
    /// The schedule analyzer found a stream/event ordering defect in the
    /// planned pipeline (see [`crate::GpuSlabFft::analyze_schedule`]);
    /// boxed — a hazard carries both conflicting operations' identities.
    Hazard(Box<psdns_analyze::Hazard>),
    /// The self-healing supervisor could not recover a campaign (see
    /// [`crate::run_self_healing`]).
    Recovery(crate::recovery::RecoveryError),
    /// A numerical-integrity monitor tripped (see [`crate::integrity`]).
    Integrity(crate::integrity::IntegrityError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Comm(e) => write!(f, "communication error: {e}"),
            Error::Device(e) => write!(f, "device error: {e}"),
            Error::Pipeline(e) => write!(f, "pipeline configuration error: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Error::Csv(e) => write!(f, "run log error: {e}"),
            Error::Hazard(h) => write!(f, "schedule hazard: {h}"),
            Error::Recovery(e) => write!(f, "recovery error: {e}"),
            Error::Integrity(e) => write!(f, "integrity error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Comm(e) => Some(e),
            Error::Device(e) => Some(e),
            Error::Pipeline(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Csv(e) => Some(e),
            Error::Hazard(h) => Some(h.as_ref()),
            Error::Recovery(e) => Some(e),
            Error::Integrity(e) => Some(e),
        }
    }
}

impl From<psdns_analyze::Hazard> for Error {
    fn from(h: psdns_analyze::Hazard) -> Self {
        Error::Hazard(Box::new(h))
    }
}

impl From<CommError> for Error {
    fn from(e: CommError) -> Self {
        Error::Comm(e)
    }
}

impl From<DeviceError> for Error {
    fn from(e: DeviceError) -> Self {
        Error::Device(e)
    }
}

impl From<PipelineError> for Error {
    fn from(e: PipelineError) -> Self {
        Error::Pipeline(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        Error::Checkpoint(e)
    }
}

impl From<CsvError> for Error {
    fn from(e: CsvError) -> Self {
        Error::Csv(e)
    }
}

impl From<crate::recovery::RecoveryError> for Error {
    fn from(e: crate::recovery::RecoveryError) -> Self {
        Error::Recovery(e)
    }
}

impl From<crate::integrity::IntegrityError> for Error {
    fn from(e: crate::integrity::IntegrityError) -> Self {
        Error::Integrity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_and_source() {
        let d = DeviceError::OutOfMemory {
            requested_bytes: 10,
            free_bytes: 5,
            capacity_bytes: 5,
        };
        let e: Error = d.clone().into();
        assert_eq!(e, Error::Device(d));
        assert!(std::error::Error::source(&e).is_some());

        let p: Error = PipelineError::NoDevices.into();
        assert!(p.to_string().contains("at least one device"));
    }

    #[test]
    fn pipeline_error_display_mentions_suggestion() {
        let e = PipelineError::InsufficientDeviceMemory {
            np: 1,
            nv: 3,
            required_bytes: 1 << 30,
            free_bytes: 1 << 20,
            suggested_np: Some(8),
        };
        let s = e.to_string();
        assert!(s.contains("np = 1"), "{s}");
        assert!(s.contains("smallest np that fits is 8"), "{s}");
    }
}
