//! Run artifacts: CSV time series and spectra, the files a production
//! campaign archives after every batch job (the paper's runs feed spectra
//! like its refs. \[10\]/\[23\] from exactly such dumps).

use std::fmt;
use std::io::Write;
use std::path::Path;

use psdns_comm::Communicator;
use psdns_fft::Real;

use crate::field::{SpectralField, Transform3d};
use crate::ns::NavierStokes;
use crate::spectrum::energy_spectrum;
use crate::stats::{flow_stats, FlowStats};

/// Malformed run-log CSV, reported by [`RunLog::from_csv`] with the
/// 1-based line number where parsing stopped. Feeds into
/// [`crate::Error::Csv`] so campaign tooling can treat a bad artifact
/// like any other typed failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A data row did not have the expected number of columns.
    ColumnCount { line: usize, found: usize },
    /// A cell failed to parse as a number.
    Parse { line: usize, message: String },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::ColumnCount { line, found } => {
                write!(f, "line {line}: expected 8 columns, found {found}")
            }
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// One sampled step of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    pub step: usize,
    pub time: f64,
    pub stats: FlowStats,
}

/// Accumulates per-step statistics on every rank (identical on all ranks,
/// since the stats are globally reduced) and renders them as CSV.
#[derive(Clone, Debug, Default)]
pub struct RunLog {
    pub entries: Vec<LogEntry>,
}

impl RunLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample the solver state now.
    pub fn sample<T: Real, B: Transform3d<T>>(&mut self, ns: &NavierStokes<T, B>) {
        let stats = flow_stats(&ns.u, ns.cfg.nu, ns.backend.comm());
        self.entries.push(LogEntry {
            step: ns.step_count,
            time: ns.time,
            stats,
        });
    }

    /// Render as CSV (header + one row per sample).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("step,time,energy,enstrophy,dissipation,divergence,u_rms,re_lambda\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{},{:.9e},{:.9e},{:.9e},{:.9e},{:.3e},{:.9e},{:.4}\n",
                e.step,
                e.time,
                e.stats.energy,
                e.stats.enstrophy,
                e.stats.dissipation,
                e.stats.max_divergence,
                e.stats.u_rms,
                e.stats.re_lambda,
            ));
        }
        out
    }

    /// Parse a CSV produced by [`to_csv`](Self::to_csv).
    pub fn from_csv(csv: &str) -> Result<RunLog, CsvError> {
        let mut entries = Vec::new();
        for (ln, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 8 {
                return Err(CsvError::ColumnCount {
                    line: ln + 1,
                    found: cols.len(),
                });
            }
            let f = |i: usize| -> Result<f64, CsvError> {
                cols[i].trim().parse().map_err(|e| CsvError::Parse {
                    line: ln + 1,
                    message: format!("{e}"),
                })
            };
            entries.push(LogEntry {
                step: cols[0].trim().parse().map_err(|e| CsvError::Parse {
                    line: ln + 1,
                    message: format!("{e}"),
                })?,
                time: f(1)?,
                stats: FlowStats {
                    energy: f(2)?,
                    enstrophy: f(3)?,
                    dissipation: f(4)?,
                    max_divergence: f(5)?,
                    u_rms: f(6)?,
                    re_lambda: f(7)?,
                },
            });
        }
        Ok(RunLog { entries })
    }

    /// Write the CSV to disk (call on rank 0 only, like the paper's codes).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Render an energy spectrum as two-column CSV (`k,E`).
pub fn spectrum_to_csv(spec: &[f64]) -> String {
    let mut out = String::from("k,E\n");
    for (k, e) in spec.iter().enumerate() {
        out.push_str(&format!("{k},{e:.9e}\n"));
    }
    out
}

/// Compute and render the spectrum of a velocity triple.
pub fn spectrum_csv<T: Real>(u: &[SpectralField<T>; 3], comm: &Communicator) -> String {
    spectrum_to_csv(&energy_spectrum(u, comm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_fft::SlabFftCpu;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use crate::ns::{NsConfig, TimeScheme};
    use psdns_comm::Universe;

    #[test]
    fn csv_roundtrip() {
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(12, 2, comm.rank());
            let mut ns = NavierStokes::new(
                SlabFftCpu::<f64>::new(shape, comm),
                NsConfig {
                    nu: 0.05,
                    dt: 1e-3,
                    scheme: TimeScheme::Rk2,
                    forcing: None,
                    dealias: true,
                    phase_shift: false,
                },
                taylor_green(shape),
            );
            let mut log = RunLog::new();
            log.sample(&ns);
            for _ in 0..3 {
                ns.step();
                log.sample(&ns);
            }
            log
        });
        let log = &out[0];
        assert_eq!(log.entries.len(), 4);
        let csv = log.to_csv();
        let parsed = RunLog::from_csv(&csv).unwrap();
        assert_eq!(parsed.entries.len(), 4);
        for (a, b) in parsed.entries.iter().zip(&log.entries) {
            assert_eq!(a.step, b.step);
            assert!((a.stats.energy - b.stats.energy).abs() < 1e-8 * b.stats.energy.abs().max(1.0));
        }
        // All ranks produce the identical log (stats are global).
        assert_eq!(out[0].to_csv(), out[1].to_csv());
    }

    #[test]
    fn csv_is_monotone_in_time_and_decaying() {
        let out = Universe::run(1, |comm| {
            let shape = LocalShape::new(12, 1, 0);
            let mut ns = NavierStokes::new(
                SlabFftCpu::<f64>::new(shape, comm),
                NsConfig {
                    nu: 0.1,
                    dt: 1e-3,
                    scheme: TimeScheme::Rk2,
                    forcing: None,
                    dealias: true,
                    phase_shift: false,
                },
                taylor_green(shape),
            );
            let mut log = RunLog::new();
            for _ in 0..5 {
                log.sample(&ns);
                ns.step();
            }
            log
        });
        let e: Vec<f64> = out[0].entries.iter().map(|x| x.stats.energy).collect();
        for w in e.windows(2) {
            assert!(w[1] < w[0], "viscous decay must be monotone");
        }
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(matches!(
            RunLog::from_csv("step,time\n1,2\n"),
            Err(CsvError::ColumnCount { line: 2, found: 2 })
        ));
        assert!(matches!(
            RunLog::from_csv("header\n1,2,3,4,5,6,7,not_a_number\n"),
            Err(CsvError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn spectrum_csv_has_header_and_rows() {
        let csv = spectrum_to_csv(&[0.0, 1.0, 0.5]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "k,E");
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("1,"));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("psdns-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.csv");
        let log = RunLog {
            entries: vec![LogEntry {
                step: 1,
                time: 0.5,
                stats: FlowStats {
                    energy: 1.0,
                    enstrophy: 2.0,
                    dissipation: 0.1,
                    max_divergence: 0.0,
                    u_rms: 0.8,
                    re_lambda: 42.0,
                },
            }],
        };
        log.write_csv(&path).unwrap();
        let back = RunLog::from_csv(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.entries.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
