//! # psdns-core
//!
//! The paper's primary contribution, reimplemented in Rust: a slab-decomposed
//! pseudo-spectral solver for the incompressible Navier–Stokes equations in a
//! triply periodic cube, with
//!
//! * a distributed, transpose-based 3-D FFT on the 1-D slab decomposition
//!   ([`SlabFftCpu`], paper §3.1/3.3), real-to-complex in x and
//!   complex-to-complex in y and z;
//! * the 2-D pencil-decomposed CPU transform used as the paper's baseline
//!   ([`PencilFftCpu`], Table 3 "Sync CPU");
//! * the **batched asynchronous GPU pipeline** ([`GpuSlabFft`], §3.4,
//!   Fig. 4): slabs split into `np` device-sized pencils, streamed through a
//!   transfer stream and a compute stream with event-enforced dependencies,
//!   with the all-to-all posted per pencil (`MPI_IALLTOALL`, config A/B) or
//!   once per slab (config C);
//! * the RK2/RK4 Navier–Stokes integrator with exact viscous integrating
//!   factor, rotational-form nonlinear term, spectral projection, dealiasing
//!   and deterministic band forcing ([`NavierStokes`], §2).
//!
//! All backends implement [`Transform3d`], so the solver runs identically on
//! the CPU path and the out-of-core device path — the integration tests
//! demand matching physics.
//!
//! The asynchronous pipeline can be certified race-free *before* execution:
//! [`GpuSlabFft::analyze_schedule`] replays the planned stream/event DAG
//! through the `psdns-analyze` happens-before engine, and
//! [`run_checkpointed_checked`] gates a production run on that check.

#![deny(deprecated)]

pub mod checkpoint;
pub mod dist_fft;
pub mod error;
pub mod field;
pub mod forcing;
pub mod gpu_pipeline;
pub mod gpu_sync;
pub mod init;
pub mod integrity;
pub mod io;
pub mod ns;
pub mod ops;
pub mod pencil_fft;
pub mod recovery;
pub mod scalar;
pub mod spectrum;
pub mod stats;

pub use checkpoint::{refine, reslice, Checkpoint, CheckpointError};
pub use dist_fft::SlabFftCpu;
pub use error::{Error, PipelineError};
pub use field::{LocalShape, PhysicalField, SpectralField, Transform3d};
pub use forcing::Forcing;
pub use gpu_pipeline::{A2aMode, GpuFftBuilder, GpuFftConfig, GpuSlabFft};
pub use gpu_sync::GpuSyncSlabFft;
pub use init::{normalize_energy, random_solenoidal, taylor_green};
pub use integrity::{IntegrityCheck, IntegrityConfig, IntegrityError, IntegrityEvent};
pub use io::{spectrum_csv, CsvError, LogEntry, RunLog};
pub use ns::{apply_phase_shift, project_and_dealias, NavierStokes, NsConfig, TimeScheme};
pub use ops::{curl, divergence, gradient, laplacian};
pub use pencil_fft::PencilFftCpu;
pub use recovery::{
    restore_or_init, run_checkpointed, run_checkpointed_checked, run_self_healing, save_solver,
    BuddyStore, CheckpointStore, HealedRun, RecoveryError, RecoveryEvent, SelfHealingConfig,
};
pub use scalar::{scalar_single_mode, PassiveScalar};
pub use spectrum::{energy_spectrum, transfer_spectrum, try_energy_spectrum};
pub use stats::{flow_stats, gradient_moments, try_flow_stats, FlowStats};

pub use psdns_analyze::{AnalysisReport, Hazard, HazardKind, OrderingLog};
