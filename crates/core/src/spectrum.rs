//! Energy spectra — the headline science output of the paper's production
//! simulations (its 18432³ goal is to resolve a wider range of scales in
//! E(k) than previously possible).

use psdns_comm::Communicator;
use psdns_domain::grid::shell_index;
use psdns_fft::Real;

use crate::field::SpectralField;
use crate::integrity::IntegrityError;

/// Warn (via the tracer, when one is attached) that `nf` non-finite modes
/// were skipped while binning `what`.
fn warn_nonfinite(comm: &Communicator, what: &str, nf: u64) {
    if nf == 0 {
        return;
    }
    if let Some(t) = comm.tracer() {
        t.incr_faults();
        t.span(
            psdns_trace::SpanKind::Fault,
            what,
            &format!("nonfinite-skipped[{nf}]"),
        )
        .finish();
    }
}

/// Spherically binned energy spectrum `E(k)`, reduced over all ranks.
///
/// Returned in *mathematical* units: `Σ_k E(k) = ½⟨|u|²⟩`. Shell `k`
/// collects modes with `round(|k|) == k`.
///
/// Non-finite (corrupted) modes are skipped rather than poisoning their
/// whole shell; the skip count is traced as a fault. Use
/// [`try_energy_spectrum`] to turn any corruption into a typed error.
pub fn energy_spectrum<T: Real>(u: &[SpectralField<T>; 3], comm: &Communicator) -> Vec<f64> {
    let (spec, nf) = energy_spectrum_impl(u, comm);
    warn_nonfinite(comm, "spectrum", nf);
    spec
}

/// Like [`energy_spectrum`] but a non-finite mode anywhere in the global
/// field is a typed [`IntegrityError::NonFinite`] instead of a silently
/// partial spectrum.
pub fn try_energy_spectrum<T: Real>(
    u: &[SpectralField<T>; 3],
    comm: &Communicator,
) -> Result<Vec<f64>, IntegrityError> {
    let (spec, count) = energy_spectrum_impl(u, comm);
    if count > 0 {
        return Err(IntegrityError::NonFinite { count });
    }
    Ok(spec)
}

fn energy_spectrum_impl<T: Real>(
    u: &[SpectralField<T>; 3],
    comm: &Communicator,
) -> (Vec<f64>, u64) {
    let s = u[0].shape;
    let grid = s.grid();
    let n6 = ((s.n as f64).powi(3)).powi(2);
    // Last slot carries the non-finite skip count so the verdict rides the
    // same collective as the shells (identical sequence on every rank).
    let mut local = vec![0.0f64; grid.shell_count() + 1];
    let nf_slot = local.len() - 1;
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let shell = shell_index(kx as i64, ky as i64, kz as i64);
                if shell >= local.len() - 1 {
                    continue;
                }
                let w = if x == 0 || (s.n.is_multiple_of(2) && x == s.nxh - 1) {
                    1.0
                } else {
                    2.0 // conjugate-symmetric partner with kx < 0
                };
                let i = s.spec_idx(x, y, zl);
                let e = u[0].data[i].norm_sqr().to_f64()
                    + u[1].data[i].norm_sqr().to_f64()
                    + u[2].data[i].norm_sqr().to_f64();
                if !e.is_finite() {
                    local[nf_slot] += 1.0;
                    continue;
                }
                local[shell] += 0.5 * w * e / n6;
            }
        }
    }
    let mut spec = comm.allreduce_vec(&local, |a, b| a + b);
    let nf = spec.pop().unwrap_or(0.0) as u64;
    (spec, nf)
}

/// Spectral energy-transfer function `T(k) = Σ_shell 2·Re(û*·N̂)` where
/// `N̂` is the (projected, dealiased) nonlinear term. In the continuous
/// limit `Σ_k T(k) = 0`: the nonlinear term only *redistributes* energy
/// across scales — the inertial cascade the paper's production science
/// measures at 18432³.
pub fn transfer_spectrum<T: Real>(
    u: &[SpectralField<T>; 3],
    nl: &[SpectralField<T>; 3],
    comm: &Communicator,
) -> Vec<f64> {
    let s = u[0].shape;
    let grid = s.grid();
    let n6 = ((s.n as f64).powi(3)).powi(2);
    let mut local = vec![0.0f64; grid.shell_count() + 1];
    let nf_slot = local.len() - 1;
    for zl in 0..s.mz {
        let z = s.z_global(zl);
        for y in 0..s.n {
            for x in 0..s.nxh {
                let [kx, ky, kz] = grid.k_vec(x, y, z);
                let shell = shell_index(kx as i64, ky as i64, kz as i64);
                if shell >= local.len() - 1 {
                    continue;
                }
                let w = if x == 0 || (s.n.is_multiple_of(2) && x == s.nxh - 1) {
                    1.0
                } else {
                    2.0
                };
                let i = s.spec_idx(x, y, zl);
                let mut t = 0.0f64;
                for c in 0..3 {
                    let a = u[c].data[i];
                    let b = nl[c].data[i];
                    // Re(conj(û)·N̂)
                    t += (a.re * b.re + a.im * b.im).to_f64();
                }
                if !t.is_finite() {
                    local[nf_slot] += 1.0;
                    continue;
                }
                local[shell] += w * t / n6;
            }
        }
    }
    let mut spec = comm.allreduce_vec(&local, |a, b| a + b);
    let nf = spec.pop().unwrap_or(0.0) as u64;
    warn_nonfinite(comm, "transfer", nf);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::LocalShape;
    use crate::init::taylor_green;
    use psdns_comm::Universe;

    #[test]
    fn taylor_green_energy_in_shell_two() {
        // TG modes sit at |k| = √3 ≈ 1.73 → shell 2; total energy = 1/8.
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(16, 2, comm.rank());
            let u = taylor_green::<f64>(shape);
            energy_spectrum(&u, &comm)
        });
        for spec in out {
            let total: f64 = spec.iter().sum();
            assert!((total - 0.125).abs() < 1e-12, "total {total}");
            assert!((spec[2] - 0.125).abs() < 1e-12, "shell2 {}", spec[2]);
            assert!(spec[0].abs() < 1e-15 && spec[1].abs() < 1e-15);
        }
    }

    /// Nonlinear transfer conserves energy: Σ_k T(k) ≈ 0 — the detailed
    /// balance behind the inviscid-conservation test of the solver.
    #[test]
    fn transfer_spectrum_sums_to_zero() {
        use crate::dist_fft::SlabFftCpu;
        use crate::ns::{NavierStokes, NsConfig, TimeScheme};
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(16, 2, comm.rank());
            let mut u = crate::init::random_solenoidal::<f64>(shape, 3.0, 31);
            crate::init::normalize_energy(&mut u, 0.5, &comm);
            let mut ns = NavierStokes::new(
                SlabFftCpu::<f64>::new(shape, comm),
                NsConfig {
                    nu: 0.0,
                    dt: 1e-3,
                    scheme: TimeScheme::Rk2,
                    forcing: None,
                    dealias: true,
                    phase_shift: false,
                },
                u,
            );
            let state = ns.u.clone();
            let nl = ns.nonlinear(&state);
            let t = transfer_spectrum(&ns.u, &nl, ns.backend.comm());
            let total: f64 = t.iter().sum();
            let scale: f64 = t.iter().map(|v| v.abs()).sum();
            (total, scale)
        });
        for (total, scale) in out {
            assert!(scale > 1e-12, "transfer must be nontrivial");
            assert!(
                total.abs() < 1e-10 * scale,
                "nonlinear transfer not conservative: Σ T = {total:.3e} vs |T| = {scale:.3e}"
            );
        }
    }

    /// A corrupted mode is excluded from its shell instead of poisoning it,
    /// and surfaces as a typed error through the `try_` API.
    #[test]
    fn corrupted_mode_does_not_poison_shell() {
        let out = Universe::run(2, |comm| {
            let shape = LocalShape::new(16, 2, comm.rank());
            let mut u = taylor_green::<f64>(shape);
            if comm.rank() == 0 {
                u[2].data[5] = psdns_fft::Complex::new(0.0, f64::NAN);
            }
            let spec = energy_spectrum(&u, &comm);
            let err = try_energy_spectrum(&u, &comm).unwrap_err();
            (spec, err)
        });
        for (spec, err) in out {
            assert!(spec.iter().all(|e| e.is_finite()), "{spec:?}");
            assert_eq!(
                err,
                crate::integrity::IntegrityError::NonFinite { count: 1 }
            );
        }
    }

    #[test]
    fn spectrum_is_rank_invariant() {
        let run = |p: usize| {
            Universe::run(p, move |comm| {
                let shape = LocalShape::new(12, p, comm.rank());
                let u = crate::init::random_solenoidal::<f64>(shape, 3.0, 11);
                energy_spectrum(&u, &comm)
            })[0]
                .clone()
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
